"""Ablation A2: MM vs the counting engine for the checking query Q1.

The paper's point in §3.2: for binary classification, Q1 does not need
counting at all — two extreme worlds suffice, at ``O(NM)``. This bench
confirms MM and the Q2-based check always agree and measures the speedup.
"""

import time

import numpy as np

from repro.core.engine import sortscan_counts
from repro.core.minmax import minmax_checks_all
from repro.experiments.complexity import random_instance
from repro.utils.tables import format_table

SIZES = [50, 100, 200, 400]
M, K = 3, 3


def test_ablation_q1_minmax_vs_counting(benchmark, emit):
    def run():
        rows = []
        rng = np.random.default_rng(1)
        for n in SIZES:
            dataset, _ = random_instance(n, M, n_labels=2, n_features=4, seed=rng)
            points = [rng.normal(size=4) for _ in range(3)]

            start = time.perf_counter()
            mm = [minmax_checks_all(dataset, t, k=K) for t in points]
            mm_time = time.perf_counter() - start

            start = time.perf_counter()
            counting = []
            for t in points:
                counts = sortscan_counts(dataset, t, k=K)
                total = sum(counts)
                counting.append([c == total for c in counts])
            ss_time = time.perf_counter() - start

            assert mm == counting, f"MM disagrees with counting at N={n}"
            rows.append(
                [n, f"{mm_time * 1e3:.2f} ms", f"{ss_time * 1e3:.2f} ms", f"{ss_time / mm_time:.1f}x"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["N", "MM (Q1)", "SS counting (Q1)", "MM speedup"],
            rows,
            title=f"Ablation A2 — Q1 via MinMax vs via counting (M={M}, K={K}, binary)",
        )
    )
    # MM should win at every size.
    for row in rows:
        speedup = float(row[3].rstrip("x"))
        assert speedup > 1.0, f"MM slower than counting at N={row[0]}"
