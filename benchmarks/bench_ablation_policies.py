"""Ablation A6: how much of CPClean's advantage is the entropy objective?

Runs the same cleaning workload under five selection policies — CPClean's
sequential-information-maximisation objective, the two validation-aware
heuristics from :mod:`repro.cleaning.policies`, the dirtiest-first strawman
and RandomClean — and reports the cleaning effort each needs to make every
validation point CP'ed. The expected shape (and the paper's implicit
claim): validation-aware policies beat oblivious ones, and the principled
entropy objective is at least as frugal as the heuristics.
"""

import numpy as np

from repro.cleaning.cp_clean import CPCleanStrategy
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.policies import (
    DirtiestFirstStrategy,
    MembershipUncertaintyStrategy,
    ReachCountStrategy,
    run_policy,
)
from repro.cleaning.random_clean import RandomCleanStrategy
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_table

N_TRAIN, N_VAL, K, SEED, MISSING = 80, 16, 3, 2, 0.4


def _workload():
    # A high missing rate keeps several validation points uncertain at the
    # start, so the policies have real work to differ on.
    task = build_cleaning_task(
        "supreme",
        n_train=N_TRAIN,
        n_val=N_VAL,
        n_test=10,
        missing_rate=MISSING,
        k=K,
        seed=SEED,
    )
    oracle = GroundTruthOracle(task.gt_choice)
    return task, oracle


def test_ablation_selection_policies(benchmark, emit):
    task, oracle = _workload()
    strategies = {
        "cpclean (entropy)": lambda: CPCleanStrategy(),
        "membership": lambda: MembershipUncertaintyStrategy(),
        "reach-count": lambda: ReachCountStrategy(),
        "dirtiest-first": lambda: DirtiestFirstStrategy(),
        "random": lambda: RandomCleanStrategy(seed=0),
    }

    def run_all():
        results = {}
        for name, factory in strategies.items():
            report = run_policy(
                factory(), task.incomplete, task.val_X, oracle, k=K
            )
            results[name] = report
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n_dirty = task.incomplete.n_uncertain
    rows = []
    for name, report in results.items():
        assert report.cp_fraction_final == 1.0, f"{name} did not reach full certainty"
        rows.append(
            [
                name,
                str(report.n_cleaned),
                f"{100.0 * report.n_cleaned / n_dirty:.0f}%",
            ]
        )
    emit(
        format_table(
            ["policy", "examples cleaned", "% of dirty rows"],
            rows,
            title=(
                f"Ablation A6 — selection policies to all-CP'ed "
                f"(supreme-like, N={N_TRAIN}, |Dval|={N_VAL}, K={K}, "
                f"{n_dirty} dirty rows)"
            ),
        )
    )
    # The entropy objective must not be worse than the oblivious strawman.
    assert results["cpclean (entropy)"].n_cleaned <= results["dirtiest-first"].n_cleaned
