"""Benchmark: the parallel batch CP query engine vs the sequential path.

A Table 2-style workload (the ``supreme`` recipe at a few hundred training
rows) is screened point by point through the seed's sequential path — one
:class:`repro.core.prepared.PreparedQuery` per test point — and then through
:class:`repro.core.batch_engine.BatchQueryExecutor` with ``n_jobs=1`` and
``n_jobs=4``. The acceptance bar is a >=2x wall-clock speedup for the batch
engine at ``n_jobs=4`` with results verified identical to the sequential
engine's; the LRU result cache is measured separately (repeated screening,
the shape of CPClean's certainty re-checks) and must serve hits without
recomputation.

On a single-CPU host the speedup comes from the engine's vectorised
distance preparation and tuned counting kernel alone (process fan-out can
only add overhead there); on multi-core hosts ``n_jobs=4`` stacks process
parallelism on top.
"""

import time

from repro.core.batch_engine import BatchQueryExecutor
from repro.core.prepared import PreparedQuery
from repro.data.task import build_cleaning_task
from repro.experiments.config import get_scale
from repro.utils.tables import format_table

_WORKLOADS = {
    "quick": dict(n_train=150, n_val=24),
    "default": dict(n_train=400, n_val=64),
    "large": dict(n_train=800, n_val=96),
}


def _build_workload():
    scale = get_scale()
    size = _WORKLOADS.get(scale.name, _WORKLOADS["default"])
    task = build_cleaning_task(
        "supreme", n_train=size["n_train"], n_val=size["n_val"], n_test=50, seed=1
    )
    return task.incomplete, task.val_X, task.k


def _time(fn, repeats=3):
    """Best-of-``repeats`` wall clock and the (verified stable) result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batch_engine_speedup(benchmark, emit):
    dataset, test_X, k = _build_workload()

    t_seq, sequential = _time(
        lambda: [PreparedQuery(dataset, t, k=k).counts() for t in test_X]
    )
    t_nj1, batch_nj1 = _time(
        lambda: BatchQueryExecutor(dataset, test_X, k=k, n_jobs=1, cache=False).counts()
    )
    t_nj4, batch_nj4 = benchmark.pedantic(
        lambda: _time(
            lambda: BatchQueryExecutor(dataset, test_X, k=k, n_jobs=4, cache=False).counts()
        ),
        rounds=1,
        iterations=1,
    )

    # Cached re-screening: one executor, the same query set twice — the
    # shape of CPClean's repeated certainty checks.
    executor = BatchQueryExecutor(dataset, test_X, k=k, n_jobs=1, cache=True)
    executor.counts()
    start = time.perf_counter()
    cached = executor.counts()
    t_cached = time.perf_counter() - start

    # Hard guarantees: identical results everywhere, >=2x at n_jobs=4.
    assert batch_nj1 == sequential, "batch engine (n_jobs=1) diverged from sequential"
    assert batch_nj4 == sequential, "batch engine (n_jobs=4) diverged from sequential"
    assert cached == sequential, "cache-hit results diverged from sequential"
    assert executor.cache.hits == len(test_X), "second screening should be all hits"
    speedup4 = t_seq / t_nj4
    assert speedup4 >= 2.0, (
        f"batch engine at n_jobs=4 is only {speedup4:.2f}x over the "
        f"sequential path ({t_nj4:.3f}s vs {t_seq:.3f}s); the bar is 2x"
    )

    rows = [
        ["sequential per-point", f"{t_seq:.3f}", "1.00x", "reference"],
        ["batch n_jobs=1", f"{t_nj1:.3f}", f"{t_seq / t_nj1:.2f}x", "identical"],
        ["batch n_jobs=4", f"{t_nj4:.3f}", f"{speedup4:.2f}x", "identical"],
        ["batch cached re-run", f"{t_cached:.3f}", f"{t_seq / max(t_cached, 1e-9):.2f}x", "identical"],
    ]
    emit(
        format_table(
            ["path", "seconds", "speedup", "results"],
            rows,
            title=(
                f"Batch CP query engine — supreme recipe, "
                f"n_train={dataset.n_rows}, {test_X.shape[0]} query points, k={k}"
            ),
        )
    )
