"""Benchmark: the vectorized certain-answer engine vs the naive oracle.

Three measurements, emitted both as human-readable tables and as
machine-readable JSON (``BENCH_codd.json``):

1. **Speedup vs the naive oracle** — the same select-project SQL query
   (certain *and* possible answers) run once by literal possible-world
   enumeration (:func:`repro.codd.certain.certain_answers_naive`) and once
   by the vectorized stacked-grid engine. The acceptance bar is a **>=5x**
   wall-clock advantage with bit-identical
   :class:`~repro.codd.relation.Relation` results — the naive oracle pays
   ``|D|^n`` worlds where the grid pays the sum of row-local completions.
2. **Vectorized vs row-wise** — the same query on a table far too large
   for world enumeration, comparing the stacked-grid engine against the
   streaming per-row Python path (the ``rowwise`` backend). Reported for
   scale; the JSON carries the measured ratio.
3. **Grid reuse** — evaluation time on a cold grid vs a pinned
   :class:`~repro.codd.vectorized.StackedTable` (what the service
   registry keeps warm per registered table).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_codd.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a couple of seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.codd.certain import (
    certain_answers_naive,
    certain_select_project_rowwise,
    possible_answers_naive,
    possible_select_project_rowwise,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.sql import parse_sql
from repro.codd.vectorized import (
    StackedTable,
    certain_answers_vectorized,
    possible_answers_vectorized,
)
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("codd")

_WORKLOADS = {
    # The naive comparison table must stay enumerable: worlds = 3^n_null.
    "smoke": dict(n_rows=60, n_null=7, big_rows=20_000, big_null=2_000),
    "default": dict(n_rows=80, n_null=9, big_rows=60_000, big_null=6_000),
}

QUERY_SQL = "SELECT region FROM sales WHERE amount >= 40 AND amount < 140"


def build_table(n_rows: int, n_null: int, seed: int) -> CoddTable:
    """A sales-like table: string region, numeric amount, some NULL amounts."""
    rng = np.random.default_rng(seed)
    regions = ["north", "south", "east", "west"]
    rows = []
    null_rows = set(rng.choice(n_rows, size=n_null, replace=False).tolist())
    for r in range(n_rows):
        region = regions[int(rng.integers(0, len(regions)))]
        if r in null_rows:
            base = int(rng.integers(0, 150))
            amount = Null([base, base + 25, base + 50])
        else:
            amount = int(rng.integers(0, 200))
        rows.append((region, amount))
    return CoddTable(("region", "amount"), rows)


def _best_of(repeats: int, func):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_vs_naive(table: CoddTable, query, name: str, repeats: int) -> dict:
    t_naive, naive = _best_of(
        repeats,
        lambda: (
            certain_answers_naive(query, table, name=name),
            possible_answers_naive(query, table, name=name),
        ),
    )
    t_vec, vectorized = _best_of(
        repeats,
        lambda: (
            certain_answers_vectorized(query, table, name=name),
            possible_answers_vectorized(query, table, name=name),
        ),
    )
    assert vectorized[0] == naive[0], "certain answers diverged from the oracle"
    assert vectorized[1] == naive[1], "possible answers diverged from the oracle"
    return {
        "n_rows": len(table),
        "n_worlds": str(table.n_worlds()),
        "n_certain": len(naive[0]),
        "n_possible": len(naive[1]),
        "naive_seconds": t_naive,
        "vectorized_seconds": t_vec,
        "speedup": t_naive / t_vec,
        "identical": True,
    }


def bench_vs_rowwise(table: CoddTable, query, name: str, repeats: int) -> dict:
    t_row, rowwise = _best_of(
        repeats,
        lambda: (
            certain_select_project_rowwise(query, table, name=name),
            possible_select_project_rowwise(query, table, name=name),
        ),
    )
    t_vec, vectorized = _best_of(
        repeats,
        lambda: (
            certain_answers_vectorized(query, table, name=name),
            possible_answers_vectorized(query, table, name=name),
        ),
    )
    assert vectorized[0] == rowwise[0] and vectorized[1] == rowwise[1]
    return {
        "n_rows": len(table),
        "n_null_cells": table.n_variables,
        "rowwise_seconds": t_row,
        "vectorized_seconds": t_vec,
        "speedup": t_row / t_vec,
        "identical": True,
    }


def bench_grid_reuse(table: CoddTable, query, name: str, repeats: int) -> dict:
    t_cold, _ = _best_of(
        repeats, lambda: certain_answers_vectorized(query, table, name=name)
    )
    pinned = StackedTable(table)
    t_warm, _ = _best_of(
        repeats,
        lambda: certain_answers_vectorized(query, table, name=name, stacked=pinned),
    )
    return {
        "cold_seconds": t_cold,
        "pinned_seconds": t_warm,
        "speedup": t_cold / t_warm,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a couple of seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]
    query = parse_sql(QUERY_SQL)

    small = build_table(size["n_rows"], size["n_null"], seed=7)
    naive_cmp = bench_vs_naive(small, query, "sales", repeats=2)

    big = build_table(size["big_rows"], size["big_null"], seed=8)
    rowwise_cmp = bench_vs_rowwise(big, query, "sales", repeats=3)
    reuse = bench_grid_reuse(big, query, "sales", repeats=3)

    report = {
        "benchmark": "codd",
        "scale": scale,
        "query": QUERY_SQL,
        "vs_naive": naive_cmp,
        "vs_rowwise": rowwise_cmp,
        "grid_reuse": reuse,
    }
    write_bench_report(args.output, report)

    print(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["naive (world enumeration)", f"{naive_cmp['naive_seconds']:.4f}", "1.00x"],
                [
                    "vectorized (stacked grid)",
                    f"{naive_cmp['vectorized_seconds']:.4f}",
                    f"{naive_cmp['speedup']:.1f}x",
                ],
            ],
            title=(
                f"Certain + possible answers, {naive_cmp['n_rows']} rows, "
                f"{naive_cmp['n_worlds']} worlds ({scale} scale)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["rowwise (streaming python)", f"{rowwise_cmp['rowwise_seconds']:.4f}", "1.00x"],
                [
                    "vectorized (stacked grid)",
                    f"{rowwise_cmp['vectorized_seconds']:.4f}",
                    f"{rowwise_cmp['speedup']:.1f}x",
                ],
            ],
            title=(
                f"Same query, {rowwise_cmp['n_rows']} rows / "
                f"{rowwise_cmp['n_null_cells']} NULL cells (enumeration infeasible)"
            ),
        )
    )
    print()
    print(
        f"grid reuse: cold {reuse['cold_seconds']:.4f}s vs pinned "
        f"{reuse['pinned_seconds']:.4f}s ({reuse['speedup']:.1f}x)"
    )

    if naive_cmp["speedup"] < 5.0:
        print(
            f"FAIL: vectorized engine is only {naive_cmp['speedup']:.2f}x over "
            "the naive oracle; the bar is 5x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
