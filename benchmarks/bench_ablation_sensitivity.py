"""Ablation A3: sensitivity of certainty and cleaning effort to K and the
missing rate.

Not a paper table, but a design-space check DESIGN.md calls out: more
incompleteness must monotonically (in expectation) reduce the fraction of
CP'ed validation points; the choice of K shifts where certainty lands but
must not break the pipeline. Reported: CP'ed fraction before cleaning and
CPClean effort to certify everything.
"""

import pytest

from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.sequential import CleaningSession
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_percent, format_table

RECIPE = "supreme"
N_TRAIN, N_VAL, N_TEST = 80, 16, 100


def _initial_cp_fraction(task):
    session = CleaningSession(task.incomplete, task.val_X, k=task.k)
    return session.cp_fraction()


def test_ablation_missing_rate(benchmark, emit):
    def run():
        rows = []
        for rate in (0.05, 0.1, 0.2, 0.4):
            task = build_cleaning_task(
                RECIPE,
                n_train=N_TRAIN,
                n_val=N_VAL,
                n_test=N_TEST,
                missing_rate=rate,
                seed=2,
            )
            initial = _initial_cp_fraction(task)
            report = run_cp_clean(
                task.incomplete, task.val_X, GroundTruthOracle(task.gt_choice), k=task.k
            )
            n_dirty = max(len(task.dirty_rows), 1)
            rows.append((rate, initial, report.n_cleaned / n_dirty))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["missing rate", "initial CP'ed", "CPClean effort"],
            [[format_percent(r), format_percent(i), format_percent(e)] for r, i, e in rows],
            title=f"Ablation A3a — missing rate vs certainty ({RECIPE})",
        )
    )
    # More missingness => less initial certainty (weak monotonicity).
    initials = [i for _r, i, _e in rows]
    assert initials[0] >= initials[-1] - 0.05


@pytest.mark.parametrize("k", [1, 3, 5])
def test_ablation_k(benchmark, emit, k):
    def run():
        task = build_cleaning_task(
            RECIPE, n_train=N_TRAIN, n_val=N_VAL, n_test=N_TEST, seed=2, k=k
        )
        initial = _initial_cp_fraction(task)
        report = run_cp_clean(
            task.incomplete, task.val_X, GroundTruthOracle(task.gt_choice), k=task.k
        )
        n_dirty = max(len(task.dirty_rows), 1)
        return initial, report.n_cleaned / n_dirty, report.cp_fraction_final

    initial, effort, final = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["K", "initial CP'ed", "CPClean effort", "final CP'ed"],
            [[k, format_percent(initial), format_percent(effort), format_percent(final)]],
            title="Ablation A3b — neighbourhood size K",
        )
    )
    assert final == pytest.approx(1.0)
