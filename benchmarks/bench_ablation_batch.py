"""Ablation A8: the adaptivity cost of batched cleaning.

Sequential CPClean re-optimises after every human answer; batched CPClean
(`repro.cleaning.batch`) asks for ``B`` answers per round. This bench
sweeps the batch size on one workload and reports cleaning effort and the
number of selection rounds — the latency/effort trade-off a crowdsourced
deployment cares about. Expected shape: effort grows (weakly, with noise)
as batches coarsen, while rounds shrink roughly like ``effort / B``.
"""

import numpy as np

from repro.cleaning.batch import run_batch_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_table

N_TRAIN, N_VAL, K, SEED = 70, 8, 3, 13
BATCH_SIZES = (1, 2, 4, 8)


def test_ablation_batch_sizes(benchmark, emit):
    task = build_cleaning_task(
        "bank", n_train=N_TRAIN, n_val=N_VAL, n_test=10, k=K, seed=SEED
    )
    oracle = GroundTruthOracle(task.gt_choice)

    def run_all():
        return {
            batch: run_batch_clean(
                task.incomplete, task.val_X, oracle, batch_size=batch, k=K
            )
            for batch in BATCH_SIZES
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n_dirty = task.incomplete.n_uncertain
    rows = []
    for batch, report in results.items():
        assert report.cp_fraction_final == 1.0, f"batch={batch} did not certify"
        rounds = -(-report.n_cleaned // batch) if report.n_cleaned else 0
        rows.append(
            [str(batch), str(report.n_cleaned), f"{100 * report.n_cleaned / n_dirty:.0f}%", str(rounds)]
        )
    emit(
        format_table(
            ["batch size", "examples cleaned", "% of dirty", "selection rounds"],
            rows,
            title=(
                f"Ablation A8 — batched cleaning (bank-like, N={N_TRAIN}, "
                f"|Dval|={N_VAL}, K={K}, {n_dirty} dirty rows)"
            ),
        )
    )
    # Rounds must shrink as batches grow; effort stays bounded by dirty rows.
    rounds_by_batch = [
        -(-results[b].n_cleaned // b) for b in BATCH_SIZES if results[b].n_cleaned
    ]
    assert rounds_by_batch == sorted(rounds_by_batch, reverse=True)
