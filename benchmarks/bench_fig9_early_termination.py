"""Regenerates Figure 9: CPClean vs RandomClean cleaning curves.

For each dataset the paper plots, against the fraction of dirty examples
cleaned: (red) the fraction of validation examples CP'ed and (blue) the
fraction of the test-accuracy gap closed — CPClean solid, RandomClean
dashed. The headline shape: CPClean's curves rise much faster and reach
100% CP'ed after cleaning only a fraction of the dirty rows, while
RandomClean needs nearly all of them.

The bench prints both curves as rows sampled at fixed cleaned-fraction
checkpoints and asserts the dominance of CPClean in area-under-curve terms.
"""

import numpy as np
import pytest

from repro.data.recipes import recipe_names
from repro.data.task import build_cleaning_task
from repro.experiments.config import get_scale
from repro.experiments.curves import average_random_curves, trace_cleaning_curve
from repro.utils.tables import format_percent, format_table

CHECKPOINTS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]

_CURVES = {}


def _value_at(fractions, values, checkpoint):
    """Step-interpolate a curve at a cleaned-fraction checkpoint."""
    fractions = np.asarray(fractions)
    values = np.asarray(values)
    idx = np.searchsorted(fractions, checkpoint, side="right") - 1
    return float(values[max(idx, 0)])


def _run_dataset(recipe: str):
    scale = get_scale()
    task = build_cleaning_task(
        recipe, n_train=scale.n_train, n_val=scale.n_val, n_test=scale.n_test, seed=1
    )
    cp_curve = trace_cleaning_curve(task, strategy="cpclean")
    random_curve = average_random_curves(task, n_runs=scale.random_clean_seeds, seed=0)
    return cp_curve, random_curve


@pytest.mark.parametrize("recipe", recipe_names())
def test_fig9_curves(benchmark, recipe):
    cp_curve, random_curve = benchmark.pedantic(
        _run_dataset, args=(recipe,), rounds=1, iterations=1
    )
    _CURVES[recipe] = (cp_curve, random_curve)

    # CPClean certifies everything by the end of its run.
    assert cp_curve.cp_fraction[-1] == pytest.approx(1.0)
    # CP'ed fraction is monotone under truthful cleaning.
    assert np.all(np.diff(cp_curve.cp_fraction) >= -1e-12)

    # Dominance: CPClean's CP'ed-fraction curve has at least the area of
    # RandomClean's (evaluated at shared checkpoints).
    cp_area = np.mean(
        [
            _value_at(cp_curve.fraction_cleaned, cp_curve.cp_fraction, c)
            for c in CHECKPOINTS
        ]
    )
    random_area = np.mean(
        [
            _value_at(random_curve.fraction_cleaned, random_curve.cp_fraction, c)
            for c in CHECKPOINTS
        ]
    )
    assert cp_area >= random_area - 0.02, (
        f"CPClean CP'ed-area {cp_area:.2f} vs RandomClean {random_area:.2f}"
    )


def test_fig9_report(benchmark, emit):
    if len(_CURVES) < len(recipe_names()):
        pytest.skip("per-recipe curves did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only test
    rows = []
    for recipe in recipe_names():
        cp_curve, random_curve = _CURVES[recipe]
        for label, curve in (("CPClean", cp_curve), ("Random", random_curve)):
            cp_vals = [
                format_percent(_value_at(curve.fraction_cleaned, curve.cp_fraction, c))
                for c in CHECKPOINTS
            ]
            gap_vals = [
                format_percent(_value_at(curve.fraction_cleaned, curve.gap_closed, c))
                for c in CHECKPOINTS
            ]
            rows.append([recipe, label, "CP'ed", *cp_vals])
            rows.append([recipe, label, "gap", *gap_vals])
    emit(
        format_table(
            ["dataset", "strategy", "series", *[format_percent(c) for c in CHECKPOINTS]],
            rows,
            title=(
                "Figure 9 — validation examples CP'ed and test gap closed vs "
                "fraction of dirty examples cleaned"
            ),
        )
    )
