"""Benchmark: exactness-preserving candidate pruning vs the full scan.

The prune certificate (:mod:`repro.core.pruning`) drops a training row
from a point's scan when at least ``k`` other rows' *worst-case*
candidate similarity strictly dominates its *best-case* one — a
condition that fires constantly on clustered-candidate workloads, where
each dirty row's repair candidates sit in a tight cluster and the
per-row similarity interval is narrow. This benchmark builds exactly
that workload and measures three things, emitted human-readable and as
``BENCH_pruning.json``:

1. **Speedup** — the exact Q2 counting query over the validation set on
   the ``batch`` backend with ``prune=off`` vs ``prune=on``. The CI
   acceptance bar is a >=2x wall-clock advantage (the default scale
   targets >=3x) with bit-identical counts.
2. **Telemetry** — the pruning counters the run reported: rows and
   candidate positions pruned, positions actually scanned.
3. **Cross-backend identity** — the same query with ``prune=on`` on the
   sequential and sharded backends, asserted bit-identical to the
   unpruned reference (pruning is a pure execution knob).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_pruning.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.core.dataset import IncompleteDataset
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("pruning")

_WORKLOADS = {
    "smoke": dict(n_rows=240, m=8, n_val=24, n_features=4),
    "default": dict(n_rows=600, m=10, n_val=48, n_features=4),
}

K = 3
#: Candidate spread within one row's cluster, relative to the unit spread
#: of the row centers: small enough that per-row similarity intervals are
#: narrow and the certificate dominates most rows.
CLUSTER_SPREAD = 0.01


def clustered_workload(
    n_rows: int, m: int, n_val: int, n_features: int, seed: int = 1
) -> tuple[IncompleteDataset, np.ndarray]:
    """A dataset where every row's ``m`` candidates cluster around its center."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_rows, n_features))
    sets = [
        center + CLUSTER_SPREAD * rng.normal(size=(m, n_features))
        for center in centers
    ]
    labels = [int(label) for label in rng.integers(0, 2, size=n_rows)]
    labels[0], labels[1] = 0, 1  # both labels are guaranteed present
    val_X = rng.normal(size=(n_val, n_features))
    return IncompleteDataset(sets, labels), val_X


def _timed(query, backend: str, options: ExecutionOptions, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute_query(query, backend=backend, options=options)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_speedup(query, repeats: int) -> tuple[dict, dict, list]:
    t_off, off = _timed(
        query, "batch", ExecutionOptions(cache=False, prune="off"), repeats
    )
    t_on, on = _timed(
        query, "batch", ExecutionOptions(cache=False, prune="on"), repeats
    )
    assert on.values == off.values, "pruned counts diverged from the full scan"
    speedup = {
        "n_points": query.n_points,
        "unpruned_seconds": t_off,
        "pruned_seconds": t_on,
        "speedup": t_off / t_on,
    }
    telemetry = {
        key: on.stats[key]
        for key in (
            "n_rows",
            "n_rows_pruned",
            "n_candidates",
            "n_pruned",
            "n_scanned",
        )
    }
    return speedup, telemetry, off.values


def bench_identity(query, reference) -> dict:
    checks = []
    for backend, options in (
        ("sequential", ExecutionOptions(cache=False, prune="on")),
        (
            "sharded",
            ExecutionOptions(
                cache=False, prune="on", tile_rows=8, tile_candidates=256
            ),
        ),
    ):
        result = execute_query(query, backend=backend, options=options)
        assert result.values == reference, (
            f"{backend} prune=on diverged from the unpruned reference"
        )
        checks.append(
            {
                "backend": backend,
                "n_rows_pruned": result.stats.get("n_rows_pruned", 0),
                "identical": True,
            }
        )
    return {"configurations": checks}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]
    dataset, val_X = clustered_workload(
        size["n_rows"], size["m"], size["n_val"], size["n_features"]
    )
    query = make_query(dataset, val_X, kind="counts", k=K)

    speedup, telemetry, reference = bench_speedup(query, repeats=2)
    identity = bench_identity(query, reference)

    report = {
        "benchmark": "pruning",
        "scale": scale,
        "workload": {
            "n_rows": dataset.n_rows,
            "candidates_per_row": size["m"],
            "n_val": int(val_X.shape[0]),
            "n_features": size["n_features"],
            "k": K,
            "cluster_spread": CLUSTER_SPREAD,
        },
        "speedup": speedup,
        "telemetry": telemetry,
        "identity": identity,
    }
    write_bench_report(args.output, report)

    print(
        format_table(
            ["configuration", "seconds", "speedup"],
            [
                ["batch, prune=off", f"{speedup['unpruned_seconds']:.3f}", "1.00x"],
                [
                    "batch, prune=on",
                    f"{speedup['pruned_seconds']:.3f}",
                    f"{speedup['speedup']:.2f}x",
                ],
            ],
            title=(
                f"Exact Q2 counts, {speedup['n_points']} points x "
                f"{dataset.n_rows} clustered rows ({scale} scale)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                [
                    "rows pruned",
                    f"{telemetry['n_rows_pruned']}/{telemetry['n_rows']}",
                ],
                [
                    "candidate positions pruned",
                    f"{telemetry['n_pruned']}/{telemetry['n_candidates']}",
                ],
                ["positions scanned", str(telemetry["n_scanned"])],
            ],
            title="Prune-certificate telemetry (batch backend, prune=on)",
        )
    )
    print()
    print(
        format_table(
            ["backend", "rows pruned", "identical"],
            [
                [row["backend"], str(row["n_rows_pruned"]), "yes"]
                for row in identity["configurations"]
            ],
            title="Cross-backend identity (prune=on vs the unpruned reference)",
        )
    )

    if speedup["speedup"] < 2.0:
        print(
            f"FAIL: pruning is only {speedup['speedup']:.2f}x over the full "
            "scan; the bar is 2x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
