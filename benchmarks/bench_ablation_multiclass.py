"""Ablation A4: SS-DC-MC vs tally enumeration as the label space grows.

Appendix A.3's motivation: with many classes the number of label tallies
``C(|Y|+K-1, K)`` dominates, and SS-DC-MC replaces the enumeration with a
dynamic program polynomial in ``|Y|``. Both must stay exact; the crossover
should appear within a modest sweep.
"""

import time

import numpy as np

from repro.core.engine import sortscan_counts
from repro.core.multiclass import sortscan_counts_multiclass
from repro.experiments.complexity import random_instance
from repro.utils.tables import format_table

N, M, K = 60, 3, 5
LABEL_SWEEP = [2, 4, 8, 12]


def test_ablation_multiclass_scaling(benchmark, emit):
    def run():
        rows = []
        rng = np.random.default_rng(2)
        last_ratio = None
        for n_labels in LABEL_SWEEP:
            dataset, t = random_instance(N, M, n_labels=n_labels, n_features=4, seed=rng)

            start = time.perf_counter()
            enum = sortscan_counts(dataset, t, k=K)
            enum_time = time.perf_counter() - start

            start = time.perf_counter()
            mc = sortscan_counts_multiclass(dataset, t, k=K)
            mc_time = time.perf_counter() - start

            assert enum == mc
            last_ratio = enum_time / mc_time
            rows.append(
                [
                    n_labels,
                    f"{enum_time * 1e3:.1f} ms",
                    f"{mc_time * 1e3:.1f} ms",
                    f"{last_ratio:.1f}x",
                ]
            )
        return rows, last_ratio

    rows, last_ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["|Y|", "tally enumeration", "SS-DC-MC", "MC advantage"],
            rows,
            title=f"Ablation A4 — label-space scaling (N={N}, M={M}, K={K})",
        )
    )
    # At the largest label count the enumeration penalty must be visible.
    assert last_ratio > 1.0, "SS-DC-MC should win for large label spaces"
