"""Regenerates Table 1: dataset characteristics.

Paper's row format: dataset, error type, #examples, #features, missing rate.
We report both the paper-scale row counts (the recipes carry them) and the
actually generated laptop-scale instances with their measured missing rates.
"""

from repro.data.recipes import RECIPES, recipe_names
from repro.data.task import build_cleaning_task
from repro.experiments.config import get_scale
from repro.utils.tables import format_percent, format_table


def build_all_tasks():
    scale = get_scale()
    return {
        name: build_cleaning_task(
            name,
            n_train=scale.n_train,
            n_val=scale.n_val,
            n_test=scale.n_test,
            seed=0,
        )
        for name in recipe_names()
    }


def test_table1_dataset_characteristics(benchmark, emit):
    tasks = benchmark.pedantic(build_all_tasks, rounds=1, iterations=1)

    rows = []
    for name in recipe_names():
        info = RECIPES[name]
        task = tasks[name]
        rows.append(
            [
                name,
                info.error_type,
                info.paper_rows,
                task.incomplete.n_rows,
                info.n_features,
                format_percent(info.paper_missing_rate, 1),
                format_percent(task.dirty_train.missing_rate(), 1),
            ]
        )
    emit(
        format_table(
            [
                "dataset",
                "error type",
                "paper #examples",
                "ours #train",
                "#features",
                "paper missing",
                "ours missing",
            ],
            rows,
            title="Table 1 — dataset characteristics (paper vs this reproduction)",
        )
    )

    # Sanity: generated tables match the recipe metadata.
    for name in recipe_names():
        info = RECIPES[name]
        task = tasks[name]
        assert task.dirty_train.n_features == info.n_features
        measured = task.dirty_train.missing_rate()
        assert abs(measured - info.paper_missing_rate) < 0.05
