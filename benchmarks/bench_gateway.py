"""Benchmark: the partitioned gateway vs the single-process service.

The scale-out question the gateway exists to answer: 16 concurrent
cleaning sessions each fire certainty queries with *their own pins*
(each analyst has provisionally repaired a different cell — the CPClean
workload). Pins are part of the query-family key, so micro-batching
cannot coalesce across sessions; every family flush in a single process
pays a full candidate-stacking preparation over all rows. The gateway's
executors hold shard-local prepared state that is *pin-independent* —
pins are applied per request on top of it — so a flush costs one
scatter-gather instead of a re-preparation.

Two runs over the *same* workload (identical points, identical pins,
identical broker settings — window, max_batch, caching off so every
request really executes):

* **single-process** — the classic broker topology;
* **gateway** — 4 executor processes own candidate-row partitions; a
  flush scatter-gathers per-partition min/max tallies and merges them
  losslessly.

The acceptance bar is a **>=2x** throughput advantage for the gateway
(the PR's headline claim), with bit-identical per-point values between
the two modes — partitioning is a placement decision, never a semantic
one. The advantage is preparation amortisation, not parallelism, so it
holds even on a single-core runner (and widens on real multi-core CI).

Emits ``BENCH_gateway.json``. Run as a script::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.core.dataset import IncompleteDataset
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service import DatasetRegistry, Gateway, QueryBroker
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("gateway")

N_THREADS = 16
N_EXECUTORS = 4

_WORKLOADS = {
    "smoke": dict(n_rows=6_000, per_thread=3, window_s=0.005, max_batch=16),
    "default": dict(n_rows=12_000, per_thread=8, window_s=0.005, max_batch=16),
}


def _prep_dominated_dataset(n_rows: int, n_features: int = 4) -> IncompleteDataset:
    """Many certain rows, a few dirty ones: preparation cost is the story.

    One candidate per row (plus periodic 2-candidate dirty rows the
    sessions pin) keeps the kernel work small while the per-flush
    candidate stacking a single process repeats — and the executors never
    do — stays O(n_rows).
    """
    rng = np.random.default_rng(42)
    sets = []
    for row in range(n_rows):
        m = 2 if row % 500 == 0 else 1
        sets.append(rng.normal(size=(m, n_features)))
    labels = [int(label) for label in rng.integers(0, 2, size=n_rows)]
    labels[0], labels[1] = 0, 1
    return IncompleteDataset(sets, labels)


def _client_load(
    dataset: IncompleteDataset,
    points: np.ndarray,
    session_pins: list[dict],
    per_thread: int,
    window_s: float,
    max_batch: int,
    gateway: Gateway | None,
) -> tuple[float, list, dict]:
    """Run the 16-session pinned workload; return (seconds, values, metrics)."""
    registry = DatasetRegistry()
    registry.register("bench", dataset, k=3)
    broker = QueryBroker(
        registry,
        window_s=window_s,
        max_batch=max_batch,
        max_pending=4 * len(points),
        cache=False,  # every request must actually execute
        gateway=gateway,
    )
    # Warm up outside the timed window: the gateway pays a one-time
    # distribute (partition + place + push candidate sets), the local
    # broker pays nothing it would not pay again per flush.
    broker.query("bench", points[0], kind="certain_label")
    values: list = [None] * len(points)

    def session(thread: int) -> None:
        pins = session_pins[thread]
        for j in range(per_thread):
            index = thread * per_thread + j
            values[index] = broker.query(
                "bench", points[index], kind="certain_label", pins=pins
            )["values"][0]

    threads = [
        threading.Thread(target=session, args=(t,)) for t in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    metrics = broker.metrics()
    broker.close()  # also shuts the gateway's executors down
    return elapsed, values, metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]

    dataset = _prep_dominated_dataset(size["n_rows"])
    dirty = dataset.uncertain_rows()
    rng = np.random.default_rng(7)
    n_points = N_THREADS * size["per_thread"]
    points = rng.normal(size=(n_points, 4)) * 0.5
    # One pinned repair per session: 16 distinct query families.
    session_pins = [
        {int(dirty[t % len(dirty)]): 0} for t in range(N_THREADS)
    ]

    t_single, values_single, metrics_single = _client_load(
        dataset, points, session_pins, size["per_thread"],
        size["window_s"], size["max_batch"], gateway=None,
    )
    t_gateway, values_gateway, metrics_gateway = _client_load(
        dataset, points, session_pins, size["per_thread"],
        size["window_s"], size["max_batch"], gateway=Gateway(N_EXECUTORS),
    )

    assert values_gateway == values_single, (
        "gateway values diverged from single-process serving"
    )
    # Spot-check both against direct planner execution (full run would
    # re-pay the preparation the benchmark measures, once per session).
    for thread in (0, N_THREADS - 1):
        index = thread * size["per_thread"]
        direct = execute_query(
            make_query(
                dataset, points[index : index + 1], kind="certain_label",
                k=3, pins=session_pins[thread],
            ),
            options=ExecutionOptions(cache=False),
        ).values
        assert values_single[index] == direct[0], (
            "served values diverged from execute_query"
        )
    assert metrics_gateway["gateway_served"] > 0, "gateway never actually served"
    assert metrics_gateway["gateway_fallbacks"] == 0, "gateway fell back locally"

    speedup = t_single / t_gateway
    report = {
        "benchmark": "gateway",
        "scale": scale,
        "workload": {
            "n_rows": dataset.n_rows,
            "n_candidates": int(sum(dataset.candidate_counts())),
            "n_points": n_points,
            "n_threads": N_THREADS,
            "n_query_families": N_THREADS,
            "kind": "certain_label",
            "pins_per_session": 1,
        },
        "single_process": {
            "seconds": t_single,
            "queries_per_sec": n_points / t_single,
            "batches_executed": metrics_single["batches_executed"],
        },
        "gateway": {
            "n_executors": N_EXECUTORS,
            "seconds": t_gateway,
            "queries_per_sec": n_points / t_gateway,
            "batches_executed": metrics_gateway["batches_executed"],
            "gateway_served": metrics_gateway["gateway_served"],
            "n_partitions": metrics_gateway["gateway"]["datasets"]["bench"][
                "n_partitions"
            ],
            "respawns": metrics_gateway["gateway"]["respawns"],
        },
        "speedup": speedup,
        "values_bit_identical": True,
    }
    write_bench_report(args.output, report)

    print(
        format_table(
            ["topology", "flushes", "seconds", "queries/sec", "speedup"],
            [
                [
                    "single-process",
                    str(metrics_single["batches_executed"]),
                    f"{t_single:.3f}",
                    f"{n_points / t_single:.0f}",
                    "1.00x",
                ],
                [
                    f"gateway ({N_EXECUTORS} executors)",
                    str(metrics_gateway["batches_executed"]),
                    f"{t_gateway:.3f}",
                    f"{n_points / t_gateway:.0f}",
                    f"{speedup:.2f}x",
                ],
            ],
            title=(
                f"{n_points} pinned certainty queries over {dataset.n_rows} rows "
                f"from {N_THREADS} cleaning sessions ({scale} scale)"
            ),
        )
    )

    if speedup < 2.0:
        print(
            f"FAIL: the gateway is only {speedup:.2f}x over single-process "
            "serving; the bar is 2x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
