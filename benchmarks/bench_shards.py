"""Benchmark: the sharded out-of-core backend vs the sequential reference.

Three measurements, emitted both as human-readable tables and as
machine-readable JSON (``BENCH_shards.json``):

1. **Speedup** — the exact Q2 counting query over a validation set larger
   than one tile, run once on the ``sequential`` backend (one prepared
   scan per point) and once on the ``sharded`` backend with 4 workers.
   The acceptance bar is a >=2x wall-clock advantage with bit-identical
   counts (the tuned scan kernel plus the streamed vectorised distance
   tiles deliver it even on a single CPU; the persistent fork pool adds
   on top where cores exist).
2. **Memory model** — the resident tile buffer vs the dense similarity
   matrix the batch backend would allocate, straight from the backend's
   execution stats, plus the tile grid that was streamed.
3. **Tiling invariance** — the same query re-run across adversarial tile
   shapes (single-candidate tiles through single-tile), asserting results
   stay bit-identical while the streamed tile count changes.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_shards.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from conftest import bench_output_path, write_bench_report
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.core.shards import ShardedBackend
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("shards")

_WORKLOADS = {
    # tile_rows chosen so the validation set spans several row tiles: the
    # acceptance bar is explicitly about a workload larger than one tile.
    "smoke": dict(n_train=120, n_val=32, tile_rows=8, tile_candidates=128),
    "default": dict(n_train=150, n_val=48, tile_rows=8, tile_candidates=256),
}

N_JOBS = 4


def bench_speedup(task, tile_rows: int, tile_candidates: int, repeats: int) -> dict:
    query = make_query(task.incomplete, task.val_X, kind="counts", k=task.k)

    def run(backend: str, options: ExecutionOptions):
        best, values = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            values = execute_query(query, backend=backend, options=options).values
            best = min(best, time.perf_counter() - start)
        return best, values

    t_seq, seq = run("sequential", ExecutionOptions(cache=False))
    t_sharded, sharded = run(
        "sharded",
        ExecutionOptions(
            cache=False,
            n_jobs=N_JOBS,
            tile_rows=tile_rows,
            tile_candidates=tile_candidates,
        ),
    )
    assert sharded == seq, "sharded counts diverged from the sequential reference"
    return {
        "n_points": query.n_points,
        "n_candidates": int(query.workload_size() / max(query.n_points, 1)),
        "n_jobs": N_JOBS,
        "tile_rows": tile_rows,
        "tile_candidates": tile_candidates,
        "sequential_seconds": t_seq,
        "sharded_seconds": t_sharded,
        "speedup": t_seq / t_sharded,
    }


def bench_memory_model(task, tile_rows: int, tile_candidates: int) -> dict:
    backend = ShardedBackend(tile_rows=tile_rows, tile_candidates=tile_candidates)
    query = make_query(task.incomplete, task.val_X, kind="counts", k=task.k)
    backend.execute(query, ExecutionOptions(cache=False))
    stats = dict(backend.last_stats)
    stats["resident_fraction"] = stats["tile_buffer_bytes"] / stats["dense_bytes"]
    return stats


def bench_tiling_invariance(task) -> dict:
    query = make_query(task.incomplete, task.val_X, kind="counts", k=task.k)
    reference = execute_query(
        query, backend="sequential", options=ExecutionOptions(cache=False)
    ).values
    rows = []
    for tile_rows, tile_candidates in ((1, 1), (4, 32), (1_000_000, 1_000_000)):
        backend = ShardedBackend(tile_rows=tile_rows, tile_candidates=tile_candidates)
        values = backend.execute(query, ExecutionOptions(cache=False))
        assert values == reference, (
            f"tiling {tile_rows}x{tile_candidates} changed the results"
        )
        rows.append(
            {
                "tile_rows": backend.last_stats["tile_rows"],
                "tile_candidates": backend.last_stats["tile_candidates"],
                "n_tiles_streamed": backend.last_stats["n_tiles_streamed"],
                "identical": True,
            }
        )
    return {"n_points": query.n_points, "configurations": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]
    task = build_cleaning_task(
        "supreme", n_train=size["n_train"], n_val=size["n_val"], n_test=20, seed=1
    )

    speedup = bench_speedup(
        task, size["tile_rows"], size["tile_candidates"], repeats=2
    )
    memory = bench_memory_model(task, size["tile_rows"], size["tile_candidates"])
    invariance = bench_tiling_invariance(task)

    report = {
        "benchmark": "shards",
        "scale": scale,
        "workload": {
            "recipe": "supreme",
            "n_train": task.incomplete.n_rows,
            "n_val": int(task.val_X.shape[0]),
            "k": task.k,
        },
        "speedup": speedup,
        "memory_model": memory,
        "tiling_invariance": invariance,
    }

    write_bench_report(args.output, report)

    print(
        format_table(
            ["backend", "seconds", "speedup"],
            [
                ["sequential", f"{speedup['sequential_seconds']:.3f}", "1.00x"],
                [
                    f"sharded (n_jobs={N_JOBS})",
                    f"{speedup['sharded_seconds']:.3f}",
                    f"{speedup['speedup']:.2f}x",
                ],
            ],
            title=(
                f"Exact Q2 counts, {speedup['n_points']} points over "
                f"{memory['n_row_tiles']} row tiles ({scale} scale)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["quantity", "bytes"],
            [
                ["resident tile buffer", str(memory["tile_buffer_bytes"])],
                ["dense similarity matrix", str(memory["dense_bytes"])],
                ["resident fraction", f"{memory['resident_fraction']:.1%}"],
            ],
            title=(
                f"Memory model — {memory['n_row_tiles']}x"
                f"{memory['n_candidate_tiles']} tile grid, "
                f"{memory['n_tiles_streamed']} row tiles streamed"
            ),
        )
    )
    print()
    print(
        format_table(
            ["tile_rows", "tile_candidates", "row tiles streamed", "identical"],
            [
                [str(row["tile_rows"]), str(row["tile_candidates"]),
                 str(row["n_tiles_streamed"]), "yes"]
                for row in invariance["configurations"]
            ],
            title="Tiling invariance (all configurations bit-identical)",
        )
    )

    if speedup["speedup"] < 2.0:
        print(
            f"FAIL: sharded backend is only {speedup['speedup']:.2f}x over "
            "sequential; the bar is 2x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
