"""Ablation A1: the four exact Q2 engines agree and differ only in speed.

The library ships four interchangeable counting backends (naive Algorithm-1
DP, fast incremental polynomial engine, SS-DC segment tree, SS-DC-MC). This
bench confirms exact agreement on a shared workload and reports their
relative speed, quantifying the value of each optimisation step the paper
describes (per-candidate DP -> incremental maintenance -> D&C tree).
"""

import numpy as np

from repro.experiments.complexity import ALGORITHMS, random_instance
from repro.utils.tables import format_table

N, M, K = 120, 3, 3


def _workload(n_points=5):
    rng = np.random.default_rng(0)
    dataset, _ = random_instance(N, M, n_labels=2, n_features=4, seed=rng)
    points = [rng.normal(size=4) for _ in range(n_points)]
    return dataset, points


def test_ablation_engine_agreement_and_speed(benchmark, emit):
    dataset, points = _workload()
    names = ["ss-naive", "ss-engine", "ss-tree", "ss-multiclass"]

    import time

    def run_all():
        outputs = {}
        timings = {}
        for name in names:
            func = ALGORITHMS[name]
            start = time.perf_counter()
            outputs[name] = [func(dataset, t, k=K) for t in points]
            timings[name] = time.perf_counter() - start
        return outputs, timings

    outputs, timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    reference = outputs["ss-engine"]
    for name in names:
        assert outputs[name] == reference, f"{name} disagrees with the fast engine"

    base = timings["ss-naive"]
    rows = [
        [name, f"{timings[name] * 1e3:.1f} ms", f"{base / max(timings[name], 1e-9):.1f}x"]
        for name in names
    ]
    emit(
        format_table(
            ["engine", "time (5 queries)", "speedup vs naive"],
            rows,
            title=f"Ablation A1 — exact Q2 engines on N={N}, M={M}, K={K}",
        )
    )
    assert timings["ss-engine"] < timings["ss-naive"], (
        "the incremental engine must beat the per-candidate DP"
    )
