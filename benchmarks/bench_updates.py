"""Benchmark: delta maintenance vs full recompute of CP tallies.

The delta engine (:class:`repro.core.deltas.DeltaMaintainedState`)
promises O(Δ) absorption of base-data writes — repairs, appends,
deletes — against a warm state whose counts stay bit-identical to a
from-scratch recompute. This benchmark scripts a write sequence over a
recipe-sized dataset and times, for every write,

1. ``apply`` on the maintained state (the delta path), and
2. building a fresh state on the post-write dataset (the recompute the
   delta path replaces: full kernel + a recount of every point).

Counts are asserted bit-identical at every step; the acceptance bar is a
>=5x aggregate wall-clock advantage for the delta path, enforced here
and in CI via ``BENCH_updates.json``.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_updates.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.core.deltas import (
    CellRepair,
    DeltaMaintainedState,
    RowAppend,
    RowDelete,
    apply_delta_to_dataset,
)
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("updates")

_WORKLOADS = {
    "smoke": dict(n_train=120, n_val=24, n_deltas=24),
    "default": dict(n_train=200, n_val=48, n_deltas=60),
}

SPEEDUP_BAR = 5.0


def scripted_deltas(dataset, n_deltas: int, rng: np.random.Generator) -> list:
    """A valid write sequence: mostly repairs (the cleaning loop's shape),
    with appends and deletes mixed in the way live serving produces them."""
    deltas = []
    current = dataset
    for i in range(n_deltas):
        dirty = current.uncertain_rows()
        if i % 6 == 4:
            row = np.concatenate(
                [current.candidates(int(rng.integers(0, current.n_rows)))[:1]]
            ) + rng.normal(scale=0.05, size=(1, current.n_features))
            delta = RowAppend(row, int(rng.integers(0, current.n_labels)))
        elif i % 6 == 5 and current.n_rows > 2 * current.n_features:
            delta = RowDelete(int(rng.integers(0, current.n_rows)))
        elif dirty:
            row = int(dirty[int(rng.integers(0, len(dirty)))])
            delta = CellRepair(row, int(rng.integers(0, current.candidate_counts()[row])))
        else:  # dataset fully clean before the budget ran out
            break
        deltas.append(delta)
        current = apply_delta_to_dataset(current, delta)
    return deltas


def bench_sequence(dataset, val_X, k: int, deltas: list) -> dict:
    state = DeltaMaintainedState(dataset, val_X, k=k)
    current = dataset
    per_op: dict[str, dict[str, float | int]] = {}
    t_delta_total = 0.0
    t_recompute_total = 0.0
    for delta in deltas:
        start = time.perf_counter()
        report = state.apply(delta)
        t_delta = time.perf_counter() - start

        current = apply_delta_to_dataset(current, delta)
        start = time.perf_counter()
        fresh = DeltaMaintainedState(current, val_X, k=k)
        t_recompute = time.perf_counter() - start

        assert state.counts_all() == fresh.counts_all(), (
            f"delta path diverged from recompute after {report['op']}"
        )
        t_delta_total += t_delta
        t_recompute_total += t_recompute
        bucket = per_op.setdefault(
            report["op"], {"n": 0, "delta_seconds": 0.0, "recompute_seconds": 0.0}
        )
        bucket["n"] += 1
        bucket["delta_seconds"] += t_delta
        bucket["recompute_seconds"] += t_recompute
    return {
        "n_deltas": len(deltas),
        "n_points": int(val_X.shape[0]),
        "n_rows_final": state.dataset.n_rows,
        "delta_seconds": t_delta_total,
        "recompute_seconds": t_recompute_total,
        "speedup": t_recompute_total / t_delta_total,
        "points_pruned": state.n_pruned,
        "points_recomputed": state.n_recomputed,
        "per_op": per_op,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]
    task = build_cleaning_task(
        "supreme", n_train=size["n_train"], n_val=size["n_val"], n_test=20, seed=1
    )
    rng = np.random.default_rng(7)
    deltas = scripted_deltas(task.incomplete, size["n_deltas"], rng)
    result = bench_sequence(task.incomplete, task.val_X, task.k, deltas)

    report = {
        "benchmark": "updates",
        "scale": scale,
        "workload": {
            "recipe": "supreme",
            "n_train": task.incomplete.n_rows,
            "n_val": result["n_points"],
            "k": task.k,
            "n_deltas": result["n_deltas"],
        },
        "sequence": result,
        "speedup_bar": SPEEDUP_BAR,
    }
    write_bench_report(args.output, report)

    rows = [
        [
            op,
            str(bucket["n"]),
            f"{bucket['delta_seconds'] * 1e3:.1f}",
            f"{bucket['recompute_seconds'] * 1e3:.1f}",
            f"{bucket['recompute_seconds'] / bucket['delta_seconds']:.1f}x",
        ]
        for op, bucket in sorted(result["per_op"].items())
    ]
    rows.append(
        [
            "total",
            str(result["n_deltas"]),
            f"{result['delta_seconds'] * 1e3:.1f}",
            f"{result['recompute_seconds'] * 1e3:.1f}",
            f"{result['speedup']:.1f}x",
        ]
    )
    print(
        format_table(
            ["op", "n", "delta ms", "recompute ms", "speedup"],
            rows,
            title=(
                f"Delta apply vs full recompute — {result['n_points']} maintained "
                f"points, {result['n_deltas']} writes ({scale} scale); "
                f"{result['points_pruned']} point-updates pruned, "
                f"{result['points_recomputed']} recounted"
            ),
        )
    )

    if result["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: delta path is only {result['speedup']:.2f}x over full "
            f"recompute; the bar is {SPEEDUP_BAR:.0f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
