"""Regenerates Figure 10: the effect of the validation-set size.

The paper varies ``|Dval|`` from 200 to 1400 and observes that both the gap
closed and the cleaning effort grow with the validation size and then
plateau: a small validation set is easy to certify (little cleaning) but
generalises poorly to the test set; past a point, more validation examples
change nothing. We sweep proportionally scaled sizes and assert the
monotone-then-flat shape loosely (cleaning effort at the largest size must
be at least the effort at the smallest).
"""

import numpy as np
import pytest

from repro.data.recipes import recipe_names
from repro.experiments.config import get_scale
from repro.experiments.curves import sweep_validation_size
from repro.utils.tables import format_percent, format_table

_RESULTS = {}


def _val_sizes():
    scale = get_scale()
    base = scale.n_val
    return [max(4, base // 4), max(6, base // 2), base, base * 2]


def _run_recipe(recipe: str):
    scale = get_scale()
    return sweep_validation_size(
        recipe,
        val_sizes=_val_sizes(),
        n_train=scale.n_train,
        n_test=scale.n_test,
        seed=1,
    )


@pytest.mark.parametrize("recipe", recipe_names())
def test_fig10_validation_sweep(benchmark, recipe):
    results = benchmark.pedantic(_run_recipe, args=(recipe,), rounds=1, iterations=1)
    _RESULTS[recipe] = results

    efforts = [r.examples_cleaned_fraction for r in results]
    assert all(0.0 <= e <= 1.0 for e in efforts)
    # Larger validation sets cannot be easier to certify than much smaller
    # ones (allow slack for seed noise at laptop scale).
    assert efforts[-1] >= efforts[0] - 0.25


def test_fig10_report(benchmark, emit):
    if len(_RESULTS) < len(recipe_names()):
        pytest.skip("per-recipe sweeps did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only test
    sizes = _val_sizes()
    rows = []
    for recipe in recipe_names():
        gap = [format_percent(r.gap_closed) for r in _RESULTS[recipe]]
        effort = [format_percent(r.examples_cleaned_fraction) for r in _RESULTS[recipe]]
        rows.append([recipe, "gap closed", *gap])
        rows.append([recipe, "examples cleaned", *effort])
    emit(
        format_table(
            ["dataset", "series", *[f"|Dval|={s}" for s in sizes]],
            rows,
            title="Figure 10 — CPClean outcome vs validation-set size",
        )
    )
