"""Regenerates Table 2: end-to-end performance comparison.

Per dataset: test accuracy of Ground Truth and Default Cleaning, the gap
closed by BoostClean / HoloClean / CPClean, the fraction of dirty examples
CPClean had a human clean before every validation example was CP'ed, and
the gap closed when CPClean is stopped at a 20% cleaning budget.

Paper reference rows (their hardware/datasets):

    dataset      GT    Default  Boost  Holo  CPClean(gap, cleaned)  CP@20%
    BabyProduct  0.668 0.589     1%     1%    99%  64%               72%
    Supreme      0.968 0.877    12%    -4%   100%  15%              100%
    Bank         0.643 0.558    20%    11%   102%  93%               52%
    Puma         0.794 0.747    28%   -64%   102%  63%               40%

We reproduce the *shape*: CPClean closes (near) the whole gap with partial
cleaning effort, BoostClean is consistently positive but smaller, HoloClean
is erratic (can be negative). One dataset per test so failures stay local.
"""

import pytest

from repro.data.recipes import recipe_names
from repro.experiments.config import get_scale
from repro.experiments.end_to_end import average_end_to_end
from repro.utils.tables import format_percent, format_table

_RESULTS = {}


def _run_recipe(recipe: str):
    scale = get_scale()
    seeds = list(range(1, 1 + max(scale.n_seeds, 2)))
    return average_end_to_end(
        recipe,
        seeds=seeds,
        n_train=scale.n_train,
        n_val=scale.n_val,
        n_test=scale.n_test,
    )


@pytest.mark.parametrize("recipe", recipe_names())
def test_table2_row(benchmark, recipe):
    result = benchmark.pedantic(_run_recipe, args=(recipe,), rounds=1, iterations=1)
    _RESULTS[recipe] = result

    # Shape assertions (loose: laptop scale is noisy).
    assert result.ground_truth_accuracy > result.default_accuracy - 0.02, (
        "ground truth should (weakly) dominate default cleaning"
    )
    assert result.cp_clean_examples_cleaned <= 1.0
    # CPClean certifies the validation set on every run.
    for individual in result.raw["individual"]:
        assert individual.raw["cp_fraction_final"] == 1.0


def test_table2_report(benchmark, emit):
    if len(_RESULTS) < len(recipe_names()):
        pytest.skip("per-recipe rows did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only test
    rows = []
    for recipe in recipe_names():
        r = _RESULTS[recipe]
        rows.append(
            [
                recipe,
                f"{r.ground_truth_accuracy:.3f}",
                f"{r.default_accuracy:.3f}",
                format_percent(r.boost_clean_gap),
                format_percent(r.holo_clean_gap),
                format_percent(r.cp_clean_gap),
                format_percent(r.cp_clean_examples_cleaned),
                format_percent(r.cp_clean_budget_gap),
            ]
        )
    emit(
        format_table(
            [
                "dataset",
                "GT acc",
                "Default acc",
                "Boost gap",
                "Holo gap",
                "CPClean gap",
                "CP cleaned",
                "CP@20% gap",
            ],
            rows,
            title="Table 2 — end-to-end performance comparison (seed-averaged)",
        )
    )

    # Aggregate shape check: CPClean's average gap closed beats both
    # automatic baselines on average across datasets.
    import numpy as np

    cp = np.mean([_RESULTS[r].cp_clean_gap for r in recipe_names()])
    boost = np.mean([_RESULTS[r].boost_clean_gap for r in recipe_names()])
    holo = np.mean([_RESULTS[r].holo_clean_gap for r in recipe_names()])
    assert cp > boost, f"CPClean ({cp:.2f}) should beat BoostClean ({boost:.2f}) on average"
    assert cp > holo, f"CPClean ({cp:.2f}) should beat HoloClean ({holo:.2f}) on average"
