"""Benchmark: the unified query planner's backends.

Two measurements, emitted both as a human-readable table and as
machine-readable JSON (``BENCH_planner.json``):

1. **Cleaning-session steps/sec** — a fixed pin sequence is replayed
   against the same validation set, re-querying exact Q2 counts after
   every pin (the certainty-check workload of a cleaning session), once
   on the ``incremental`` backend (maintained counts, delta updates) and
   once on the ``sequential`` backend (full recount per step). The
   acceptance bar is a >=2x steps/sec advantage for the incremental
   backend, with bit-identical counts at every step.
2. **Batch-vs-sequential speedup per task flavor** — for each of the five
   flavors (binary, multiclass, weighted, topk, label_uncertainty) the
   same query set runs on the ``sequential`` and ``batch`` backends
   (results verified identical); the ratio shows how much of the PR-1
   batch treatment each flavor now inherits through the planner.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_planner.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.core.planner import (
    ExecutionOptions,
    IncrementalBackend,
    execute_query,
    get_backend,
    make_query,
)
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("planner")

_WORKLOADS = {
    # (n_train, n_val, max cleaning steps, flavor query points)
    "smoke": dict(n_train=60, n_val=12, steps=6, n_flavor_points=8),
    "default": dict(n_train=150, n_val=32, steps=10, n_flavor_points=24),
}


def _time(fn, repeats: int = 1):
    """Best-of-``repeats`` wall clock and the (stable) result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ---------------------------------------------------------------------------
# 1. Cleaning-session steps/sec: incremental vs full recount
# ---------------------------------------------------------------------------


def bench_cleaning_steps(task, steps: int) -> dict:
    dataset, val_X, k = task.incomplete, task.val_X, task.k
    pin_sequence = [
        (row, int(task.gt_choice[row])) for row in dataset.uncertain_rows()
    ][:steps]

    def run(backend_name: str) -> tuple[float, list]:
        # A fresh incremental backend per run: the timing must include the
        # state build, exactly as a fresh cleaning session would pay it.
        backend = (
            IncrementalBackend() if backend_name == "incremental" else None
        )
        trace = []
        pins: dict[int, int] = {}
        start = time.perf_counter()
        for row, cand in pin_sequence:
            pins[row] = cand
            query = make_query(dataset, val_X, kind="counts", k=k, pins=pins)
            if backend is not None:
                trace.append(backend.execute(query))
            else:
                trace.append(
                    execute_query(
                        query, backend=backend_name,
                        options=ExecutionOptions(cache=False),
                    ).values
                )
        return time.perf_counter() - start, trace

    t_incremental, trace_incremental = run("incremental")
    t_full, trace_full = run("sequential")
    assert trace_incremental == trace_full, (
        "incremental counts diverged from the full recount"
    )

    n = len(pin_sequence)
    incremental_sps = n / t_incremental
    full_sps = n / t_full
    return {
        "steps": n,
        "n_val": int(val_X.shape[0]),
        "incremental_seconds": t_incremental,
        "full_recount_seconds": t_full,
        "incremental_steps_per_sec": incremental_sps,
        "full_recount_steps_per_sec": full_sps,
        "speedup": incremental_sps / full_sps,
    }


# ---------------------------------------------------------------------------
# 2. Batch-vs-sequential speedup per flavor
# ---------------------------------------------------------------------------


def _flavor_queries(task, n_points: int):
    dataset = task.incomplete
    test_X = task.val_X[:n_points]
    lu = LabelUncertainDataset.from_incomplete(
        dataset, flip_rows=dataset.uncertain_rows()[:2]
    )
    # The binary task recipes have two labels; the "multiclass" flavor on
    # the same dataset exercises the counting path without the MM shortcut.
    yield "binary", make_query(dataset, test_X, kind="counts", k=task.k)
    yield "multiclass", make_query(
        dataset, test_X, kind="counts", flavor="multiclass", k=task.k
    )
    yield "weighted", make_query(
        dataset, test_X, kind="counts", flavor="weighted", k=task.k
    )
    yield "topk", make_query(dataset, test_X, kind="counts", flavor="topk", k=task.k)
    yield "label_uncertainty", make_query(lu, test_X, kind="counts", k=task.k)


def bench_flavors(task, n_points: int, repeats: int) -> dict:
    out = {}
    options = ExecutionOptions(cache=False)
    for flavor, query in _flavor_queries(task, n_points):
        t_seq, seq = _time(
            lambda q=query: execute_query(q, backend="sequential", options=options).values,
            repeats,
        )
        t_batch, batch = _time(
            lambda q=query: execute_query(q, backend="batch", options=options).values,
            repeats,
        )
        assert batch == seq, f"batch backend diverged on flavor {flavor!r}"
        out[flavor] = {
            "n_points": query.n_points,
            "sequential_seconds": t_seq,
            "batch_seconds": t_batch,
            "speedup": t_seq / t_batch,
        }
    return out


# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]
    task = build_cleaning_task(
        "supreme", n_train=size["n_train"], n_val=size["n_val"], n_test=20, seed=1
    )

    session = bench_cleaning_steps(task, steps=size["steps"])
    flavors = bench_flavors(
        task, n_points=size["n_flavor_points"], repeats=1 if args.smoke else 2
    )

    report = {
        "benchmark": "planner",
        "scale": scale,
        "workload": {
            "recipe": "supreme",
            "n_train": task.incomplete.n_rows,
            "k": task.k,
        },
        "cleaning_session": session,
        "flavors": flavors,
        "backends": {
            name: {
                "batchable": get_backend(name).capabilities.batchable,
                "incremental": get_backend(name).capabilities.incremental,
            }
            for name in ("sequential", "batch", "incremental")
        },
    }

    write_bench_report(args.output, report)

    print(
        format_table(
            ["path", "steps/sec", "speedup"],
            [
                ["incremental backend", f"{session['incremental_steps_per_sec']:.2f}",
                 f"{session['speedup']:.2f}x"],
                ["full recount (sequential)", f"{session['full_recount_steps_per_sec']:.2f}",
                 "1.00x"],
            ],
            title=(
                f"Cleaning-session certainty checks — {session['steps']} pins, "
                f"{session['n_val']} validation points"
            ),
        )
    )
    print()
    print(
        format_table(
            ["flavor", "sequential s", "batch s", "speedup"],
            [
                [flavor, f"{row['sequential_seconds']:.3f}",
                 f"{row['batch_seconds']:.3f}", f"{row['speedup']:.2f}x"]
                for flavor, row in flavors.items()
            ],
            title=f"Batch backend vs sequential per task flavor ({scale} scale)",
        )
    )

    if session["speedup"] < 2.0:
        print(
            f"FAIL: incremental backend is only {session['speedup']:.2f}x over "
            "full recount; the bar is 2x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
