"""Regenerates Figure 4: the complexity summary of the CP algorithms.

The paper's Figure 4 is a table of asymptotic bounds:

    K  |Y|  Query   Alg.  Complexity
    1   2   Q1/Q2   SS    O(NM log NM)
    K   2   Q1      MM    O(NM)
    K  |Y|  Q1/Q2   SS    O(NM (log NM + K^2 log N))

We verify the bounds empirically: runtimes over an ``N`` sweep are fitted
with a log-log slope, which must be near 1 for the near-linear algorithms
(MM, SS engine, SS-DC tree at fixed K) and near 2 for the naive
per-candidate-DP reference. Brute force is measured on tiny instances only,
to exhibit the exponential wall the polynomial algorithms avoid.
"""

import pytest

from repro.experiments.complexity import fit_growth_exponent, measure_runtime
from repro.utils.tables import format_table

SWEEP = [40, 80, 160, 320]
M = 3


def _sweep(algorithm: str, k: int, n_labels: int = 2, sizes=None):
    sizes = sizes or SWEEP
    points = [
        measure_runtime(algorithm, n_rows=n, m_candidates=M, k=k, n_labels=n_labels, repeats=2)
        for n in sizes
    ]
    return points, fit_growth_exponent(sizes, [p.seconds for p in points])


class TestFigure4:
    def test_fig4_polynomial_algorithms(self, benchmark, emit):
        def run_all():
            results = {}
            results["MM (Q1, K=3, |Y|=2)"] = _sweep("minmax", k=3)
            results["SS engine (Q2, K=1)"] = _sweep("ss-engine", k=1)
            results["SS engine (Q2, K=3)"] = _sweep("ss-engine", k=3)
            results["SS-DC tree (Q2, K=3)"] = _sweep("ss-tree", k=3)
            results["SS-DC-MC (Q2, K=3, |Y|=4)"] = _sweep("ss-multiclass", k=3, n_labels=4)
            results["SS naive DP (Q2, K=3)"] = _sweep(
                "ss-naive", k=3, sizes=[20, 40, 80, 160]
            )
            return results

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)

        rows = []
        for name, (points, slope) in results.items():
            times = "  ".join(f"{p.seconds * 1e3:7.1f}" for p in points)
            sizes = [p.n_rows for p in points]
            rows.append([name, str(sizes), times + " ms", f"{slope:.2f}"])
        emit(
            format_table(
                ["algorithm", "N sweep", "runtimes", "log-log slope"],
                rows,
                title=(
                    "Figure 4 — empirical complexity of the CP algorithms "
                    f"(M={M}; slope ~1 = near-linear in N)"
                ),
            )
        )

        # The polynomial algorithms must be clearly sub-quadratic in N...
        for name in (
            "MM (Q1, K=3, |Y|=2)",
            "SS engine (Q2, K=1)",
            "SS engine (Q2, K=3)",
            "SS-DC tree (Q2, K=3)",
            "SS-DC-MC (Q2, K=3, |Y|=4)",
        ):
            _points, slope = results[name]
            assert slope < 1.7, f"{name} grew with exponent {slope:.2f}"
        # ...while the naive reference is about quadratic.
        _points, naive_slope = results["SS naive DP (Q2, K=3)"]
        assert naive_slope > 1.5, f"naive SS grew with exponent {naive_slope:.2f}"

    def test_fig4_bruteforce_wall(self, benchmark, emit):
        """Brute force is exponential: the per-world cost times M^N."""

        def run():
            sizes = [6, 8, 10, 12]
            points = [
                measure_runtime("bruteforce", n_rows=n, m_candidates=2, k=1, repeats=1)
                for n in sizes
            ]
            return sizes, points

        sizes, points = benchmark.pedantic(run, rounds=1, iterations=1)
        ss = [
            measure_runtime("ss-engine", n_rows=n, m_candidates=2, k=1, repeats=1)
            for n in sizes
        ]
        rows = [
            [n, f"{2**n}", f"{bf.seconds * 1e3:.1f} ms", f"{fast.seconds * 1e3:.2f} ms"]
            for n, bf, fast in zip(sizes, points, ss)
        ]
        emit(
            format_table(
                ["N", "#worlds", "brute force", "SS engine"],
                rows,
                title="Figure 4 (context) — exponential enumeration vs polynomial SS",
            )
        )
        # doubling the instance multiplies brute force by ~4x (2 extra rows),
        # while SS stays within a small factor.
        assert points[-1].seconds / points[0].seconds > 8
        assert ss[-1].seconds / max(ss[0].seconds, 1e-9) < 8
