"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index), prints it, and appends it to
``benchmarks/output/results.txt`` so the rows survive pytest's output
capturing. Benchmarks honour the ``REPRO_SCALE`` environment variable
(``quick`` / ``default`` / ``large``).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it to benchmarks/output/results.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "results.txt"

    def _emit(text: str) -> None:
        block = "\n" + text + "\n"
        print(block)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(block)

    return _emit
