"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index), prints it, and appends it to
``benchmarks/output/results.txt`` so the rows survive pytest's output
capturing. Benchmarks honour the ``REPRO_SCALE`` environment variable
(``quick`` / ``default`` / ``large``).

The CI-gating benchmarks (``bench_planner``, ``bench_shards``,
``bench_service``) additionally emit a machine-readable
``BENCH_<name>.json`` report; :func:`bench_output_path` and
:func:`write_bench_report` are the one shared implementation of that
emit path (every script used to hand-roll its own mkdir+dump).
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import subprocess

try:
    import pytest
except ImportError:  # standalone `python benchmarks/bench_*.py` runs only
    pytest = None  # need the report helpers below, not the fixtures

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_output_path(name: str) -> pathlib.Path:
    """The canonical location of a ``BENCH_<name>.json`` report."""
    return OUTPUT_DIR / f"BENCH_{name}.json"


def _git_sha() -> str | None:
    """The repository HEAD, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def provenance() -> dict:
    """The provenance fields stamped into every ``BENCH_*.json`` report.

    A report compared across branches or machines is meaningless without
    knowing what ran where: the commit, when it ran, and how many CPUs
    the parallel backends had to play with.
    """
    return {
        "git_sha": _git_sha(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "cpu_count": os.cpu_count(),
    }


def write_bench_report(output: pathlib.Path | str, report: dict) -> pathlib.Path:
    """Write one benchmark's JSON report (creating directories), echo the
    path, and return it. ``report`` must be JSON-serialisable; the
    :func:`provenance` fields (git SHA, UTC timestamp, CPU count) are
    stamped in first, so a report key of the same name wins."""
    path = pathlib.Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    stamped = {**provenance(), **report}
    path.write_text(json.dumps(stamped, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {path}")
    return path


if pytest is not None:

    @pytest.fixture(scope="session")
    def emit():
        """Print a report block and persist it to benchmarks/output/results.txt."""
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / "results.txt"

        def _emit(text: str) -> None:
            block = "\n" + text + "\n"
            print(block)
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(block)

        return _emit
