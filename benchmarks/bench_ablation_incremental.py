"""Ablation A5: incremental CP maintenance vs. per-step recomputation.

CPClean's inner loop re-evaluates Q2 for every validation point after every
cleaning step. :class:`~repro.core.incremental.IncrementalCPState` prunes
(test point, cleaned row) pairs where the row provably never enters the
top-K, replacing a full scan with an exact big-integer division. This bench
cleans every dirty row of a synthetic workload twice — once recomputing
from scratch, once incrementally — asserts bit-identical counts, and
reports the speedup and the prune hit rate.
"""

import time

import numpy as np

from repro.core.incremental import IncrementalCPState
from repro.core.prepared import PreparedQuery
from repro.experiments.complexity import random_instance
from repro.utils.tables import format_table

N, M, K, N_VAL = 150, 3, 3, 12


def _workload():
    rng = np.random.default_rng(7)
    dataset, _ = random_instance(N, M, n_labels=2, n_features=4, seed=rng)
    points = rng.normal(size=(N_VAL, 4))
    pins = [(row, 0) for row in dataset.uncertain_rows()]
    return dataset, points, pins


def test_ablation_incremental_vs_recompute(benchmark, emit):
    dataset, points, pins = _workload()

    def incremental():
        state = IncrementalCPState(dataset, points, k=K)
        for row, cand in pins:
            state.pin(row, cand)
        return state

    state = benchmark.pedantic(incremental, rounds=1, iterations=1)

    # Reference: full recomputation after every pin.
    queries = [PreparedQuery(dataset, points[i], k=K) for i in range(points.shape[0])]
    start = time.perf_counter()
    fixed: dict[int, int] = {}
    final = None
    for row, cand in pins:
        fixed[row] = cand
        final = [q.counts(fixed) for q in queries]
    recompute_time = time.perf_counter() - start

    assert final is not None
    assert [state.counts(i) for i in range(state.n_points)] == final, (
        "incremental counts must be bit-identical to per-step recomputation"
    )

    total_pairs = state.n_pruned + state.n_recomputed
    incr_time = benchmark.stats["mean"]
    emit(
        format_table(
            ["strategy", "time", "scans", "prune rate"],
            [
                [
                    "recompute every step",
                    f"{recompute_time * 1e3:.0f} ms",
                    str(total_pairs),
                    "0%",
                ],
                [
                    "incremental (pruned)",
                    f"{incr_time * 1e3:.0f} ms",
                    str(state.n_recomputed),
                    f"{100.0 * state.n_pruned / total_pairs:.0f}%",
                ],
            ],
            title=(
                f"Ablation A5 — incremental CP maintenance "
                f"(N={N}, M={M}, K={K}, |Dval|={N_VAL}, {len(pins)} cleaning steps)"
            ),
        )
    )
    assert state.n_pruned > 0, "expected at least some pruned (point, row) pairs"
