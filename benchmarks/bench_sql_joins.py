"""Benchmark: set-semantic SQL joins and aggregation vs world enumeration.

Two measurements, emitted both as human-readable tables and as
machine-readable JSON (``BENCH_sql.json``):

1. **Optimized join vs the naive oracle** — the same two-table
   ``JOIN ... ON`` SQL query answered once by literal possible-world
   enumeration (the ``naive`` backend, optimizer off) and once through the
   full planner pipeline (filter pushdown + pair-table hash join on the
   ``auto`` backend). The acceptance bar is a **>=5x** wall-clock
   advantage with bit-identical certain *and* possible answers: the
   oracle pays ``|D|^n`` joined worlds where the pair-table synthesis
   pays one hash probe per row plus row-local completions.
2. **GROUP BY aggregation vs the naive oracle** — a ``GROUP BY`` with
   ``COUNT``/``SUM`` answered by the per-group state DP vs enumeration.
   Reported for scale; the JSON carries the measured ratio.

The join workload is shaped to stay inside the hash join's exactness
conditions (complete dimension keys, at most one live candidate per NULL
fact key) while keeping the world product small enough that the oracle
terminates — the point is the asymptotic gap, not an unfair baseline.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_sql_joins.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a couple of seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.codd.codd_table import CoddTable, Null
from repro.codd.engine import answer_query
from repro.codd.sql import parse_sql, referenced_tables
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("sql")

_WORKLOADS = {
    # worlds = 3^n_null (amount domains have three candidates); the naive
    # baseline joins every world, so n_null has to stay single-digit.
    "smoke": dict(n_customers=12, n_orders=30, n_null=5),
    "default": dict(n_customers=20, n_orders=60, n_null=7),
}

JOIN_SQL = (
    "SELECT c.region, o.amount FROM customers c "
    "JOIN orders o ON c.cid = o.cid WHERE o.amount >= 40"
)
GROUP_SQL = (
    "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
    "FROM sales GROUP BY region"
)


def build_join_database(n_customers: int, n_orders: int, n_null: int, seed: int):
    """Complete ``customers`` dimension + ``orders`` facts with NULL amounts."""
    rng = np.random.default_rng(seed)
    regions = ["north", "south", "east", "west"]
    customers = CoddTable(
        ("cid", "region"),
        [(cid, regions[int(rng.integers(0, 4))]) for cid in range(n_customers)],
    )
    null_rows = set(rng.choice(n_orders, size=n_null, replace=False).tolist())
    rows = []
    for oid in range(n_orders):
        cid = int(rng.integers(0, n_customers))
        if oid in null_rows:
            base = int(rng.integers(0, 120))
            amount: object = Null([base, base + 30, base + 60])
        else:
            amount = int(rng.integers(0, 160))
        rows.append((oid, cid, amount))
    orders = CoddTable(("oid", "cid", "amount"), rows)
    return {"customers": customers, "orders": orders}


def build_sales_table(n_rows: int, n_null: int, seed: int) -> CoddTable:
    rng = np.random.default_rng(seed)
    regions = ["north", "south", "east", "west"]
    null_rows = set(rng.choice(n_rows, size=n_null, replace=False).tolist())
    rows = []
    for r in range(n_rows):
        region = regions[int(rng.integers(0, 4))]
        if r in null_rows:
            base = int(rng.integers(0, 100))
            amount: object = Null([base, base + 10, base + 20])
        else:
            amount = int(rng.integers(0, 150))
        rows.append((region, amount))
    return CoddTable(("region", "amount"), rows)


def _best_of(repeats: int, func):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


def _both_modes(query, database, backend: str, optimize: bool):
    return tuple(
        answer_query(
            query, database, mode=mode, backend=backend, optimize=optimize
        ).relation
        for mode in ("certain", "possible")
    )


def bench_query(sql: str, database, repeats: int) -> dict:
    query = parse_sql(
        sql, schemas={name: t.schema for name, t in database.items()}
    )
    t_naive, naive = _best_of(
        repeats, lambda: _both_modes(query, database, "naive", optimize=False)
    )
    t_opt, optimized = _best_of(
        repeats, lambda: _both_modes(query, database, "auto", optimize=True)
    )
    assert optimized[0] == naive[0], "certain answers diverged from the oracle"
    assert optimized[1] == naive[1], "possible answers diverged from the oracle"
    plan = answer_query(query, database, backend="auto", optimize=True)
    n_worlds = 1
    for table in database.values():
        n_worlds *= table.n_worlds()
    return {
        "sql": sql,
        "tables": {name: len(t) for name, t in database.items()},
        "n_worlds": str(n_worlds),
        "backend": plan.plan.backend,
        "rewrites": list(plan.rewrites),
        "n_certain": len(naive[0]),
        "n_possible": len(naive[1]),
        "naive_seconds": t_naive,
        "optimized_seconds": t_opt,
        "speedup": t_naive / t_opt,
        "identical": True,
    }


def _print_comparison(result: dict, title: str) -> None:
    print(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                [
                    "naive (world enumeration)",
                    f"{result['naive_seconds']:.4f}",
                    "1.00x",
                ],
                [
                    f"planned ({result['backend']})",
                    f"{result['optimized_seconds']:.4f}",
                    f"{result['speedup']:.1f}x",
                ],
            ],
            title=title,
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a couple of seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]

    join_db = build_join_database(
        size["n_customers"], size["n_orders"], size["n_null"], seed=11
    )
    assert referenced_tables(JOIN_SQL) == ["customers", "orders"]
    join_cmp = bench_query(JOIN_SQL, join_db, repeats=2)

    sales = build_sales_table(size["n_orders"], size["n_null"], seed=12)
    group_cmp = bench_query(GROUP_SQL, {"sales": sales}, repeats=2)

    report = {
        "benchmark": "sql",
        "scale": scale,
        "join": join_cmp,
        "group_by": group_cmp,
    }
    write_bench_report(args.output, report)

    _print_comparison(
        join_cmp,
        (
            f"Two-table JOIN, {join_cmp['tables']['customers']} x "
            f"{join_cmp['tables']['orders']} rows, {join_cmp['n_worlds']} worlds "
            f"({scale} scale)"
        ),
    )
    print()
    _print_comparison(
        group_cmp,
        (
            f"GROUP BY + COUNT/SUM, {group_cmp['tables']['sales']} rows, "
            f"{group_cmp['n_worlds']} worlds"
        ),
    )
    print()
    print(f"join rewrites: {', '.join(join_cmp['rewrites']) or '(none)'}")

    if join_cmp["speedup"] < 5.0:
        print(
            f"FAIL: planned join is only {join_cmp['speedup']:.2f}x over "
            "world enumeration; the bar is 5x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
