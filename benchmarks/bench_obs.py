"""Benchmark: tracing + metrics overhead on the serving hot path.

PR 9 threads a span tree and typed metrics through every layer of the
broker. The design bar is that observability is effectively free: the
same 16-thread single-point workload ``bench_service.py`` uses, run
twice —

* **tracing off** — ``Observability(enabled=False)``: instrumented code
  hits the ``NULL_SPAN`` fast path (metrics still count, as in
  production when tracing is disabled);
* **tracing on** — every request builds its full span tree and publishes
  it to the ring buffer.

Each mode runs ``REPEATS`` times and keeps its best wall-clock (min is
the standard noise filter for throughput benchmarks). The acceptance
bar: tracing costs **<= 5%** throughput, and values stay bit-identical.

Emits ``BENCH_obs.json``. Run as a script::

    PYTHONPATH=src python benchmarks/bench_obs.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.obs import Observability
from repro.service import DatasetRegistry, QueryBroker
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("obs")

N_THREADS = 16
REPEATS = 3
OVERHEAD_BAR = 0.05

_WORKLOADS = {
    "smoke": dict(n_train=100, n_points=128, max_batch=16, window_s=0.01),
    "default": dict(n_train=150, n_points=256, max_batch=32, window_s=0.01),
}


def _client_load(
    registry: DatasetRegistry,
    points: np.ndarray,
    window_s: float,
    max_batch: int,
    trace: bool,
) -> tuple[float, list, dict]:
    """One 16-thread run; returns (seconds, values, tracer stats)."""
    obs = Observability(enabled=trace)
    broker = QueryBroker(
        registry,
        window_s=window_s,
        max_batch=max_batch,
        max_pending=4 * len(points),
        cache=False,  # every request must actually execute
        obs=obs,
    )
    values: list = [None] * len(points)

    def worker(indices: range) -> None:
        for index in indices:
            values[index] = broker.query(
                "bench", points[index], kind="certain_label"
            )["values"][0]

    threads = [
        threading.Thread(target=worker, args=(range(t, len(points), N_THREADS),))
        for t in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    stats = obs.tracer.stats()
    broker.close()
    return elapsed, values, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]

    registry = DatasetRegistry()
    entry = registry.register_recipe(
        "bench", recipe="supreme", n_train=size["n_train"], n_val=8, seed=1
    )
    rng = np.random.default_rng(7)
    points = rng.normal(size=(size["n_points"], entry.dataset.n_features)) * 0.5

    # one throwaway pass warms numba/numpy caches shared by both modes
    _client_load(
        registry, points[:16], size["window_s"], size["max_batch"], trace=False
    )

    best: dict[bool, float] = {}
    values: dict[bool, list] = {}
    stats: dict[bool, dict] = {}
    for _ in range(REPEATS):
        # alternate modes so drift (thermal, cache) hits both equally
        for trace in (False, True):
            elapsed, run_values, run_stats = _client_load(
                registry, points, size["window_s"], size["max_batch"], trace=trace
            )
            if trace not in best or elapsed < best[trace]:
                best[trace] = elapsed
            values[trace] = run_values
            stats[trace] = run_stats

    assert values[True] == values[False], (
        "tracing changed served values — it must be observation only"
    )
    assert stats[True]["published"] > 0, "tracing on but no traces published"
    assert stats[False]["published"] == 0, "tracing off but traces published"

    n = len(points)
    overhead = best[True] / best[False] - 1.0
    report = {
        "benchmark": "obs",
        "scale": scale,
        "workload": {
            "recipe": "supreme",
            "n_train": entry.dataset.n_rows,
            "n_points": n,
            "n_threads": N_THREADS,
            "kind": "certain_label",
            "repeats": REPEATS,
        },
        "tracing_off": {
            "seconds": best[False],
            "queries_per_sec": n / best[False],
        },
        "tracing_on": {
            "seconds": best[True],
            "queries_per_sec": n / best[True],
            "traces_published": stats[True]["published"],
        },
        "overhead": overhead,
        "overhead_bar": OVERHEAD_BAR,
        "values_bit_identical": True,
    }
    write_bench_report(args.output, report)

    print(
        format_table(
            ["mode", "seconds (best of {})".format(REPEATS), "queries/sec", "overhead"],
            [
                [
                    "tracing off",
                    f"{best[False]:.3f}",
                    f"{n / best[False]:.0f}",
                    "—",
                ],
                [
                    "tracing on",
                    f"{best[True]:.3f}",
                    f"{n / best[True]:.0f}",
                    f"{overhead:+.1%}",
                ],
            ],
            title=(
                f"{n} single-point certainty queries from {N_THREADS} client "
                f"threads ({scale} scale)"
            ),
        )
    )

    if overhead > OVERHEAD_BAR:
        print(
            f"FAIL: tracing + metrics cost {overhead:.1%} throughput; "
            f"the bar is {OVERHEAD_BAR:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
