"""Benchmark: the service broker's micro-batching under concurrent load.

The serving question the broker exists to answer: when 16 client threads
fire single-point certainty queries at the same dataset, how much does
coalescing them into planner batch calls buy over dispatching each
request on its own? Two runs over the *same* workload (identical points,
16 threads, result caching off so every request really executes):

* **per-request** — ``max_batch=1``: every query is its own planner
  call, paying a full vectorised preparation per point;
* **micro-batched** — a ``window_s`` coalescing window with
  ``max_batch`` points per flush: concurrent requests on the query
  family share one preparation.

The acceptance bar is a **>=2x** throughput advantage for the
micro-batched broker (the PR's headline claim), with bit-identical
per-point values between the two modes — batching is a latency/
throughput decision, never a semantic one.

Emits ``BENCH_service.json``. Run as a script::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload to a few seconds for CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time

import numpy as np

from conftest import bench_output_path, write_bench_report
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service import DatasetRegistry, QueryBroker
from repro.utils.tables import format_table

DEFAULT_OUTPUT = bench_output_path("service")

N_THREADS = 16

_WORKLOADS = {
    "smoke": dict(n_train=100, n_points=128, max_batch=16, window_s=0.01),
    "default": dict(n_train=150, n_points=256, max_batch=32, window_s=0.01),
}


def _client_load(
    registry: DatasetRegistry,
    points: np.ndarray,
    window_s: float,
    max_batch: int,
) -> tuple[float, list, dict]:
    """Run the 16-thread single-point workload; return (seconds, values, metrics)."""
    broker = QueryBroker(
        registry,
        window_s=window_s,
        max_batch=max_batch,
        max_pending=4 * len(points),
        cache=False,  # every request must actually execute
    )
    values: list = [None] * len(points)

    def worker(indices: range) -> None:
        for index in indices:
            values[index] = broker.query(
                "bench", points[index], kind="certain_label"
            )["values"][0]

    threads = [
        threading.Thread(target=worker, args=(range(t, len(points), N_THREADS),))
        for t in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    metrics = broker.metrics()
    broker.close()
    return elapsed, values, metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "default"
    size = _WORKLOADS[scale]

    registry = DatasetRegistry()
    entry = registry.register_recipe(
        "bench", recipe="supreme", n_train=size["n_train"], n_val=8, seed=1
    )
    rng = np.random.default_rng(7)
    points = rng.normal(size=(size["n_points"], entry.dataset.n_features)) * 0.5

    t_request, values_request, metrics_request = _client_load(
        registry, points, window_s=0.0, max_batch=1
    )
    t_batched, values_batched, metrics_batched = _client_load(
        registry, points, window_s=size["window_s"], max_batch=size["max_batch"]
    )

    assert values_batched == values_request, (
        "micro-batched values diverged from per-request dispatch"
    )
    # And both must match a direct single-call planner execution.
    direct = execute_query(
        make_query(entry.dataset, points, kind="certain_label", k=entry.k),
        options=ExecutionOptions(cache=False),
    ).values
    assert values_request == direct, "served values diverged from execute_query"

    n = len(points)
    speedup = t_request / t_batched
    report = {
        "benchmark": "service",
        "scale": scale,
        "workload": {
            "recipe": "supreme",
            "n_train": entry.dataset.n_rows,
            "n_points": n,
            "n_threads": N_THREADS,
            "kind": "certain_label",
        },
        "per_request": {
            "seconds": t_request,
            "queries_per_sec": n / t_request,
            "batches_executed": metrics_request["batches_executed"],
        },
        "micro_batched": {
            "window_s": size["window_s"],
            "max_batch": size["max_batch"],
            "seconds": t_batched,
            "queries_per_sec": n / t_batched,
            "batches_executed": metrics_batched["batches_executed"],
            "coalesced_batches": metrics_batched["coalesced_batches"],
            "max_batch_size": metrics_batched["max_batch_size"],
        },
        "speedup": speedup,
        "values_bit_identical": True,
    }
    write_bench_report(args.output, report)

    print(
        format_table(
            ["dispatch", "planner calls", "seconds", "queries/sec", "speedup"],
            [
                [
                    "per-request",
                    str(metrics_request["batches_executed"]),
                    f"{t_request:.3f}",
                    f"{n / t_request:.0f}",
                    "1.00x",
                ],
                [
                    f"micro-batched (<= {size['max_batch']})",
                    str(metrics_batched["batches_executed"]),
                    f"{t_batched:.3f}",
                    f"{n / t_batched:.0f}",
                    f"{speedup:.2f}x",
                ],
            ],
            title=(
                f"{n} single-point certainty queries from {N_THREADS} client "
                f"threads ({scale} scale)"
            ),
        )
    )

    if speedup < 2.0:
        print(
            f"FAIL: micro-batched broker is only {speedup:.2f}x over per-request "
            "dispatch; the bar is 2x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
