"""Ablation A7: Corollary 1 measured — greedy information vs. the optimum.

The paper's theoretical guarantee (Corollary 1) says the greedy
sequential-information-maximisation policy gathers

    ``I(greedy after T) >= I(D_Opt) * (1 - exp(-T / (θ t')))``

This bench runs the greedy policy on a small instance where ``D_Opt`` is
brute-forcible, prints the measured information-gathering curve next to the
optimal reference, and asserts the qualitative claim: the greedy curve is
monotone and overtakes the optimal size-``t`` set's information within a
modest number of steps.
"""

import numpy as np

from repro.cleaning.information import greedy_vs_optimal_curve
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.sequential import CleaningSession
from repro.experiments.complexity import random_instance
from repro.utils.tables import format_table

N, M, N_VAL, K, OPT_SIZE = 14, 3, 6, 3, 2


def _workload():
    rng = np.random.default_rng(3)
    dataset, _ = random_instance(N, M, n_labels=2, n_features=3, seed=rng)
    val_X = rng.normal(size=(N_VAL, 3))
    gt = [int(rng.integers(m)) for m in dataset.candidate_counts()]
    return dataset, val_X, GroundTruthOracle(gt)


def test_ablation_corollary1_greedy_vs_optimal(benchmark, emit):
    dataset, val_X, oracle = _workload()

    def run():
        session = CleaningSession(dataset, val_X, k=K)
        horizon = len(session.remaining_dirty_rows())
        return greedy_vs_optimal_curve(session, oracle, horizon=horizon, optimal_size=OPT_SIZE)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    curve = result["greedy_curve"]
    optimal = result["optimal"]

    rows = [
        [
            str(step + 1),
            f"{gathered:.4f}",
            f"{gathered / max(optimal, 1e-12):.2f}x",
        ]
        for step, gathered in enumerate(curve)
    ]
    emit(
        format_table(
            ["greedy step T", "I(greedy after T) [nats]", "vs I(D_Opt)"],
            rows,
            title=(
                f"Ablation A7 — Corollary 1 measured "
                f"(N={N}, M={M}, |Dval|={N_VAL}, K={K}, |D_Opt|={OPT_SIZE}, "
                f"I(D_Opt)={optimal:.4f} nats)"
            ),
        )
    )

    # Qualitative shape of the guarantee: the realised-information curve ends
    # at the full initial entropy and therefore at/above I(D_Opt).
    assert curve[-1] >= optimal - 1e-9
    assert curve[-1] >= 0.0
