"""Quickstart: certain predictions over a tiny incomplete dataset.

This walks the paper's running example (Figure 6): three training rows, two
of them with two candidate values each, a 1-NN classifier, and the two CP
queries. Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import IncompleteDataset, certain_label, q1, q2_counts
from repro.core.entropy import counts_to_probabilities, prediction_entropy

# ---------------------------------------------------------------------------
# An incomplete training set. Each row has a *candidate set* of possible
# feature vectors (here 1-D values) and a known label. Rows 1 and 2 carry two
# candidates each, row 3 as well — so there are 2 * 2 * 2 = 8 possible worlds.
# ---------------------------------------------------------------------------
dataset = IncompleteDataset(
    candidate_sets=[
        np.array([[5.0], [2.0]]),  # C1 - label 1
        np.array([[6.0], [4.0]]),  # C2 - label 1
        np.array([[3.0], [1.0]]),  # C3 - label 0
    ],
    labels=[1, 1, 0],
)
print(dataset)
print(f"possible worlds: {dataset.n_worlds()}")

# ---------------------------------------------------------------------------
# The two CP queries for a test point t = 0 under a 1-NN classifier.
# ---------------------------------------------------------------------------
t = np.array([0.0])

counts = q2_counts(dataset, t, k=1)
print(f"\nQ2 counting query: {counts}")
print("  -> label 0 is predicted in", counts[0], "worlds; label 1 in", counts[1])
assert counts == [6, 2], "this is exactly the paper's Figure 6 result"

print(f"Q1 checking query, label 0: {q1(dataset, t, 0, k=1)}")
print(f"Q1 checking query, label 1: {q1(dataset, t, 1, k=1)}")
print(f"certain label: {certain_label(dataset, t, k=1)}  (None = not CP'ed)")

probs = counts_to_probabilities(counts)
print(f"\nprediction distribution: {probs}")
print(f"prediction entropy: {prediction_entropy(counts):.3f} bits")

# ---------------------------------------------------------------------------
# Cleaning row 3 (revealing its true value) changes the picture: fixing it to
# its second candidate (value 1.0) makes label 0 the certain prediction.
# ---------------------------------------------------------------------------
cleaned = dataset.restrict_row(2, 1)
print(f"\nafter cleaning row 3 to value 1.0: counts = {q2_counts(cleaned, t, k=1)}")
print(f"certain label now: {certain_label(cleaned, t, k=1)}")
