"""Watch a query travel the service: span trees, metrics, health, logs.

The one-process tour of :mod:`repro.obs` wired through the serving
stack. A production deployment would run::

    repro serve --recipe supreme --executors 2 --slow-ms 250 --access-log

and scrape ``/metrics?format=prometheus``; here we boot the same
two-executor topology on an ephemeral port so the example is
self-contained:

1. ask one query with ``explain="trace"`` and print its span tree —
   HTTP root, broker, planner route, gateway scatter, and the
   per-partition leaves timed inside the executor *processes*;
2. list the ``/debug/traces`` ring buffer and fetch one trace by id;
3. read the typed metrics — the legacy ``/metrics`` JSON, the ``obs``
   section, and the Prometheus text exposition;
4. derive latency quantiles from histogram buckets, client-side;
5. check per-executor readiness on ``/healthz``.

Run with::

    PYTHONPATH=src python examples/observability_quickstart.py
"""

from __future__ import annotations

from repro.obs import quantile_from_buckets, validate_prometheus
from repro.service import DatasetRegistry, ServiceClient, make_service


def print_tree(span: dict, depth: int = 0) -> None:
    """Render one span record as an indented tree line."""
    attrs = span.get("attributes", {})
    interesting = {
        key: attrs[key]
        for key in ("backend", "served_by", "executor", "partition", "status")
        if key in attrs
    }
    detail = f"  {interesting}" if interesting else ""
    print(
        f"  {'  ' * depth}{span['name']:<24} {span['duration_ms']:8.2f} ms{detail}"
    )
    for child in span.get("children", ()):
        print_tree(child, depth + 1)


def main() -> None:
    # -- boot a two-executor service -----------------------------------
    registry = DatasetRegistry()
    entry = registry.register_recipe(
        "supreme", recipe="supreme", n_train=80, n_val=12, seed=0
    )
    server = make_service(registry, window_s=0.0, executors=2)
    client = ServiceClient(server.url)
    print(f"service up at {server.url} with a 2-executor gateway")

    # -- 1. one query, one span tree -----------------------------------
    response = client.query(
        "supreme", point=entry.val_X[0], kind="certain_label", explain="trace"
    )
    trace = response["trace"]
    print(f"\ntrace {trace['trace_id']} for the query above:")
    print_tree(trace)

    # -- 2. the trace ring buffer --------------------------------------
    recent = client.traces(limit=3)
    print(f"\n/debug/traces holds {len(recent)} recent trace(s):")
    for record in recent:
        print(
            f"  {record['trace_id']}  {record['name']:<14} "
            f"{record['duration_ms']:8.2f} ms  {record['attributes'].get('path')}"
        )
    by_id = client.traces(trace_id=recent[-1]["trace_id"])
    print(f"fetched by id: {by_id['trace_id']} ({by_id['name']})")

    # -- 3. metrics: legacy JSON, obs section, Prometheus --------------
    payload = client.metrics()
    broker = payload["broker"]
    print(
        f"\nbroker counters: {broker['requests']} requests, "
        f"{broker['gateway_served']} gateway-served, "
        f"{broker['served_from_cache']} from cache"
    )
    exposition = client.metrics(format="prometheus")
    n_samples = validate_prometheus(exposition)
    print(f"prometheus exposition: {n_samples} samples, parses clean")

    # -- 4. quantiles from histogram buckets ---------------------------
    histograms = payload["obs"]["histograms"]
    for name, snapshot in sorted(histograms.items()):
        if not name.startswith("http_request_seconds") or not snapshot["count"]:
            continue
        p50 = quantile_from_buckets(snapshot, 0.50)
        p99 = quantile_from_buckets(snapshot, 0.99)
        print(
            f"{name}: n={snapshot['count']} "
            f"p50≈{p50 * 1e3:.2f} ms p99≈{p99 * 1e3:.2f} ms"
        )

    # -- 5. per-executor readiness -------------------------------------
    health = client.healthz()
    print(f"\nhealthz: {health['status']}")
    for executor in health["executors"]:
        print(
            f"  executor {executor['executor_id']}: pid {executor['pid']}, "
            f"alive={executor['alive']}, restarts={executor['restarts']}, "
            f"heartbeat {executor['last_heartbeat_age_s']:.2f}s ago"
        )

    server.close()
    print("\nserver drained and closed")


if __name__ == "__main__":
    main()
