"""Multi-table SQL over incomplete data: joins, GROUP BY, explain, patches.

A tour of the relational planning layer on top of the certain-answer
engine:

1. build a ``customers`` / ``orders`` pair where order amounts (and one
   customer id) are NULLs over finite domains,
2. answer a two-table ``JOIN ... ON`` with certain/possible semantics —
   the optimizer pushes the filter below the join and the pair-table
   hash join answers without enumerating worlds,
3. print the optimized logical plan and the rewrites that produced it,
4. run a ``GROUP BY`` with ``COUNT``/``SUM`` through the exact
   aggregation DP and show which group totals are certain,
5. serve the same queries over a live HTTP ``/sql`` endpoint and watch a
   ``PATCH`` to one joined table invalidate exactly the cached answers
   that referenced it.

Run with::

    PYTHONPATH=src python examples/sql_joins.py
"""

from repro.codd import (
    CoddTable,
    Null,
    answer_query,
    optimize_query,
    parse_sql,
    referenced_tables,
)
from repro.service import DatasetRegistry, ServiceClient, make_service


def main() -> None:
    # 1. Two incomplete tables: one order's amount is unresolved, and one
    #    order's customer id could be either of two values.
    customers = CoddTable(
        ("cid", "name", "region"),
        [(1, "Ada", "north"), (2, "Bob", "south"), (3, "Cyd", "north")],
    )
    orders = CoddTable(
        ("oid", "cid", "amount"),
        [
            (10, 1, 70),
            (11, 2, Null([30, 90])),
            (12, Null([3, 4]), 55),
            (13, 1, 20),
        ],
    )
    database = {"customers": customers, "orders": orders}
    print(f"customers: {customers}")
    print(f"orders:    {orders}")

    # 2. A qualified join, parsed against the tables' schemas. The
    #    lexical pre-scan finds which schemas the parser needs.
    join_sql = (
        "SELECT c.name, o.amount FROM customers c "
        "JOIN orders o ON c.cid = o.cid WHERE o.amount > 25"
    )
    names = referenced_tables(join_sql)
    assert names == ["customers", "orders"]
    query = parse_sql(join_sql, schemas={n: database[n].schema for n in names})

    sure = answer_query(query, database, mode="certain")
    maybe = answer_query(query, database, mode="possible")
    print(f"\ncertain joins:  {sorted(sure.relation.rows)}")
    print(f"possible joins: {sorted(maybe.relation.rows)}")
    # Ada's 70 survives every world; Bob's order might be 30 or 90, and
    # order 12 might belong to Cyd or to nobody (cid 4 dangles).
    assert sure.relation.rows == {("Ada", 70)}
    assert maybe.relation.rows == {("Ada", 70), ("Bob", 30), ("Bob", 90), ("Cyd", 55)}
    print(f"served by: {sure.plan.backend} ({sure.plan.reason})")

    # 3. What the optimizer did to get there.
    optimized = optimize_query(query, database)
    print("\noptimized plan:")
    print(optimized.plan.render())
    print(f"rewrites applied: {', '.join(optimized.rewrites)}")
    assert "push-select-below-join" in optimized.rewrites

    # 4. GROUP BY through the aggregation DP: group 1's total is the same
    #    in every world, group 2's depends on the NULL amount.
    group_sql = (
        "SELECT cid, COUNT(*) AS n, SUM(amount) AS total "
        "FROM orders GROUP BY cid"
    )
    group_query = parse_sql(group_sql, schemas={"orders": orders.schema})
    sure_groups = answer_query(group_query, {"orders": orders}, mode="certain")
    maybe_groups = answer_query(group_query, {"orders": orders}, mode="possible")
    print(f"\ncertain group totals:  {sorted(sure_groups.relation.rows)}")
    print(f"possible group totals: {sorted(maybe_groups.relation.rows)}")
    assert (1, 2, 90) in sure_groups.relation.rows
    assert {(2, 1, 30), (2, 1, 90)} <= maybe_groups.relation.rows

    # 5. The same queries over HTTP — and live invalidation: fixing a
    #    NULL in one joined table purges exactly the answers that read it.
    registry = DatasetRegistry()
    registry.register_codd_table("customers", customers)
    registry.register_codd_table("orders", orders)
    server = make_service(registry)
    try:
        client = ServiceClient(server.url)
        client.wait_until_ready()

        served = client.sql(join_sql, mode="both")
        assert served["results"]["certain"] == sure.relation
        assert served["results"]["possible"] == maybe.relation
        assert "Join" in served["explain"]["plan"]
        assert client.sql(join_sql, mode="both")["cached"] is True

        # Fix order 11's amount to 90: Bob's join row becomes certain.
        client.fix_cell("orders", 1, 2, 90)
        refreshed = client.sql(join_sql, mode="both")
        assert refreshed["cached"] is False  # the patch purged the entry
        assert refreshed["results"]["certain"].rows >= {("Ada", 70), ("Bob", 90)}
        print("\nafter fixing order 11's amount to 90:")
        print(f"certain joins: {sorted(refreshed['results']['certain'].rows)}")
    finally:
        server.close()

    print("\nsql_joins example OK")


if __name__ == "__main__":
    main()
