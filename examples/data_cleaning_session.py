"""A full CPClean cleaning session, step by step.

Builds a dirty classification task (the "supreme" recipe at laptop scale),
then lets CPClean drive a simulated human cleaner: at every step it prints
which training row the algorithm asked about, the expected remaining
validation entropy behind that choice, and the fraction of validation
points already certainly predicted. Finally it compares the resulting model
against the Ground Truth / Default Cleaning bounds and a random cleaning
order. Run with::

    python examples/data_cleaning_session.py
"""

import numpy as np

from repro.cleaning import GroundTruthOracle, run_cp_clean, run_random_clean
from repro.core.knn import KNNClassifier
from repro.data.task import build_cleaning_task
from repro.experiments.metrics import gap_closed
from repro.utils.tables import format_percent

task = build_cleaning_task("supreme", n_train=100, n_val=24, n_test=200, seed=3)
n_dirty = len(task.dirty_rows)
print(f"task: {task.name}  (train={task.incomplete.n_rows}, dirty={n_dirty}, "
      f"val={task.val_X.shape[0]}, test={task.test_X.shape[0]})")

gt_acc = KNNClassifier(k=task.k).fit(task.train_gt_X, task.train_labels).accuracy(
    task.test_X, task.test_y
)
default_acc = KNNClassifier(k=task.k).fit(task.train_default_X, task.train_labels).accuracy(
    task.test_X, task.test_y
)
print(f"ground-truth accuracy: {gt_acc:.3f}   default-cleaning accuracy: {default_acc:.3f}")

# ---------------------------------------------------------------------------
# Run CPClean with a verbose per-step trace.
# ---------------------------------------------------------------------------
oracle = GroundTruthOracle(task.gt_choice)
print("\nCPClean session:")


def narrate(step):
    entropy = f"{step.expected_entropy:.4f}" if step.expected_entropy is not None else "-"
    print(
        f"  step {step.iteration + 1:>2}: cleaned row {step.row:>3} "
        f"(candidate {step.chosen_candidate}), expected entropy {entropy}, "
        f"CP'ed before: {format_percent(step.cp_fraction_before)}"
    )


report = run_cp_clean(task.incomplete, task.val_X, oracle, k=task.k, on_step=narrate)
print(
    f"terminated after cleaning {report.n_cleaned}/{n_dirty} dirty rows "
    f"({format_percent(report.n_cleaned / n_dirty)}); all validation points CP'ed: "
    f"{report.cp_fraction_final == 1.0}"
)

# ---------------------------------------------------------------------------
# Evaluate the cleaned dataset: cleaned rows take the human answers, the
# remaining dirty rows may take ANY candidate — the CP guarantee says the
# validation predictions no longer depend on them.
# ---------------------------------------------------------------------------
choice = task.default_choice.copy()
for row, cand in report.final_fixed.items():
    choice[row] = cand
world = task.incomplete.world([int(c) for c in choice])
cp_acc = KNNClassifier(k=task.k).fit(world, task.train_labels).accuracy(task.test_X, task.test_y)

random_report = run_random_clean(
    task.incomplete, task.val_X, oracle, k=task.k, max_cleaned=report.n_cleaned, seed=0
)
choice = task.default_choice.copy()
for row, cand in random_report.final_fixed.items():
    choice[row] = cand
world = task.incomplete.world([int(c) for c in choice])
rand_acc = KNNClassifier(k=task.k).fit(world, task.train_labels).accuracy(
    task.test_X, task.test_y
)

print(f"\nCPClean    : accuracy {cp_acc:.3f}, gap closed "
      f"{format_percent(gap_closed(cp_acc, default_acc, gt_acc))}")
print(f"RandomClean (same budget of {report.n_cleaned} cleanings): accuracy {rand_acc:.3f}, "
      f"gap closed {format_percent(gap_closed(rand_acc, default_acc, gt_acc))}")
