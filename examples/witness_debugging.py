"""Debugging uncertainty with witnesses: *show me the worlds that disagree*.

Screening tells you a prediction is not certain; a **witness** makes that
concrete — two full repairs of the training data under which the trained
classifiers predict different labels. This is the artifact you show a data
steward: "if these cells resolve this way you get label 0, that way label 1."

Run with::

    python examples/witness_debugging.py
"""

import numpy as np

from repro.core import IncompleteDataset, certain_label, find_witness, q2_counts

# ---------------------------------------------------------------------------
# A borderline customer: two dirty training rows straddle the test point.
# ---------------------------------------------------------------------------
dataset = IncompleteDataset(
    candidate_sets=[
        np.array([[0.8, 0.0], [3.0, 0.0]]),   # row 0 (label 0): near OR far
        np.array([[1.0, 0.2], [4.0, 4.0]]),   # row 1 (label 1): near OR far
        np.array([[2.0, 0.0]]),               # row 2 (label 0), clean
        np.array([[2.2, 0.4]]),               # row 3 (label 1), clean
        np.array([[5.0, 5.0]]),               # row 4 (label 1), clean, far
    ],
    labels=[0, 1, 0, 1, 1],
)
t = np.array([1.0, 0.0])
K = 3

counts = q2_counts(dataset, t, k=K)
print(f"dataset: {dataset}")
print(f"Q2 counts at t={t.tolist()}: {counts} over {dataset.n_worlds()} worlds")
print(f"certain label: {certain_label(dataset, t, k=K)}")

witness = find_witness(dataset, t, k=K)
assert witness is not None, "this instance is contested by construction"

print("\nwitness — two concrete repairs that flip the prediction:")
for name, choice, label in (
    ("world A", witness.choice_a, witness.label_a),
    ("world B", witness.choice_b, witness.label_b),
):
    world = dataset.world(list(choice))
    print(f"  {name}: prediction = {label}")
    for row in dataset.uncertain_rows():
        print(
            f"    row {row} (label {dataset.label_of(row)}) repaired to "
            f"{world[row].tolist()}"
        )

# ---------------------------------------------------------------------------
# Clean the decisive row (row 0 here) and the witness disappears.
# ---------------------------------------------------------------------------
fixed = dataset.with_row_fixed(0, dataset.candidates(0)[0])
fixed = fixed.with_row_fixed(1, fixed.candidates(1)[1])
print(f"\nafter cleaning both dirty rows: certain label = {certain_label(fixed, t, k=K)}")
assert find_witness(fixed, t, k=K) is None
print("no witness exists any more — the prediction is certified.")
