"""Auditing label noise with the label-uncertainty extension.

The paper's data model (Definition 1) assumes labels are trustworthy. In
practice, some labels are dubious too. This example flags a few training
rows as "label suspect" (their label set becomes the whole label space) and
asks: which test points can *still* be certainly predicted, no matter how
those suspect labels resolve — and no matter which candidate repairs the
dirty features take?

Run with::

    python examples/label_noise_audit.py
"""

import numpy as np

from repro.core import IncompleteDataset
from repro.core.label_uncertainty import (
    LabelUncertainDataset,
    label_uncertain_certain_label,
    label_uncertain_counts,
)

rng = np.random.default_rng(42)

# ---------------------------------------------------------------------------
# A small two-cluster binary problem with feature incompleteness: each dirty
# row has three candidate repairs.
# ---------------------------------------------------------------------------
n_per_class = 6
clean_0 = rng.normal(loc=(-2.0, 0.0), scale=0.6, size=(n_per_class, 2))
clean_1 = rng.normal(loc=(+2.0, 0.0), scale=0.6, size=(n_per_class, 2))

candidate_sets = []
for point in np.vstack([clean_0, clean_1]):
    if rng.random() < 0.4:  # dirty row: three candidate repairs
        repairs = point + rng.normal(scale=1.0, size=(3, 2))
        candidate_sets.append(repairs)
    else:
        candidate_sets.append(point.reshape(1, -1))
labels = [0] * n_per_class + [1] * n_per_class
base = IncompleteDataset(candidate_sets, labels)
print(base)

# ---------------------------------------------------------------------------
# Mark two rows as label-suspect: their labels may be flipped.
# ---------------------------------------------------------------------------
suspects = [1, 8]
audited = LabelUncertainDataset.from_incomplete(base, flip_rows=suspects)
print(f"label-suspect rows: {suspects}")
print(f"worlds with feature-only uncertainty: {base.n_worlds()}")
print(f"worlds with labels uncertain too:     {audited.n_worlds()}")

# ---------------------------------------------------------------------------
# Screen a grid of test points: certain under feature noise alone, under
# label noise too, or genuinely contested?
# ---------------------------------------------------------------------------
from repro.core import certain_label  # noqa: E402  (grouped for the narrative)

print(f"\n{'test point':>14} {'feature-only':>14} {'with label noise':>18}  Q2 counts")
for x in (-3.0, -1.0, 0.0, 1.0, 3.0):
    t = np.array([x, 0.0])
    feature_only = certain_label(base, t, k=3)
    with_labels = label_uncertain_certain_label(audited, t, k=3)
    counts = label_uncertain_counts(audited, t, k=3)
    fo = "CP'ed: %d" % feature_only if feature_only is not None else "not CP'ed"
    wl = "CP'ed: %d" % with_labels if with_labels is not None else "not CP'ed"
    print(f"{x:>14} {fo:>14} {wl:>18}  {counts}")

    # Label uncertainty can only destroy certainty, never create it.
    if with_labels is not None:
        assert feature_only == with_labels

print(
    "\nPoints deep inside a cluster stay certain even against label flips;\n"
    "points near the boundary lose certainty the moment labels are suspect."
)
