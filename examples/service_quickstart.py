"""Serve CP queries over HTTP: registry, micro-batching broker, client.

The one-process tour of :mod:`repro.service`. A production deployment
would run ``repro serve --recipe supreme --port 8970`` and point
:class:`~repro.service.client.ServiceClient` at it from other machines;
here we boot the same server on an ephemeral port in a background
thread so the example is self-contained:

1. register a dirty-dataset recipe (its validation set's prepared
   distance state gets pinned warm server-side);
2. answer single-point queries — concurrent callers on the same query
   family are coalesced into one planner batch call (micro-batching);
3. drive a cleaning session over the wire with ``/clean/step`` and
   watch the certain-prediction fraction climb;
4. read ``/metrics`` to see batching, cache and admission counters.

Run with::

    PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.service import DatasetRegistry, ServiceClient, make_service


def main() -> None:
    # -- 1. boot a server with one recipe registered -------------------
    registry = DatasetRegistry()
    entry = registry.register_recipe(
        "supreme", recipe="supreme", n_train=80, n_val=12, seed=0
    )
    server = make_service(registry, window_s=0.01, max_batch=16)
    client = ServiceClient(server.url)
    print(f"service up at {server.url}: {client.healthz()['datasets']}")

    # -- 2. certify the registered validation set ----------------------
    response = client.query("supreme", points="validation", kind="certain_label")
    labels = response["values"]
    certain = sum(label is not None for label in labels)
    print(
        f"validation certainty: {certain}/{len(labels)} points CP'ed "
        f"(backend {response['backend']!r})"
    )

    # -- 3. concurrent single-point queries get micro-batched ----------
    # Fresh points (not the just-cached validation set), so the requests
    # actually coalesce instead of being served from the TTL cache.
    val_X = entry.val_X
    fresh = val_X + 1e-3 * (1 + np.arange(len(val_X)))[:, None]
    results: dict[int, dict] = {}

    def ask(index: int) -> None:
        results[index] = client.query(
            "supreme", point=fresh[index], kind="certain_label"
        )

    threads = [threading.Thread(target=ask, args=(i,)) for i in range(len(val_X))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    sizes = sorted(results[i]["batch_size"] for i in results)
    print(f"{len(threads)} concurrent callers rode batches of sizes {sizes}")

    # -- 4. clean over the wire until certain --------------------------
    checkpoint = {"all_certain": certain == len(labels)}
    dirty = registry.get("supreme").dataset.uncertain_rows()
    for row in dirty:
        if checkpoint["all_certain"]:
            break
        checkpoint = client.clean_step("supreme", row=row)  # oracle answers
        print(
            f"cleaned row {row}: {checkpoint['n_cleaned']} rows done, "
            f"cp_fraction={checkpoint['cp_fraction']:.2f}"
        )

    # -- 5. observability ----------------------------------------------
    metrics = client.metrics()
    broker = metrics["broker"]
    print(
        f"broker served {broker['requests']} requests in "
        f"{broker['batches_executed']} planner calls "
        f"({broker['coalesced_batches']} coalesced, "
        f"cache hits {broker['cache']['hits'] if broker['cache'] else 0})"
    )
    server.close()


if __name__ == "__main__":
    main()
