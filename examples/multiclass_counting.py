"""Multi-class certain predictions with the SS-DC-MC algorithm.

The tally-enumeration engines pay ``C(|Y|+K-1, K)`` per scan step, which
explodes as the label space grows; Appendix A.3's SS-DC-MC stays polynomial
in ``|Y|``. This example runs both on a 6-class incomplete dataset, checks
they agree exactly, and times them side by side as ``|Y|`` grows. Run with::

    python examples/multiclass_counting.py
"""

import time

import numpy as np

from repro.core.dataset import IncompleteDataset
from repro.core.engine import sortscan_counts
from repro.core.entropy import counts_to_probabilities
from repro.core.multiclass import sortscan_counts_multiclass
from repro.utils.tables import format_table


def random_multiclass_dataset(n_rows, m, n_labels, rng):
    sets = [rng.normal(size=(m, 3)) for _ in range(n_rows)]
    labels = rng.integers(0, n_labels, size=n_rows)
    labels[:n_labels] = np.arange(n_labels)
    return IncompleteDataset(sets, labels)


rng = np.random.default_rng(0)

# ---------------------------------------------------------------------------
# A 6-class example: both engines, identical counts.
# ---------------------------------------------------------------------------
dataset = random_multiclass_dataset(n_rows=30, m=3, n_labels=6, rng=rng)
t = rng.normal(size=3)
counts_enum = sortscan_counts(dataset, t, k=5)
counts_mc = sortscan_counts_multiclass(dataset, t, k=5)
assert counts_enum == counts_mc
probs = counts_to_probabilities(counts_mc)
print("6-class prediction distribution over", dataset.n_worlds(), "possible worlds:")
for label, p in enumerate(probs):
    bar = "#" * round(40 * p)
    print(f"  label {label}: {p:6.3f} {bar}")

# ---------------------------------------------------------------------------
# Scaling in |Y|: tally enumeration vs SS-DC-MC.
# ---------------------------------------------------------------------------
rows = []
for n_labels in (2, 4, 8, 12, 16):
    dataset = random_multiclass_dataset(n_rows=40, m=3, n_labels=n_labels, rng=rng)
    t = rng.normal(size=3)

    start = time.perf_counter()
    a = sortscan_counts(dataset, t, k=5)
    t_enum = time.perf_counter() - start

    start = time.perf_counter()
    b = sortscan_counts_multiclass(dataset, t, k=5)
    t_mc = time.perf_counter() - start
    assert a == b
    rows.append([n_labels, f"{t_enum * 1e3:.1f} ms", f"{t_mc * 1e3:.1f} ms"])

print()
print(
    format_table(
        ["|Y|", "tally enumeration", "SS-DC-MC"],
        rows,
        title="Counting-query runtime as the label space grows (N=40, M=3, K=5)",
    )
)
print("\nBoth engines are exact; SS-DC-MC's advantage grows with |Y| and K\n"
      "because it never enumerates the C(|Y|+K-1, K) label tallies.")
