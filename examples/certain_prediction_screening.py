"""Screening: does this dirty dataset need cleaning at all?

The paper's first practical message (§2, "Connections to Data Cleaning"): if
the checking query Q1 returns true for every point of a large validation
set, cleaning the training set cannot change the model's predictions — the
true world is one of the possible worlds, and all of them already agree.

This example builds a dirty training set, screens a validation set with Q1,
and reports how many points are already certain and how the fraction changes
with the missing rate. Run with::

    python examples/certain_prediction_screening.py
"""

import numpy as np

from repro.core.queries import certain_label
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_percent, format_table

K = 3
rows = []
for missing_rate in (0.05, 0.1, 0.2, 0.4):
    task = build_cleaning_task(
        "supreme", n_train=80, n_val=40, n_test=40, missing_rate=missing_rate, seed=7
    )
    certain = 0
    for t in task.val_X:
        if certain_label(task.incomplete, t, k=K) is not None:
            certain += 1
    fraction = certain / task.val_X.shape[0]
    rows.append(
        [
            format_percent(missing_rate),
            len(task.dirty_rows),
            f"{certain}/{task.val_X.shape[0]}",
            format_percent(fraction),
        ]
    )

print(
    format_table(
        ["missing rate", "dirty rows", "CP'ed val points", "CP'ed fraction"],
        rows,
        title="How much incompleteness actually matters (Q1 screening, supreme recipe)",
    )
)
print(
    "\nReading: for every CP'ed validation point, *no* amount of cleaning can\n"
    "change the classifier's prediction — human effort is only warranted for\n"
    "the residual uncertain points, which is what CPClean prioritises."
)
