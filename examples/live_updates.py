"""Live base-data writes against a running CP service (``PATCH``).

The registry's datasets are not frozen snapshots: ``PATCH
/datasets/{name}`` applies cell repairs, row appends/deletes (CP
datasets) and NULL-cell fixes (Codd tables) to the *running* server,
which absorbs each write into its warm state in O(Δ) via
:class:`repro.core.deltas.DeltaMaintainedState` — no re-preparation,
results bit-identical to a from-scratch recompute. Every write bumps
the entry's version; every query response echoes the version it was
served at.

The tour:

1. register a dirty recipe, certify its validation set;
2. repair a cell, append a row, delete a row — one ``PATCH`` — and read
   the per-delta reports (how many maintained points were recounted vs
   pruned by the irrelevance rule);
3. watch a query echo the new version, and check the served counts
   against an in-process recompute on the same delta'd dataset;
4. fix a NULL cell in a registered Codd table and re-ask a SQL query.

Run with::

    PYTHONPATH=src python examples/live_updates.py
"""

from __future__ import annotations

import numpy as np

from repro.codd import CoddTable, Null
from repro.core.deltas import (
    CellRepair,
    RowAppend,
    RowDelete,
    apply_delta_to_dataset,
)
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service import DatasetRegistry, ServiceClient, make_service


def main() -> None:
    # -- 1. boot a server, certify the baseline ------------------------
    registry = DatasetRegistry()
    entry = registry.register_recipe(
        "supreme", recipe="supreme", n_train=80, n_val=12, seed=0
    )
    registry.register_codd_table("person", CoddTable(
        ("name", "age"),
        [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
    ))
    server = make_service(registry)
    client = ServiceClient(server.url)
    info = client.dataset("supreme")
    print(f"registered at version {info['version']}: {info['n_rows']} rows, "
          f"{info['n_worlds']} possible worlds")

    before = client.query("supreme", points="validation", kind="certain_label")
    certain = sum(label is not None for label in before["values"])
    print(f"baseline: {certain}/{len(before['values'])} validation points "
          f"CP'ed at version {before['version']}")

    # -- 2. one PATCH, three writes ------------------------------------
    dataset = entry.dataset
    dirty = dataset.uncertain_rows()
    rng = np.random.default_rng(0)
    new_row = dataset.candidates(int(dirty[0]))[:2] + rng.normal(
        scale=0.05, size=(2, dataset.n_features)
    )
    deltas = [
        CellRepair(int(dirty[0]), 0),        # commit a repair
        RowAppend(new_row, 1),               # append a 2-candidate dirty row
        RowDelete(0),                        # retire a row
    ]
    result = client.patch("supreme", deltas=deltas)
    print(f"patched to version {result['version']} "
          f"({result['n_rows']} rows, {result['n_worlds']} worlds)")
    for report in result["reports"]:
        print(f"  {report['op']:<11} row {report['row']:>3}: "
              f"{report['n_recomputed']} points recounted, "
              f"{report['n_pruned']} pruned by the irrelevance rule")

    # -- 3. reads echo the version, and stay exact ---------------------
    after = client.query("supreme", points="validation", kind="counts")
    print(f"query served at version {after['version']} "
          f"(fingerprint {after['fingerprint'][:12]}…)")

    local = dataset  # the pre-patch snapshot; replay the deltas in-process
    for delta in deltas:
        local = apply_delta_to_dataset(local, delta)
    expected = execute_query(
        make_query(local, entry.val_X, kind="counts", k=entry.k),
        options=ExecutionOptions(cache=False),
    ).values
    assert after["values"] == expected, "served counts diverged from recompute"
    print("served counts are bit-identical to an in-process recompute")

    # -- 4. Codd tables take NULL-cell fixes the same way --------------
    sql = "SELECT name FROM person WHERE age < 30"
    print(f"certain({sql!r}) = {client.sql(sql)['results']['certain'].rows}")
    fixed = client.fix_cell("person", 2, 1, 30)  # Kevin's age: NULL -> 30
    print(f"fixed person[2].age -> 30 (version {fixed['version']}, "
          f"{fixed['n_worlds']} world(s) left)")
    print(f"certain({sql!r}) = {client.sql(sql)['results']['certain'].rows}")

    server.close()


if __name__ == "__main__":
    main()
