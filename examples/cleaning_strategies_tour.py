"""A tour of the cleaning strategies: sequential, batched, weighted, heuristic.

One workload, five ways to decide what a human should clean next:

1. CPClean — the paper's sequential information maximisation (Algorithm 3);
2. batched CPClean — the same objective, several answers per round;
3. weighted CPClean — a non-uniform prior over which repair is the truth;
4. membership-uncertainty — a cheaper validation-aware heuristic;
5. random — the uninformed baseline.

All strategies stop at the same certificate: every validation prediction is
certain. They differ only in how much human effort that takes.

Run with::

    python examples/cleaning_strategies_tour.py
"""

import numpy as np

from repro.cleaning import (
    GroundTruthOracle,
    MembershipUncertaintyStrategy,
    distance_to_default_weights,
    run_batch_clean,
    run_cp_clean,
    run_policy,
    run_random_clean,
    run_weighted_cp_clean,
)
from repro.data import build_cleaning_task

K = 3
# Small on purpose: the weighted-prior strategy does exact rational
# arithmetic per (row, candidate, validation point) and is the slow one.
task = build_cleaning_task(
    "bank", n_train=30, n_val=5, n_test=40, max_row_candidates=5, seed=5
)
oracle = GroundTruthOracle(task.gt_choice)
n_dirty = task.incomplete.n_uncertain
print(f"workload: {task.name}, {task.incomplete.n_rows} training rows, "
      f"{n_dirty} dirty, {task.val_X.shape[0]} validation points\n")

results: list[tuple[str, int, str]] = []

report = run_cp_clean(task.incomplete, task.val_X, oracle, k=K)
results.append(("CPClean (sequential)", report.n_cleaned, "1 row per round"))

report = run_batch_clean(task.incomplete, task.val_X, oracle, batch_size=4, k=K)
rounds = -(-report.n_cleaned // 4)
results.append(("CPClean (batch=4)", report.n_cleaned, f"{rounds} rounds"))

weights = distance_to_default_weights(task.incomplete, task.default_choice)
report = run_weighted_cp_clean(task.incomplete, task.val_X, oracle, weights=weights, k=K)
results.append(("CPClean (weighted prior)", report.n_cleaned, "repairs near default likelier"))

report = run_policy(
    MembershipUncertaintyStrategy(), task.incomplete, task.val_X, oracle, k=K
)
results.append(("membership heuristic", report.n_cleaned, "no entropy computation"))

report = run_random_clean(task.incomplete, task.val_X, oracle, k=K, seed=0)
results.append(("random", report.n_cleaned, "uninformed baseline"))

width = max(len(name) for name, _, _ in results)
print(f"{'strategy':<{width}}  cleaned  note")
for name, cleaned, note in results:
    print(f"{name:<{width}}  {cleaned:>3}/{n_dirty:<3}  {note}")

best = min(results, key=lambda item: item[1])
worst = max(results, key=lambda item: item[1])
print(
    f"\nevery strategy reached the same certificate; effort ranged from "
    f"{best[1]} ({best[0]}) to {worst[1]} ({worst[0]}) of {n_dirty} dirty rows."
)
assert all(cleaned <= n_dirty for _, cleaned, _ in results)
