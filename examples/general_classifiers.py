"""Certain predictions beyond KNN: Monte-Carlo CP and probabilistic priors.

Two extensions the paper's "Moving Forward" section calls for:

1. **Approximate CP for arbitrary classifiers** — sample possible worlds,
   train the classifier on each, and bound ``Q2/|worlds|`` with a Hoeffding
   band. Demonstrated with the library's logistic-regression substrate and
   validated against the exact KNN engine.
2. **Non-uniform candidate priors** — the block tuple-independent
   probabilistic-database semantics: each candidate repair carries a
   probability, and the query returns exact rational label probabilities.

Run with::

    python examples/general_classifiers.py
"""

from fractions import Fraction

import numpy as np

from repro.core import (
    IncompleteDataset,
    KNNClassifier,
    LogisticRegression,
    estimate_prediction_probabilities,
    q2_counts,
    sample_size_for,
    weighted_prediction_probabilities,
)
from repro.core.entropy import counts_to_probabilities

rng = np.random.default_rng(0)

# A small incomplete dataset: 8 rows, up to 3 candidates each.
sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(8)]
labels = rng.integers(0, 2, size=8)
labels[:2] = [0, 1]
dataset = IncompleteDataset(sets, labels)
points = rng.normal(size=(3, 2))
print(dataset)

# ---------------------------------------------------------------------------
# 1a. Monte-Carlo CP with KNN, validated against the exact engine.
# ---------------------------------------------------------------------------
n = sample_size_for(epsilon=0.05, confidence=0.95)
print(f"\nMonte-Carlo CP: {n} sampled worlds give a ±0.05 band at 95% confidence")
estimate = estimate_prediction_probabilities(
    dataset, points, lambda X, y: KNNClassifier(k=3).fit(X, y), n_samples=n, seed=1
)
for i, t in enumerate(points):
    exact = counts_to_probabilities(q2_counts(dataset, t, k=3))
    sampled = estimate.probabilities()[i]
    print(f"  t{i}: exact p={np.round(exact, 3)}  sampled p={np.round(sampled, 3)}")

# ---------------------------------------------------------------------------
# 1b. The same estimator drives a classifier with NO exact CP algorithm.
# ---------------------------------------------------------------------------
logit_estimate = estimate_prediction_probabilities(
    dataset,
    points,
    lambda X, y: LogisticRegression(n_iterations=100).fit(X, y),
    n_samples=200,
    seed=2,
)
print("\nLogistic regression over the same possible worlds:")
for i, verdict in enumerate(logit_estimate.certain_labels(confidence=0.95)):
    dist = np.round(logit_estimate.probabilities()[i], 3)
    status = f"certain -> label {verdict}" if verdict is not None else "uncertain"
    print(f"  t{i}: p={dist}  ({status})")

# ---------------------------------------------------------------------------
# 2. Probabilistic-database semantics: non-uniform candidate priors.
# ---------------------------------------------------------------------------
weights = []
for row in range(dataset.n_rows):
    m = dataset.candidates(row).shape[0]
    # first candidate twice as likely as the others
    raw = [2] + [1] * (m - 1)
    total = sum(raw)
    weights.append([Fraction(w, total) for w in raw])

probs = weighted_prediction_probabilities(dataset, points[0], k=3, weights=weights)
print("\nKNN over a non-uniform tuple-independent probabilistic database:")
print(f"  P(label) = {[str(p) for p in probs]}  (exact rationals, sum = {sum(probs)})")
