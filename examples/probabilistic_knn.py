"""Q2 as a probabilistic classifier over a tuple-independent database.

The paper notes (§2, "Connections to Probabilistic Databases") that the
counting query is exactly the semantics of evaluating a KNN classifier over
a block tuple-independent probabilistic database with a uniform prior:
``P(label = y) = Q2(D, t, y) / |I_D|``.

This example turns that into a working *probabilistic KNN*: it predicts
label distributions for test points over a dirty training set, calibrates
an abstention threshold, and shows that predictions with high world-support
are far more accurate than low-support ones. Run with::

    python examples/probabilistic_knn.py
"""

import numpy as np

from repro.core.entropy import counts_to_probabilities
from repro.core.queries import q2_counts
from repro.data.task import build_cleaning_task
from repro.utils.tables import format_percent, format_table

task = build_cleaning_task("bank", n_train=80, n_val=16, n_test=120, seed=11)
print(f"task: {task.name}, {len(task.dirty_rows)} dirty rows, "
      f"{task.incomplete.n_worlds():.3e} possible worlds" if task.incomplete.n_worlds() < 10**300
      else f"task: {task.name}, {len(task.dirty_rows)} dirty rows")

# ---------------------------------------------------------------------------
# Probabilistic predictions: distribution over labels per test point.
# ---------------------------------------------------------------------------
confidences, predictions = [], []
for t in task.test_X:
    counts = q2_counts(task.incomplete, t, k=task.k)
    probs = counts_to_probabilities(counts)
    label = int(np.argmax(probs))
    predictions.append(label)
    confidences.append(probs[label])

predictions = np.array(predictions)
confidences = np.array(confidences)
correct = predictions == task.test_y

# ---------------------------------------------------------------------------
# Accuracy stratified by world-support confidence.
# ---------------------------------------------------------------------------
rows = []
bins = [(1.0, 1.0), (0.9, 1.0), (0.7, 0.9), (0.5, 0.7)]
for low, high in bins:
    if low == high:
        mask = confidences >= 1.0
        label = "certain (CP'ed)"
    else:
        mask = (confidences >= low) & (confidences < high)
        label = f"[{low:.1f}, {high:.1f})"
    if mask.sum() == 0:
        rows.append([label, 0, "-"])
    else:
        rows.append([label, int(mask.sum()), format_percent(correct[mask].mean())])

print(
    format_table(
        ["world support", "#test points", "accuracy"],
        rows,
        title="Probabilistic KNN over incomplete data (bank recipe)",
    )
)
overall = correct.mean()
print(f"\noverall accuracy: {format_percent(overall)}")
print("Reading: the support Q2/|worlds| is a usable confidence score —\n"
      "CP'ed points are maximally reliable, low-support points are the ones\n"
      "whose outcome genuinely depends on how the data would be cleaned.")
