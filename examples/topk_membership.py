"""Probabilistic KNN queries: who is in the top-K, with what probability?

Section 2 of the paper contrasts certain predictions with the older
question of *KNN queries over probabilistic databases*: for each training
tuple, the probability that it belongs to the query point's top-K list.
The CP counting machinery answers that question exactly (and in polynomial
time) — this example shows the membership probabilities, the expected
label histogram of the top-K, and how both sharpen as rows get cleaned.

Run with::

    python examples/topk_membership.py
"""

import numpy as np

from repro.core import IncompleteDataset
from repro.core.incremental import IncrementalCPState
from repro.core.topk_prob import (
    expected_topk_label_histogram,
    most_uncertain_rows,
    topk_inclusion_probabilities,
)

rng = np.random.default_rng(7)

# ---------------------------------------------------------------------------
# Ten rows around the origin; four of them dirty with three candidates each.
# ---------------------------------------------------------------------------
candidate_sets = []
for i in range(10):
    centre = rng.normal(scale=2.0, size=2)
    if i % 3 == 0:
        candidate_sets.append(centre + rng.normal(scale=1.5, size=(3, 2)))
    else:
        candidate_sets.append(centre.reshape(1, -1))
labels = [i % 2 for i in range(10)]
dataset = IncompleteDataset(candidate_sets, labels)
t = np.zeros(2)
K = 3

print(dataset)
probabilities = topk_inclusion_probabilities(dataset, t, k=K)
print(f"\nP(row in top-{K}) for t = {t.tolist()}:")
for row, p in enumerate(probabilities):
    dirty = "dirty" if not dataset.is_certain(row) else "clean"
    print(f"  row {row:2d} ({dirty}, label {dataset.label_of(row)}): {p} = {float(p):.3f}")

total = sum(probabilities)
assert total == K, "membership probabilities always sum to exactly K"
print(f"sum of probabilities = {total} (always exactly K)")

# ---------------------------------------------------------------------------
# The expected label histogram of the top-K: a smooth "how contested is
# this prediction" signal.
# ---------------------------------------------------------------------------
histogram = expected_topk_label_histogram(dataset, t, k=K)
print(f"\nexpected top-{K} label histogram: " + ", ".join(
    f"label {y}: {float(h):.3f}" for y, h in enumerate(histogram)
))

# ---------------------------------------------------------------------------
# Which dirty rows are the most undecided? Cleaning them first collapses
# the most membership uncertainty.
# ---------------------------------------------------------------------------
ranked = most_uncertain_rows(dataset, t, k=K)
print(f"\ndirty rows by membership uncertainty (most undecided first): {ranked}")

state = IncrementalCPState(dataset, t, k=K)
for row in ranked:
    state.pin(row, 0)  # pretend the first candidate is the truth
    pinned = dataset
    for r, c in state.fixed.items():
        pinned = pinned.restrict_row(r, c)
    sharpened = topk_inclusion_probabilities(pinned, t, k=K)
    undecided = sum(1 for p in sharpened if 0 < p < 1)
    print(
        f"  cleaned row {row} -> {undecided} rows still undecided, "
        f"counts now {state.counts(0)}"
    )

print(
    f"\nincremental maintenance: {state.n_pruned} pruned / "
    f"{state.n_recomputed} recomputed point-row pairs"
)
