"""The full file-to-file workflow: dirty CSV in, certified clean CSV out.

Everything a practitioner does with this library, end to end, on a file:

1. write a dirty CSV (here: generated, with missing numerics and categories);
2. load it and split off a clean validation set;
3. screen: which validation predictions can cleaning even change?
4. run CPClean against a (simulated) human until everything is certain;
5. materialise the certified world and write the clean CSV back out.

Run with::

    python examples/csv_workflow.py
"""

import csv
import tempfile
import pathlib

import numpy as np

from repro.cleaning import GroundTruthOracle, run_cp_clean
from repro.core.screening import screen_dataset
from repro.data import load_csv_workload, read_csv, write_csv

rng = np.random.default_rng(11)
workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_csv_"))
dirty_path = workdir / "products_dirty.csv"
clean_path = workdir / "products_certified.csv"

# ---------------------------------------------------------------------------
# 1. A dirty product table: two numeric columns, one categorical, a label.
#    ~20% of rows lose a cell (the label column stays complete).
# ---------------------------------------------------------------------------
brands = ["acme", "globex", "initech"]
truth_rows = []
with open(dirty_path, "w", newline="", encoding="utf-8") as handle:
    writer = csv.writer(handle)
    writer.writerow(["weight", "size", "brand", "price"])
    for _ in range(80):
        brand = brands[int(rng.integers(3))]
        weight = float(rng.normal(2.0 + brands.index(brand), 0.5))
        size = float(rng.normal(10.0, 2.0))
        price = "high" if weight + 0.2 * size > 4.5 else "low"
        truth_rows.append((weight, size, brand, price))
        row = [f"{weight:.2f}", f"{size:.1f}", brand, price]
        if rng.random() < 0.2:
            row[int(rng.integers(3))] = ""  # knock out one feature cell
        writer.writerow(row)
print(f"wrote dirty file: {dirty_path}")

# ---------------------------------------------------------------------------
# 2. Load: complete rows become the validation set, the rest the training
#    set with candidate-repair sets (min/p25/mean/p75/max, top categories).
# ---------------------------------------------------------------------------
workload = load_csv_workload(dirty_path, label_column="price", n_val=16, k=3, seed=0)
incomplete = workload.incomplete
print(
    f"train rows: {incomplete.n_rows} ({incomplete.n_uncertain} dirty), "
    f"validation rows: {workload.val_X.shape[0]}, "
    f"possible worlds: {incomplete.n_worlds()}"
)

# ---------------------------------------------------------------------------
# 3. Screen before cleaning anything.
# ---------------------------------------------------------------------------
before = screen_dataset(incomplete, workload.val_X, k=3)
print("\n--- screening before cleaning ---")
print(before.summary())

# ---------------------------------------------------------------------------
# 4. CPClean with a simulated human: the oracle answers with the candidate
#    closest to the ground truth (the paper's §5.1 protocol). Here we use
#    candidate 0 deterministically as the "truth" for demonstration.
# ---------------------------------------------------------------------------
gt_choice = [0] * incomplete.n_rows
report = run_cp_clean(incomplete, workload.val_X, GroundTruthOracle(gt_choice), k=3)
print("\n--- cleaning ---")
print(
    f"CPClean asked the human about {report.n_cleaned} of "
    f"{incomplete.n_uncertain} dirty rows; validation certainty: "
    f"{report.cp_fraction_final:.0%}"
)

# ---------------------------------------------------------------------------
# 5. Materialise a certified world and write it back as a CSV. Rows the
#    human never touched keep their first candidate — any choice yields the
#    same validation predictions, which is exactly the certificate. The raw
#    (pre-encoding) repairs come from the repair space; the schema decodes
#    categorical codes and labels back to the file's vocabulary.
# ---------------------------------------------------------------------------
choice = [0] * incomplete.n_rows
for row, cand in report.final_fixed.items():
    choice[row] = cand

raw = workload.table.take(workload.train_rows).copy()
for row in range(raw.n_rows):
    versions = workload.repair_space.row_repairs(row)
    num, cat = versions[min(choice[row], len(versions) - 1)]
    raw.numeric[row] = num
    raw.categorical[row] = cat
write_csv(raw, clean_path, schema=workload.schema)
print(f"\nwrote certified clean file: {clean_path}")

reread, _ = read_csv(clean_path, label_column="price")
assert reread.missing_rate() == 0.0, "certified output must be complete"
print(f"re-read check: missing rate = {reread.missing_rate():.0%} (complete)")
print(
    "\nEvery remaining repair choice is provably irrelevant to the "
    "validation predictions — that is the certificate CPClean provides."
)
