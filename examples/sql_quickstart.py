"""SQL with certain-answer semantics, in process and over the service.

The paper's Figure 1 runs one incomplete table through both halves of the
system: a SQL query (certain answers) and a classifier (certain
predictions). This quickstart walks the SQL half end to end:

1. build the Figure-1 ``person`` table with a NULL age,
2. parse the paper's query and answer it through the certain-answer
   engine (the vectorized stacked-grid backend serves it),
3. show how cleaning the NULL flips the answer set,
4. round-trip the same query through a live ``repro.service`` HTTP
   server's ``/sql`` endpoint and check the served relation is
   bit-identical to the in-process one,
5. cross the Figure-1 bridge: the same table as an incomplete ML dataset.

Run with::

    PYTHONPATH=src python examples/sql_quickstart.py
"""

import numpy as np

from repro.codd import (
    CoddTable,
    Null,
    answer_query,
    certain_answers,
    codd_table_to_incomplete_dataset,
    parse_sql,
    plan_codd_query,
    possible_answers,
)
from repro.core.queries import certain_label
from repro.service import DatasetRegistry, ServiceClient, make_service


def main() -> None:
    # 1. The Figure-1 table: Kevin's age is NULL over a finite domain.
    person = CoddTable(
        ("name", "age"),
        [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
    )
    print(f"person table: {person}")

    # 2. The paper's query, answered with certain/possible semantics.
    query = parse_sql("SELECT name FROM person WHERE age < 30")
    sure = certain_answers(query, person, name="person")
    maybe = possible_answers(query, person, name="person")
    print(f"certain answers:  {sorted(sure.rows)}")
    print(f"possible answers: {sorted(maybe.rows)}")
    assert sure.rows == {("Anna",)}
    assert maybe.rows == {("Anna",), ("Kevin",)}

    plan = plan_codd_query(query, {"person": person})
    print(f"engine plan: {plan.backend} ({plan.reason})")
    assert plan.backend == "vectorized"

    # 3. Cleaning Kevin's age changes what is certain.
    cleaned = person.with_cell_fixed(2, 1, 2)
    sure_cleaned = certain_answers(query, cleaned, name="person")
    print(f"after cleaning Kevin's age to 2: {sorted(sure_cleaned.rows)}")
    assert sure_cleaned.rows == {("Anna",), ("Kevin",)}

    # 4. The same query over the service: /sql returns the same relation.
    registry = DatasetRegistry()
    registry.register_codd_table("person", person)
    server = make_service(registry)
    try:
        client = ServiceClient(server.url)
        client.wait_until_ready()
        response = client.sql("SELECT name FROM person WHERE age < 30", mode="both")
        print(
            f"served by {server.url} via {response['backends']['certain']!r}: "
            f"{sorted(response['results']['certain'].rows)}"
        )
        assert response["results"]["certain"] == sure
        assert response["results"]["possible"] == maybe
        # The registry pinned the table's stacked completion grid.
        assert server.registry.get_codd("person").stacked is not None
    finally:
        server.close()

    # 5. The bridge to the prediction half: ages become candidate features.
    dataset = codd_table_to_incomplete_dataset(
        CoddTable(
            ("age", "cls"),
            [(32, 1), (29, 0), (Null([1, 2, 30]), 0)],
        ),
        feature_attributes=("age",),
        label_attribute="cls",
    )
    label = certain_label(dataset, np.array([30.0]), k=1)
    print(f"certain prediction for age=30 with 1-NN: {label}")


if __name__ == "__main__":
    main()
