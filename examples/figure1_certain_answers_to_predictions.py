"""Figure 1 end to end: from certain ANSWERS to certain PREDICTIONS.

The paper's opening figure runs one incomplete table through both worlds:

* the database world — ``SELECT * FROM Person WHERE age < 30`` returns the
  *certain answers* (tuples that survive in every possible world);
* the ML world — a classifier trained on every possible world either agrees
  on a test point (a *certain prediction*) or splits, in which case the
  counting query reports the vote.

This example builds that exact table with :mod:`repro.codd`, evaluates the
SQL query, bridges the table into an incomplete training set, and runs the
CP queries on it. Run with::

    python examples/figure1_certain_answers_to_predictions.py
"""

import numpy as np

from repro.codd import (
    Attribute,
    CoddTable,
    Comparison,
    Literal,
    Null,
    Project,
    Scan,
    Select,
    certain_answers,
    codd_table_to_incomplete_dataset,
    possible_answers,
)
from repro.core import certain_label, q2_counts

# ---------------------------------------------------------------------------
# The Codd table of Figure 1: Kevin's age is NULL. In a Codd table every
# NULL ranges over a finite domain, which induces the possible worlds.
# ---------------------------------------------------------------------------
person = CoddTable(
    ("name", "age"),
    [
        ("John", 32),
        ("Anna", 29),
        ("Kevin", Null([1, 2, 30])),  # the paper instantiates 1, 2 and 30
    ],
)
print(person)
print(f"possible worlds: {person.n_worlds()}")

# ---------------------------------------------------------------------------
# Database side: SELECT name FROM Person WHERE age < 30.
# Anna is a certain answer; Kevin is only possible (age may be 30).
# ---------------------------------------------------------------------------
query = Project(
    Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(30))), ("name",)
)
sure = certain_answers(query, person)
maybe = possible_answers(query, person)
print(f"\ncertain answers:  {sorted(sure.rows)}")
print(f"possible answers: {sorted(maybe.rows)}")
assert sure.rows == {("Anna",)}
assert maybe.rows == {("Anna",), ("Kevin",)}

# ---------------------------------------------------------------------------
# Cleaning a cell grows the certain answers monotonically — once Kevin's
# age is revealed as 2, he joins the certain answers.
# ---------------------------------------------------------------------------
cleaned = person.with_cell_fixed(2, 1, 2)
print(f"\nafter cleaning Kevin's age to 2: {sorted(certain_answers(query, cleaned).rows)}")
assert certain_answers(query, cleaned).rows == {("Anna",), ("Kevin",)}

# ---------------------------------------------------------------------------
# ML side: bridge the same table into an incomplete training set. We attach
# a label column (say, "responded to the survey") and ask whether a new
# person with age 28 can be certainly classified by a 1-NN classifier.
# ---------------------------------------------------------------------------
labelled = CoddTable(
    ("age", "responded"),
    [
        (32, 0),
        (29, 1),
        (Null([1.0, 2.0, 30.0]), 1),
    ],
)
dataset = codd_table_to_incomplete_dataset(labelled, ("age",), "responded")
print(f"\nbridged dataset: {dataset}")

t = np.array([28.0])
counts = q2_counts(dataset, t, k=1)
label = certain_label(dataset, t, k=1)
print(f"Q2 counts for t=28: {counts} (out of {dataset.n_worlds()} worlds)")
print(f"certain prediction: {label}")
assert sum(counts) == dataset.n_worlds()

# With k=3 every training row votes, so the (certain) labels decide alone
# and the prediction becomes certain despite the NULL.
label_k3 = certain_label(dataset, t, k=3)
print(f"certain prediction with k=3: {label_k3}")
assert label_k3 == 1

print("\nSame table, both semantics: certain answers <-> certain predictions.")
