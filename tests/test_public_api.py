"""The public API surface: __all__ is accurate everywhere, no stale exports."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.codd",
    "repro.data",
    "repro.cleaning",
    "repro.experiments",
    "repro.obs",
    "repro.service",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name: str) -> None:
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{package_name} has no __all__"
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name: str) -> None:
    module = importlib.import_module(package_name)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), f"duplicates in {package_name}.__all__"


def _iter_submodules(package_name: str):
    package = importlib.import_module(package_name)
    for info in pkgutil.iter_modules(package.__path__, prefix=package_name + "."):
        if not info.ispkg:
            yield info.name


@pytest.mark.parametrize(
    "module_name",
    sorted(
        name
        for pkg in (
            "repro.core",
            "repro.codd",
            "repro.data",
            "repro.cleaning",
            "repro.obs",
            "repro.service",
        )
        for name in _iter_submodules(pkg)
    ),
)
def test_every_submodule_imports_and_has_docstring(module_name: str) -> None:
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert getattr(module, "__all__", None), f"{module_name} lacks __all__"


def test_version_is_exposed() -> None:
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_quickstart_docstring_example_is_true() -> None:
    # The package docstring promises [6, 2]; hold it to that.
    import numpy as np

    from repro import IncompleteDataset, certain_label, q2_counts

    dataset = IncompleteDataset(
        [np.array([[5.0], [2.0]]), np.array([[6.0], [4.0]]), np.array([[3.0], [1.0]])],
        labels=[1, 1, 0],
    )
    t = np.array([0.0])
    assert q2_counts(dataset, t, k=1) == [6, 2]
    assert certain_label(dataset, t, k=1) is None
