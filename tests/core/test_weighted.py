"""Unit tests for weighted (probabilistic-database) counting."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.engine import sortscan_counts
from repro.core.knn import KNNClassifier
from repro.core.weighted import (
    uniform_candidate_weights,
    weighted_prediction_probabilities,
)
from repro.core.worlds import iter_world_choices
from tests.conftest import random_incomplete_dataset


def brute_force_weighted(dataset, t, k, weights):
    """Reference: enumerate worlds, accumulate world probabilities."""
    result = [Fraction(0)] * dataset.n_labels
    for choice in iter_world_choices(dataset):
        probability = Fraction(1)
        for row, cand in enumerate(choice):
            probability *= weights[row][cand]
        if probability == 0:
            continue
        clf = KNNClassifier(k=k).fit(dataset.world(choice), dataset.labels)
        result[clf.predict_one(t)] += probability
    return result


class TestUniformPrior:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_equals_counts_over_world_count(self, k):
        rng = np.random.default_rng(0)
        for _ in range(8):
            dataset = random_incomplete_dataset(rng)
            t = rng.normal(size=dataset.n_features)
            probs = weighted_prediction_probabilities(dataset, t, k=k)
            counts = sortscan_counts(dataset, t, k=k)
            total = dataset.n_worlds()
            assert probs == [Fraction(c, total) for c in counts]

    def test_figure6(self, figure6_dataset):
        dataset, t = figure6_dataset
        probs = weighted_prediction_probabilities(dataset, t, k=1)
        assert probs == [Fraction(6, 8), Fraction(2, 8)]


class TestNonUniformPrior:
    @pytest.mark.parametrize("k", [1, 3])
    def test_matches_weighted_enumeration(self, k):
        rng = np.random.default_rng(1)
        for _ in range(8):
            dataset = random_incomplete_dataset(rng)
            t = rng.normal(size=dataset.n_features)
            weights = []
            for row in range(dataset.n_rows):
                m = dataset.candidates(row).shape[0]
                raw = [int(rng.integers(1, 5)) for _ in range(m)]
                total = sum(raw)
                weights.append([Fraction(w, total) for w in raw])
            expected = brute_force_weighted(dataset, t, k, weights)
            got = weighted_prediction_probabilities(dataset, t, k=k, weights=weights)
            assert got == expected

    def test_zero_weight_candidate_excluded(self):
        # Row 0's second candidate would change the prediction, but carries
        # probability zero — the result must be certain.
        dataset = IncompleteDataset(
            [np.array([[0.1], [3.0]]), np.array([[-1.0]]), np.array([[5.0]])],
            labels=[1, 0, 1],
        )
        weights = [[Fraction(1), Fraction(0)], [Fraction(1)], [Fraction(1)]]
        probs = weighted_prediction_probabilities(
            dataset, np.array([0.0]), k=1, weights=weights
        )
        assert probs == [Fraction(0), Fraction(1)]

    def test_degenerate_prior_selects_one_world(self):
        rng = np.random.default_rng(2)
        dataset = random_incomplete_dataset(rng)
        t = rng.normal(size=dataset.n_features)
        # All mass on candidate 0 of every row => exactly one possible world.
        weights = []
        choice = []
        for row in range(dataset.n_rows):
            m = dataset.candidates(row).shape[0]
            weights.append([Fraction(1)] + [Fraction(0)] * (m - 1))
            choice.append(0)
        probs = weighted_prediction_probabilities(dataset, t, k=1, weights=weights)
        clf = KNNClassifier(k=1).fit(dataset.world(choice), dataset.labels)
        expected_label = clf.predict_one(t)
        assert probs[expected_label] == 1


class TestValidation:
    def test_uniform_helper_sums_to_one(self):
        rng = np.random.default_rng(3)
        dataset = random_incomplete_dataset(rng)
        for row_weights in uniform_candidate_weights(dataset):
            assert sum(row_weights) == 1

    def test_wrong_row_count(self, figure6_dataset):
        dataset, t = figure6_dataset
        with pytest.raises(ValueError, match="one list per row"):
            weighted_prediction_probabilities(dataset, t, k=1, weights=[[Fraction(1)]])

    def test_wrong_candidate_count(self, figure6_dataset):
        dataset, t = figure6_dataset
        bad = [[Fraction(1)], [Fraction(1, 2), Fraction(1, 2)], [Fraction(1, 2), Fraction(1, 2)]]
        with pytest.raises(ValueError, match="candidates"):
            weighted_prediction_probabilities(dataset, t, k=1, weights=bad)

    def test_weights_must_sum_to_one(self, figure6_dataset):
        dataset, t = figure6_dataset
        bad = [[Fraction(1, 2), Fraction(1, 4)]] + [
            [Fraction(1, 2), Fraction(1, 2)] for _ in range(2)
        ]
        with pytest.raises(ValueError, match="sum to"):
            weighted_prediction_probabilities(dataset, t, k=1, weights=bad)

    def test_negative_weights_rejected(self, figure6_dataset):
        dataset, t = figure6_dataset
        bad = [[Fraction(3, 2), Fraction(-1, 2)]] + [
            [Fraction(1, 2), Fraction(1, 2)] for _ in range(2)
        ]
        with pytest.raises(ValueError, match="negative"):
            weighted_prediction_probabilities(dataset, t, k=1, weights=bad)
