"""Cross-cutting invariance properties of the exact counting machinery.

These properties follow from the *structure* of the KNN classifier rather
than from any particular algorithm, so they make strong randomised checks:

* Q2 depends on similarities only through their *ranking* — any two kernels
  that order candidates the same way give identical counts (negative
  Euclidean distance and an RBF kernel are both monotone in the distance).
* Duplicating a candidate splits its worlds: counts with the duplicate
  equal the original counts plus the counts of the dataset with the row
  pinned to the duplicated candidate.
* Rigid motions of the feature space (translation, rotation) leave
  Euclidean-kernel counts unchanged.
* Appending K rows of a label at the test point forces that prediction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import IncompleteDataset
from repro.core.kernels import NegativeEuclideanKernel, RBFKernel
from repro.core.prepared import PreparedQuery
from repro.core.queries import certain_label, q2_counts
from tests.conftest import random_incomplete_dataset


class TestKernelRankInvariance:
    """Counts are a function of the similarity *order*, not its values."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
        gamma=st.floats(min_value=0.05, max_value=3.0),
    )
    def test_rbf_and_negative_euclidean_agree(self, seed: int, k: int, gamma: float) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6)
        t = rng.normal(size=dataset.n_features)
        counts_euclid = q2_counts(dataset, t, k=k, kernel=NegativeEuclideanKernel())
        counts_rbf = q2_counts(dataset, t, k=k, kernel=RBFKernel(gamma=gamma))
        assert counts_euclid == counts_rbf


class TestDuplicateCandidate:
    """Duplicating candidate j of row i adds exactly the pinned-variant counts."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_duplicate_splits_worlds(self, seed: int, k: int) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6)
        t = rng.normal(size=dataset.n_features)
        row = int(rng.integers(dataset.n_rows))
        cand = int(rng.integers(dataset.candidates(row).shape[0]))

        sets = [dataset.candidates(i) for i in range(dataset.n_rows)]
        dup_row = np.vstack([sets[row], sets[row][cand : cand + 1]])
        dup_sets = list(sets)
        dup_sets[row] = dup_row
        duplicated = IncompleteDataset(dup_sets, dataset.labels)

        base = q2_counts(dataset, t, k=k)
        pinned = PreparedQuery(dataset, t, k=k).counts({row: cand})
        with_dup = q2_counts(duplicated, t, k=k)
        assert with_dup == [b + p for b, p in zip(base, pinned)]


class TestGeometricInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_translation_invariance(self, seed: int, k: int) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6)
        t = rng.normal(size=dataset.n_features)
        shift = rng.normal(scale=10.0, size=dataset.n_features)
        shifted = IncompleteDataset(
            [dataset.candidates(i) + shift for i in range(dataset.n_rows)],
            dataset.labels,
        )
        assert q2_counts(dataset, t, k=k) == q2_counts(shifted, t + shift, k=k)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        angle=st.floats(min_value=0.1, max_value=3.0),
    )
    def test_rotation_invariance_2d(self, seed: int, angle: float) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=5, n_features=2)
        t = rng.normal(size=2)
        c, s = np.cos(angle), np.sin(angle)
        rotation = np.array([[c, -s], [s, c]])
        rotated = IncompleteDataset(
            [dataset.candidates(i) @ rotation.T for i in range(dataset.n_rows)],
            dataset.labels,
        )
        assert q2_counts(dataset, t, k=3) == q2_counts(rotated, rotation @ t, k=3)


class TestDominatingRows:
    def test_k_clean_rows_at_t_force_the_prediction(self, rng: np.random.Generator) -> None:
        k = 3
        dataset = random_incomplete_dataset(rng, n_rows=5)
        # Append k clean rows exactly at t with label 0: they fill the top-k
        # in every world, so the prediction is certainly 0.
        t = rng.normal(size=dataset.n_features)
        sets = [dataset.candidates(i) for i in range(dataset.n_rows)]
        labels = list(dataset.labels)
        far = 1000.0 + np.abs(sets[0]).max()
        for i in range(k):
            sets.append((t + 1e-9 * i).reshape(1, -1))
            labels.append(0)
        # push the original rows far away so they cannot interfere
        sets = [s + far if i < dataset.n_rows else s for i, s in enumerate(sets)]
        forced = IncompleteDataset(sets, labels)
        assert certain_label(forced, t, k=k) == 0

    def test_prediction_forced_even_with_dirty_decoys(self, rng: np.random.Generator) -> None:
        t = np.zeros(2)
        sets = [
            np.array([[0.0, 0.0]]),
            np.array([[0.1, 0.0]]),
            np.array([[0.2, 0.0]]),
            rng.normal(loc=5.0, size=(4, 2)),  # dirty, but always further
        ]
        dataset = IncompleteDataset(sets, [1, 1, 1, 0])
        assert certain_label(dataset, t, k=3) == 1
