"""Unit tests for the similarity kernels."""

import numpy as np
import pytest

from repro.core.kernels import (
    CosineKernel,
    LinearKernel,
    NegativeEuclideanKernel,
    RBFKernel,
    resolve_kernel,
)


class TestNegativeEuclidean:
    def test_zero_distance_is_max_similarity(self):
        kernel = NegativeEuclideanKernel()
        assert kernel(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_monotone_in_distance(self):
        kernel = NegativeEuclideanKernel()
        t = np.zeros(2)
        near = kernel(np.array([1.0, 0.0]), t)
        far = kernel(np.array([5.0, 0.0]), t)
        assert near > far

    def test_matches_numpy_norm(self):
        kernel = NegativeEuclideanKernel()
        rng = np.random.default_rng(0)
        x, t = rng.normal(size=3), rng.normal(size=3)
        assert kernel(x, t) == pytest.approx(-np.linalg.norm(x - t))

    def test_vectorised_matches_scalar(self):
        kernel = NegativeEuclideanKernel()
        rng = np.random.default_rng(1)
        candidates, t = rng.normal(size=(5, 3)), rng.normal(size=3)
        sims = kernel.similarities(candidates, t)
        for i in range(5):
            assert sims[i] == pytest.approx(kernel(candidates[i], t))


class TestRBF:
    def test_self_similarity_is_one(self):
        kernel = RBFKernel(gamma=0.5)
        assert kernel(np.ones(2), np.ones(2)) == pytest.approx(1.0)

    def test_bounded_in_unit_interval(self):
        kernel = RBFKernel(gamma=2.0)
        rng = np.random.default_rng(2)
        sims = kernel.similarities(rng.normal(size=(20, 3)), rng.normal(size=3))
        assert np.all(sims > 0) and np.all(sims <= 1)

    def test_same_ranking_as_euclidean(self):
        rng = np.random.default_rng(3)
        candidates, t = rng.normal(size=(10, 3)), rng.normal(size=3)
        rbf = RBFKernel(gamma=1.3).similarities(candidates, t)
        euc = NegativeEuclideanKernel().similarities(candidates, t)
        assert np.array_equal(np.argsort(rbf), np.argsort(euc))

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            RBFKernel(gamma=0.0)


class TestLinearAndCosine:
    def test_linear_is_dot_product(self):
        kernel = LinearKernel()
        assert kernel(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == pytest.approx(11.0)

    def test_cosine_is_scale_invariant(self):
        kernel = CosineKernel()
        x, t = np.array([1.0, 2.0]), np.array([2.0, 1.0])
        assert kernel(x, t) == pytest.approx(kernel(10.0 * x, t))

    def test_cosine_zero_vector_guard(self):
        kernel = CosineKernel()
        assert kernel(np.zeros(2), np.array([1.0, 0.0])) == 0.0


class TestResolver:
    def test_default_is_negative_euclidean(self):
        assert isinstance(resolve_kernel(None), NegativeEuclideanKernel)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("euclidean", NegativeEuclideanKernel),
            ("rbf", RBFKernel),
            ("linear", LinearKernel),
            ("cosine", CosineKernel),
        ],
    )
    def test_resolve_by_name(self, name, cls):
        assert isinstance(resolve_kernel(name), cls)

    def test_passthrough_instance(self):
        kernel = RBFKernel(gamma=9.0)
        assert resolve_kernel(kernel) is kernel

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("chebyshev")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_kernel(42)
