"""Unit tests for count-based probabilities and entropy."""

import math

import pytest

from repro.core.entropy import (
    certain_label_from_counts,
    counts_to_probabilities,
    is_certain_from_counts,
    prediction_entropy,
)


class TestProbabilities:
    def test_simple_normalisation(self):
        assert counts_to_probabilities([1, 3]) == [0.25, 0.75]

    def test_huge_counts_do_not_overflow(self):
        probs = counts_to_probabilities([10**400, 10**400])
        assert probs == [0.5, 0.5]

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            counts_to_probabilities([0, 0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            counts_to_probabilities([-1, 2])


class TestEntropy:
    def test_certain_distribution_has_zero_entropy(self):
        assert prediction_entropy([10, 0]) == 0.0

    def test_uniform_binary_is_one_bit(self):
        assert prediction_entropy([5, 5]) == pytest.approx(1.0)

    def test_uniform_over_four_labels_is_two_bits(self):
        assert prediction_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_matches_formula(self):
        counts = [1, 2, 5]
        total = 8
        expected = -sum((c / total) * math.log2(c / total) for c in counts)
        assert prediction_entropy(counts) == pytest.approx(expected)

    def test_entropy_bounds(self):
        assert 0.0 <= prediction_entropy([3, 9, 1]) <= math.log2(3)


class TestCertainty:
    def test_certain_label_found(self):
        assert certain_label_from_counts([0, 7, 0]) == 1

    def test_uncertain_returns_none(self):
        assert certain_label_from_counts([1, 6]) is None

    def test_is_certain(self):
        assert is_certain_from_counts([4, 0])
        assert not is_certain_from_counts([3, 1])
