"""Unit tests for the MM (MinMax) algorithm."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.minmax import (
    extreme_world_similarities,
    minmax_check,
    minmax_checks_all,
    predictable_labels,
)
from tests.conftest import random_incomplete_dataset


class TestExtremeWorlds:
    def test_target_rows_use_max_similarity(self):
        sims = [np.array([0.1, 0.9]), np.array([0.5, 0.2])]
        labels = np.array([0, 1])
        extreme = extreme_world_similarities(sims, labels, target_label=0)
        assert extreme[0] == 0.9  # label 0 row: max
        assert extreme[1] == 0.2  # other row: min

    def test_extreme_world_dominates_all_worlds(self):
        """Lemma B.1: E_l maximises label-l's vote chances over all worlds."""
        rng = np.random.default_rng(0)
        from repro.core.kernels import NegativeEuclideanKernel
        from repro.core.knn import majority_label, top_k_rows
        from repro.core.scan import candidate_similarities
        from repro.core.worlds import iter_worlds

        kernel = NegativeEuclideanKernel()
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            t = rng.normal(size=dataset.n_features)
            sims = candidate_similarities(dataset, t, kernel)
            for target in (0, 1):
                extreme = extreme_world_similarities(sims, dataset.labels, target)
                extreme_predicts = (
                    majority_label(dataset.labels[top_k_rows(extreme, 1)], 2) == target
                )
                some_world_predicts = False
                for _choice, features in iter_worlds(dataset):
                    from repro.core.knn import KNNClassifier

                    clf = KNNClassifier(k=1).fit(features, dataset.labels)
                    if clf.predict_one(t) == target:
                        some_world_predicts = True
                        break
                assert extreme_predicts == some_world_predicts


class TestMinmaxVsBruteForce:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_q1_matches_enumeration(self, k):
        rng = np.random.default_rng(42 + k)
        for _ in range(20):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            t = rng.normal(size=dataset.n_features)
            counts = brute_force_counts(dataset, t, k=k)
            total = sum(counts)
            for label in (0, 1):
                assert minmax_check(dataset, t, label, k=k) == (counts[label] == total)

    def test_checks_all_has_at_most_one_true(self):
        rng = np.random.default_rng(77)
        for _ in range(20):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            t = rng.normal(size=dataset.n_features)
            result = minmax_checks_all(dataset, t, k=3)
            assert sum(result) <= 1

    def test_certain_dataset_is_detected(self):
        # All rows of one label: prediction trivially certain.
        dataset = IncompleteDataset(
            [np.array([[0.0], [1.0]]), np.array([[2.0], [3.0]]), np.array([[1.5]])],
            labels=[1, 1, 1],
        )
        assert minmax_check(dataset, np.array([0.0]), 1, k=1)
        assert minmax_checks_all(dataset, np.array([0.0]), k=1) == [False, True]


class TestMulticlassGuard:
    def test_multiclass_rejected_by_default(self):
        rng = np.random.default_rng(9)
        dataset = random_incomplete_dataset(rng, n_labels=3)
        t = rng.normal(size=dataset.n_features)
        with pytest.raises(ValueError, match="binary"):
            minmax_check(dataset, t, 0, k=1)

    def test_multiclass_heuristic_is_sound_as_necessary_condition(self):
        """With allow_multiclass, E_l predicting l is implied by existence."""
        rng = np.random.default_rng(10)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_labels=3)
            t = rng.normal(size=dataset.n_features)
            counts = brute_force_counts(dataset, t, k=1)
            winners = predictable_labels(dataset, t, k=1, allow_multiclass=True)
            for label, count in enumerate(counts):
                if count > 0 and counts[label] == sum(counts):
                    # A certainly-predicted label must survive the heuristic.
                    assert winners == [label] or label in winners

    def test_label_out_of_range(self):
        rng = np.random.default_rng(11)
        dataset = random_incomplete_dataset(rng, n_labels=2)
        t = rng.normal(size=dataset.n_features)
        with pytest.raises(ValueError, match="label"):
            minmax_check(dataset, t, 5, k=1)
