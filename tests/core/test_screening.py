"""Batch screening API: per-point results, aggregates, report text."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.queries import certain_label, q2_counts
from repro.core.screening import ScreeningResult, screen_dataset
from tests.conftest import random_incomplete_dataset


@pytest.fixture
def screened(rng: np.random.Generator):
    dataset = random_incomplete_dataset(rng, n_rows=8)
    test_X = rng.normal(size=(6, dataset.n_features))
    return dataset, test_X, screen_dataset(dataset, test_X, k=3)


class TestPerPointAgreement:
    def test_counts_match_single_point_queries(self, screened) -> None:
        dataset, test_X, result = screened
        for i in range(test_X.shape[0]):
            assert result.counts[i] == q2_counts(dataset, test_X[i], k=3)

    def test_certain_labels_match(self, screened) -> None:
        dataset, test_X, result = screened
        for i in range(test_X.shape[0]):
            assert result.certain_labels[i] == certain_label(dataset, test_X[i], k=3)

    def test_entropy_zero_iff_certain(self, screened) -> None:
        _, _, result = screened
        for label, entropy in zip(result.certain_labels, result.entropies):
            assert (entropy == 0.0) == (label is not None)


class TestAggregates:
    def test_cp_fraction_consistent(self, screened) -> None:
        _, _, result = screened
        assert result.cp_fraction == pytest.approx(result.n_certain / result.n_points)

    def test_empty_screen_is_fully_certain(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng)
        result = screen_dataset(dataset, np.zeros((0, dataset.n_features)), k=1)
        assert result.cp_fraction == 1.0
        assert result.uncertain_points() == []

    def test_uncertain_points_sorted_by_entropy(self, screened) -> None:
        _, _, result = screened
        contested = result.uncertain_points()
        entropies = [result.entropies[i] for i in contested]
        assert entropies == sorted(entropies, reverse=True)
        for i in contested:
            assert result.certain_labels[i] is None

    def test_predicted_labels_defined_everywhere(self, screened) -> None:
        dataset, _, result = screened
        predicted = result.predicted_labels()
        assert len(predicted) == result.n_points
        for i, label in enumerate(result.certain_labels):
            if label is not None:
                assert predicted[i] == label

    def test_clean_dataset_screens_fully_certain(self, rng: np.random.Generator) -> None:
        features = rng.normal(size=(6, 2))
        dataset = IncompleteDataset.from_complete(features, [0, 1, 0, 1, 0, 1])
        result = screen_dataset(dataset, rng.normal(size=(4, 2)), k=3)
        assert result.cp_fraction == 1.0
        assert result.n_worlds == 1


class TestSummary:
    def test_summary_mentions_certificate(self, screened) -> None:
        _, _, result = screened
        text = result.summary()
        assert "certainly predicted" in text
        assert f"{result.n_certain}/{result.n_points}" in text

    def test_summary_all_certain_message(self, rng: np.random.Generator) -> None:
        features = rng.normal(size=(5, 2))
        dataset = IncompleteDataset.from_complete(features, [0, 1, 0, 1, 0])
        result = screen_dataset(dataset, rng.normal(size=(2, 2)), k=3)
        assert "cannot change" in result.summary()

    def test_summary_names_most_contested(self, screened) -> None:
        _, _, result = screened
        if result.uncertain_points():
            worst = result.uncertain_points()[0]
            assert f"#{worst}" in result.summary()

    def test_shape_mismatch_rejected(self, screened) -> None:
        dataset, _, _ = screened
        with pytest.raises(ValueError):
            screen_dataset(dataset, np.zeros((2, dataset.n_features + 1)), k=3)
