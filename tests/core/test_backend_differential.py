"""The differential property-test harness across every planner backend.

Seeded random :class:`~repro.core.planner.CPQuery` generation — random
datasets, kind × flavor × pins × weights × k — cross-checked across the
``sequential``, ``batch``, ``incremental`` and ``sharded`` backends
(whichever declare themselves capable) and, for the counting flavors,
against the brute-force world-enumeration oracle. Any divergence between
two backends on any generated query is a bug in a certification system,
so the harness asserts **bit-identical** values, not approximate ones.

The generator is deliberately adversarial for the sharded backend: every
case runs once with tiles far smaller than the dataset (tile boundaries
split rows' candidate segments) and once with tiles far larger (the whole
workload in one tile), so tiling artefacts cannot hide behind friendly
alignment.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.label_uncertainty import (
    LabelUncertainDataset,
    label_uncertain_counts_bruteforce,
)
from repro.core.planner import (
    ExecutionOptions,
    capable_backends,
    execute_query,
    make_query,
)

#: The backends the harness differentiates (a capability-filtered subset
#: runs per query). Order matters only for error messages.
BACKENDS = ("sequential", "batch", "incremental", "sharded")

#: Small tiles (split candidate segments) and oversized tiles (single tile).
TILE_CONFIGS = ((1, 3), (10_000, 10_000))

SEEDS = list(range(20))


def _random_dataset(rng: np.random.Generator, n_labels: int) -> IncompleteDataset:
    n_rows = int(rng.integers(4, 8))
    sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0  # the label space is exactly as declared
    labels[1] = n_labels - 1
    return IncompleteDataset(sets, labels)


def _random_pins(rng: np.random.Generator, dataset: IncompleteDataset) -> dict[int, int]:
    counts = dataset.candidate_counts()
    dirty = dataset.uncertain_rows()
    n_pins = int(rng.integers(0, len(dirty) + 1)) if dirty else 0
    chosen = rng.permutation(dirty)[:n_pins] if n_pins else []
    return {int(row): int(rng.integers(0, counts[int(row)])) for row in chosen}


def _random_weights(
    rng: np.random.Generator, dataset: IncompleteDataset
) -> list[list[Fraction]]:
    weights = []
    for m in dataset.candidate_counts():
        raw = [Fraction(int(rng.integers(1, 6))) for _ in range(int(m))]
        total = sum(raw)
        weights.append([w / total for w in raw])
    return weights


#: Flavor cycles with the seed so every flavor is guaranteed coverage in
#: any contiguous seed range of length >= 5; everything else is random.
_FLAVOR_CYCLE = ("binary", "multiclass", "weighted", "topk", "label_uncertainty")


def random_case(seed: int):
    """One seeded random query: ``(query, oracle_or_None, description)``."""
    rng = np.random.default_rng(seed)
    flavor = _FLAVOR_CYCLE[seed % len(_FLAVOR_CYCLE)]
    n_labels = 2 if flavor in ("binary", "weighted") else int(rng.integers(2, 4))
    dataset = _random_dataset(rng, n_labels)
    k = int(rng.integers(1, min(4, dataset.n_rows) + 1))
    test_X = rng.normal(size=(int(rng.integers(1, 4)), 2))
    pins = _random_pins(rng, dataset)
    kind = "counts" if flavor == "topk" else str(
        rng.choice(["counts", "certain_label", "check"])
    )
    label = int(rng.integers(0, n_labels)) if kind == "check" else None
    kwargs = dict(kind=kind, flavor=flavor, k=k, pins=pins, label=label)

    oracle = None
    if flavor in ("binary", "multiclass"):
        query = make_query(dataset, test_X, **kwargs)
        if kind == "counts":
            restricted = dataset
            for row, cand in pins.items():
                restricted = restricted.restrict_row(row, cand)
            oracle = [brute_force_counts(restricted, t, k=k) for t in test_X]
    elif flavor == "weighted":
        kwargs["weights"] = _random_weights(rng, dataset)
        query = make_query(dataset, test_X, **kwargs)
    elif flavor == "topk":
        query = make_query(dataset, test_X, kind="counts", flavor="topk", k=k, pins=pins)
    else:
        flip_rows = [
            int(row)
            for row in rng.permutation(dataset.n_rows)[: int(rng.integers(1, 3))]
        ]
        lu = LabelUncertainDataset.from_incomplete(dataset, flip_rows=flip_rows)
        query = make_query(lu, test_X, **kwargs)
        if kind == "counts":
            restricted = lu
            for row, cand in pins.items():
                restricted = restricted.restrict_row(row, cand)
            oracle = [
                label_uncertain_counts_bruteforce(restricted, t, k=k) for t in test_X
            ]
    description = f"seed={seed} flavor={flavor} kind={kind} k={k} pins={pins}"
    return query, oracle, description


class TestDifferentialMatrix:
    """Every capable backend must agree bit for bit on every random query."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_backends_agree_and_match_oracle(self, seed):
        query, oracle, description = random_case(seed)
        capable = [b.name for b in capable_backends(query) if b.name in BACKENDS]
        assert "sequential" in capable, description
        assert "sharded" in capable, description

        reference = execute_query(
            query, backend="sequential", options=ExecutionOptions(cache=False)
        ).values
        if oracle is not None:
            assert reference == oracle, f"sequential diverged from oracle: {description}"

        for name in capable:
            if name == "sequential":
                continue
            if name == "sharded":
                for tile_rows, tile_candidates in TILE_CONFIGS:
                    values = execute_query(
                        query,
                        backend=name,
                        options=ExecutionOptions(
                            cache=False,
                            tile_rows=tile_rows,
                            tile_candidates=tile_candidates,
                        ),
                    ).values
                    assert values == reference, (
                        f"sharded (tiles {tile_rows}x{tile_candidates}) diverged: "
                        f"{description}"
                    )
            else:
                values = execute_query(
                    query, backend=name, options=ExecutionOptions(cache=False)
                ).values
                assert values == reference, f"{name} diverged: {description}"

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_cached_rerun_is_identical(self, seed):
        """A second (cache-served) sharded run must replay the first exactly."""
        query, _, description = random_case(seed)
        options = ExecutionOptions(cache=True, tile_rows=2, tile_candidates=5)
        first = execute_query(query, backend="sharded", options=options).values
        second = execute_query(query, backend="sharded", options=options).values
        assert second == first, description

    def test_generator_covers_every_flavor_and_kind(self):
        """The seed range must actually exercise the whole query space."""
        flavors = set()
        kinds = set()
        pinned = 0
        for seed in SEEDS:
            query, _, _ = random_case(seed)
            flavors.add(query.flavor)
            kinds.add(query.kind)
            pinned += bool(query.pins)
        assert flavors == {"binary", "multiclass", "weighted", "topk", "label_uncertainty"}
        assert kinds == {"counts", "certain_label", "check"}
        assert pinned >= 5, "too few generated cases carry pins"
