"""The differential property-test harness across every planner backend.

Seeded random :class:`~repro.core.planner.CPQuery` generation — random
datasets, kind × flavor × pins × weights × k — cross-checked across the
``sequential``, ``batch``, ``incremental`` and ``sharded`` backends
(whichever declare themselves capable) and, for the counting flavors,
against the brute-force world-enumeration oracle. Any divergence between
two backends on any generated query is a bug in a certification system,
so the harness asserts **bit-identical** values, not approximate ones.

The generator is deliberately adversarial for the sharded backend: every
case runs once with tiles far smaller than the dataset (tile boundaries
split rows' candidate segments) and once with tiles far larger (the whole
workload in one tile), so tiling artefacts cannot hide behind friendly
alignment.

The seeded case generators live in :mod:`fuzz.cp_cases`
(``tests/fuzz/cp_cases.py``), shared with the update-sequence harness.
"""

from __future__ import annotations

import pytest

from fuzz.cp_cases import BACKENDS, SEEDS, TILE_CONFIGS, random_case
from repro.core.planner import ExecutionOptions, capable_backends, execute_query


class TestDifferentialMatrix:
    """Every capable backend must agree bit for bit on every random query."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_backends_agree_and_match_oracle(self, seed):
        query, oracle, description = random_case(seed)
        capable = [b.name for b in capable_backends(query) if b.name in BACKENDS]
        assert "sequential" in capable, description
        assert "sharded" in capable, description

        reference = execute_query(
            query, backend="sequential", options=ExecutionOptions(cache=False)
        ).values
        if oracle is not None:
            assert reference == oracle, f"sequential diverged from oracle: {description}"

        for name in capable:
            if name == "sequential":
                continue
            if name == "sharded":
                for tile_rows, tile_candidates in TILE_CONFIGS:
                    values = execute_query(
                        query,
                        backend=name,
                        options=ExecutionOptions(
                            cache=False,
                            tile_rows=tile_rows,
                            tile_candidates=tile_candidates,
                        ),
                    ).values
                    assert values == reference, (
                        f"sharded (tiles {tile_rows}x{tile_candidates}) diverged: "
                        f"{description}"
                    )
            else:
                values = execute_query(
                    query, backend=name, options=ExecutionOptions(cache=False)
                ).values
                assert values == reference, f"{name} diverged: {description}"

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_cached_rerun_is_identical(self, seed):
        """A second (cache-served) sharded run must replay the first exactly."""
        query, _, description = random_case(seed)
        options = ExecutionOptions(cache=True, tile_rows=2, tile_candidates=5)
        first = execute_query(query, backend="sharded", options=options).values
        second = execute_query(query, backend="sharded", options=options).values
        assert second == first, description

    def test_generator_covers_every_flavor_and_kind(self):
        """The seed range must actually exercise the whole query space."""
        flavors = set()
        kinds = set()
        pinned = 0
        for seed in SEEDS:
            query, _, _ = random_case(seed)
            flavors.add(query.flavor)
            kinds.add(query.kind)
            pinned += bool(query.pins)
        assert flavors == {"binary", "multiclass", "weighted", "topk", "label_uncertainty"}
        assert kinds == {"counts", "certain_label", "check"}
        assert pinned >= 5, "too few generated cases carry pins"
