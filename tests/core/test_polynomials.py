"""Unit tests for truncated integer polynomial arithmetic."""

import numpy as np
import pytest

from repro.core.polynomials import (
    poly_div_linear,
    poly_eval,
    poly_mul,
    poly_mul_linear,
    poly_one,
)


class TestBasics:
    def test_poly_one(self):
        assert poly_one(3) == [1, 0, 0, 0]

    def test_poly_one_invalid_degree(self):
        with pytest.raises(ValueError):
            poly_one(-1)

    def test_mul_linear(self):
        # (1 + 2z)(3 + 4z) = 3 + 10z + 8z^2
        assert poly_mul_linear([1, 2, 0], 3, 4) == [3, 10, 8]

    def test_mul_linear_truncates(self):
        # (z^2)(1 + z) truncated at degree 2 = z^2
        assert poly_mul_linear([0, 0, 1], 1, 1) == [0, 0, 1]

    def test_poly_mul(self):
        # (1 + z)(1 + z) = 1 + 2z + z^2
        assert poly_mul([1, 1, 0], [1, 1, 0], 2) == [1, 2, 1]

    def test_poly_mul_truncation(self):
        assert poly_mul([1, 1], [1, 1], 1) == [1, 2]

    def test_poly_eval_horner(self):
        assert poly_eval([1, 2, 3], 2.0) == pytest.approx(1 + 4 + 12)


class TestDivision:
    def test_div_inverts_mul(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            degree = int(rng.integers(1, 6))
            base = [int(rng.integers(0, 10)) for _ in range(degree + 1)]
            a, b = int(rng.integers(1, 6)), int(rng.integers(0, 6))
            product = poly_mul_linear(base, a, b)
            assert poly_div_linear(product, a, b) == base

    def test_div_by_zero_constant_rejected(self):
        with pytest.raises(ZeroDivisionError):
            poly_div_linear([1, 2, 3], 0, 1)

    def test_inexact_division_detected(self):
        # (2 + z) is not a factor of 3 + z: the very first coefficient
        # division 3/2 leaves a remainder. (With a == 1 inexactness is
        # undetectable on truncated coefficients — the engines only ever
        # divide products by their own factors, so this guard is best-effort.)
        with pytest.raises(ArithmeticError):
            poly_div_linear([3, 1, 0], 2, 1)

    def test_division_with_big_integers(self):
        base = [10**40, 3 * 10**38, 7]
        product = poly_mul_linear(base, 12, 5)
        assert poly_div_linear(product, 12, 5) == base

    def test_truncated_division_recovers_truncated_quotient(self):
        # Build a degree-5 product, truncate to degree 2, divide: must match
        # the truncation of the true quotient.
        full = poly_one(5)
        factors = [(2, 1), (3, 2), (1, 4)]
        for a, b in factors:
            full = poly_mul_linear(full, a, b)
        truncated = full[:3]
        quotient = poly_div_linear(truncated, 2, 1)
        expected = poly_one(5)
        for a, b in factors[1:]:
            expected = poly_mul_linear(expected, a, b)
        assert quotient == expected[:3]
