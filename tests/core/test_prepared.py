"""Unit tests for PreparedQuery (cached per-test-point query state)."""

import numpy as np
import pytest

from repro.core.engine import sortscan_counts
from repro.core.entropy import certain_label_from_counts
from repro.core.prepared import PreparedQuery
from tests.conftest import random_incomplete_dataset


class TestCounts:
    @pytest.mark.parametrize("k", [1, 3])
    def test_unfixed_matches_engine(self, k):
        rng = np.random.default_rng(0)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng)
            t = rng.normal(size=dataset.n_features)
            query = PreparedQuery(dataset, t, k=k)
            assert query.counts() == sortscan_counts(dataset, t, k=k)

    def test_fixed_matches_restricted_dataset(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng)
            t = rng.normal(size=dataset.n_features)
            query = PreparedQuery(dataset, t, k=2)
            for row in dataset.uncertain_rows():
                for cand in range(dataset.candidates(row).shape[0]):
                    restricted = dataset.restrict_row(row, cand)
                    assert query.counts({row: cand}) == sortscan_counts(restricted, t, k=2)

    def test_multiple_fixed_rows(self):
        rng = np.random.default_rng(2)
        dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
        while len(dataset.uncertain_rows()) < 2:
            dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
        t = rng.normal(size=dataset.n_features)
        query = PreparedQuery(dataset, t, k=3)
        r1, r2 = dataset.uncertain_rows()[:2]
        restricted = dataset.restrict_row(r1, 0).restrict_row(r2, 1)
        assert query.counts({r1: 0, r2: 1}) == sortscan_counts(restricted, t, k=3)

    def test_fixed_candidate_out_of_range(self):
        rng = np.random.default_rng(3)
        dataset = random_incomplete_dataset(rng)
        t = rng.normal(size=dataset.n_features)
        query = PreparedQuery(dataset, t, k=1)
        with pytest.raises(IndexError):
            query.counts({0: 99})


class TestCountsPerFixing:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_individual_fixings(self, k):
        rng = np.random.default_rng(4)
        trials = 0
        while trials < 10:
            dataset = random_incomplete_dataset(rng)
            dirty = dataset.uncertain_rows()
            if not dirty:
                continue
            trials += 1
            t = rng.normal(size=dataset.n_features)
            query = PreparedQuery(dataset, t, k=k)
            for row in dirty:
                variants = query.counts_per_fixing(row)
                for cand, counts in enumerate(variants):
                    assert counts == query.counts({row: cand})

    def test_respects_existing_fixings(self):
        rng = np.random.default_rng(5)
        dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
        while len(dataset.uncertain_rows()) < 2:
            dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
        t = rng.normal(size=dataset.n_features)
        query = PreparedQuery(dataset, t, k=2)
        r1, r2 = dataset.uncertain_rows()[:2]
        variants = query.counts_per_fixing(r2, fixed={r1: 0})
        for cand, counts in enumerate(variants):
            assert counts == query.counts({r1: 0, r2: cand})

    def test_rejects_pinned_target(self):
        rng = np.random.default_rng(6)
        dataset = random_incomplete_dataset(rng)
        t = rng.normal(size=dataset.n_features)
        query = PreparedQuery(dataset, t, k=1)
        row = dataset.uncertain_rows()[0] if dataset.uncertain_rows() else 0
        with pytest.raises(ValueError, match="pinned"):
            query.counts_per_fixing(row, fixed={row: 0})


class TestMinMaxCertainty:
    def test_agrees_with_counts(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            t = rng.normal(size=dataset.n_features)
            query = PreparedQuery(dataset, t, k=3)
            assert query.certain_label_minmax() == certain_label_from_counts(query.counts())

    def test_agrees_with_counts_under_fixing(self):
        rng = np.random.default_rng(8)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            dirty = dataset.uncertain_rows()
            if not dirty:
                continue
            t = rng.normal(size=dataset.n_features)
            query = PreparedQuery(dataset, t, k=1)
            fixed = {dirty[0]: 0}
            assert query.certain_label_minmax(fixed) == certain_label_from_counts(
                query.counts(fixed)
            )

    def test_multiclass_rejected(self):
        rng = np.random.default_rng(9)
        dataset = random_incomplete_dataset(rng, n_labels=3)
        t = rng.normal(size=dataset.n_features)
        query = PreparedQuery(dataset, t, k=1)
        with pytest.raises(ValueError, match="binary"):
            query.certain_label_minmax()

    def test_k_too_large_rejected(self):
        rng = np.random.default_rng(10)
        dataset = random_incomplete_dataset(rng, n_rows=3)
        t = rng.normal(size=dataset.n_features)
        with pytest.raises(ValueError, match="exceeds"):
            PreparedQuery(dataset, t, k=10)
