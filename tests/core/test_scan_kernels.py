"""Tests for the vectorized decision kernels of ``repro.core.scan_kernels``.

The contract under test: both implementations (``numpy`` chunked,
``python`` per-position) build identical boundary-snapshot arrays, agree
on the certain-label verdict everywhere, and — when run to completion —
report exactly the set of labels whose exact Q2 count is nonzero.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core.batch_engine import _counts_from_scan
from repro.core.dataset import IncompleteDataset
from repro.core.entropy import certain_label_from_counts
from repro.core.pruning import apply_pins_to_scan
from repro.core.scan import ScanOrder, compute_scan_order
from repro.core.scan_kernels import (
    DEFAULT_IMPLEMENTATION,
    KERNEL_IMPLEMENTATIONS,
    build_scan_arrays,
    decision_winners,
    resolve_implementation,
)

SEEDS = list(range(20))


def random_scan(seed: int):
    """A random effective scan plus its ``(k, n_labels)`` parameters."""
    rng = np.random.default_rng(seed)
    n_labels = int(rng.integers(2, 4))
    n_rows = int(rng.integers(3, 8))
    sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0
    labels[1] = n_labels - 1
    dataset = IncompleteDataset(sets, labels)
    t = rng.normal(size=2)
    k = int(rng.integers(1, n_rows + 1))
    scan = compute_scan_order(dataset, t, None)
    if rng.integers(0, 2):  # fold a random pin half the time
        counts = dataset.candidate_counts()
        row = int(rng.integers(0, n_rows))
        scan = apply_pins_to_scan(scan, {row: int(rng.integers(0, counts[row]))})
    return scan, k, n_labels


def exact_winners(scan, k: int, n_labels: int) -> frozenset[int]:
    counts = _counts_from_scan(scan, k, n_labels)
    return frozenset(label for label, count in enumerate(counts) if count > 0)


# ---------------------------------------------------------------------------
# Implementation selection
# ---------------------------------------------------------------------------


def test_resolve_implementation_defaults():
    assert resolve_implementation(None) == DEFAULT_IMPLEMENTATION
    assert resolve_implementation("auto") == DEFAULT_IMPLEMENTATION
    for name in KERNEL_IMPLEMENTATIONS:
        assert resolve_implementation(name) == name


def test_resolve_implementation_rejects_unknown():
    with pytest.raises(ValueError, match="unknown scan-kernel implementation"):
        resolve_implementation("cython")


def test_env_flag_forces_pure_python():
    src = pathlib.Path(repro.__file__).resolve().parents[1]
    code = "from repro.core.scan_kernels import DEFAULT_IMPLEMENTATION as D; print(D)"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={**os.environ, "REPRO_PURE_PYTHON_KERNELS": "1", "PYTHONPATH": str(src)},
        timeout=60,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "python"


# ---------------------------------------------------------------------------
# Effective-scan guard
# ---------------------------------------------------------------------------


def test_rejects_non_effective_scan():
    scan, k, n_labels = random_scan(0)
    broken = ScanOrder(
        rows=scan.rows[:-1],
        cands=scan.cands[:-1],
        sims=scan.sims[:-1],
        row_labels=scan.row_labels,
        row_counts=scan.row_counts,
    )
    with pytest.raises(ValueError, match="effective form"):
        decision_winners(broken, k, n_labels)
    with pytest.raises(ValueError, match="effective form"):
        build_scan_arrays(broken, n_labels)


# ---------------------------------------------------------------------------
# numpy vs python differential
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_scan_arrays_identical_across_implementations(seed):
    scan, _, n_labels = random_scan(seed)
    a = build_scan_arrays(scan, n_labels, implementation="numpy")
    b = build_scan_arrays(scan, n_labels, implementation="python")
    np.testing.assert_array_equal(a.boundary_labels, b.boundary_labels)
    np.testing.assert_array_equal(a.forced, b.forced)
    np.testing.assert_array_equal(a.cap, b.cap)


@pytest.mark.parametrize("seed", SEEDS)
def test_decision_agrees_across_implementations(seed):
    scan, k, n_labels = random_scan(seed)
    a = decision_winners(scan, k, n_labels, implementation="numpy")
    b = decision_winners(scan, k, n_labels, implementation="python")
    # The verdict is exact for both; the winner *sets* are only specified
    # exactly when a scan ran to completion (early termination may stop
    # after any >= 2 winners, and the chunked scan stops later).
    assert a.certain_label == b.certain_label
    if not a.early_terminated and not b.early_terminated:
        assert a.winners == b.winners
    assert 0 < a.positions_scanned <= scan.n_candidates
    assert 0 < b.positions_scanned <= scan.n_candidates


# ---------------------------------------------------------------------------
# Against the exact counting kernel
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_complete_scan_reports_exact_winner_set(seed):
    scan, k, n_labels = random_scan(seed)
    reference = exact_winners(scan, k, n_labels)
    # A chunk larger than the scan disables early termination for the
    # numpy implementation, so its winner set must be the exact one.
    full = decision_winners(
        scan, k, n_labels, implementation="numpy", chunk=scan.n_candidates + 1
    )
    assert not full.early_terminated
    assert full.winners == reference
    assert full.certain_label == certain_label_from_counts(
        _counts_from_scan(scan, k, n_labels)
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("implementation", KERNEL_IMPLEMENTATIONS)
def test_verdict_matches_exact_counts(seed, implementation):
    scan, k, n_labels = random_scan(seed)
    reference = certain_label_from_counts(_counts_from_scan(scan, k, n_labels))
    decision = decision_winners(scan, k, n_labels, implementation=implementation)
    assert decision.certain_label == reference
    # Early termination only ever fires once the verdict is mixed.
    if decision.early_terminated:
        assert decision.certain_label is None
        assert len(decision.winners) >= 2
        assert decision.winners <= exact_winners(scan, k, n_labels)


@pytest.mark.parametrize("implementation", KERNEL_IMPLEMENTATIONS)
def test_chunked_scan_early_terminates_on_mixed_prefix(implementation):
    # Every row is wildly dirty: one candidate far away (so each row
    # advances early in the ascending-similarity scan) and one near the
    # test point (so it stays open to the very end). Once all but k rows
    # have advanced, tallies of both labels are feasible — the verdict
    # is mixed a fraction into the scan and the tail must be skipped.
    rng = np.random.default_rng(7)
    n_rows = 300
    sets = [
        np.vstack(
            [[100.0 + row, 0.0], 0.01 * rng.normal(size=2)]
        )
        for row in range(n_rows)
    ]
    labels = [row % 2 for row in range(n_rows)]
    dataset = IncompleteDataset(sets, labels)
    scan = compute_scan_order(dataset, np.zeros(2), None)
    decision = decision_winners(scan, 3, 2, implementation=implementation)
    assert decision.certain_label is None
    assert decision.early_terminated
    assert decision.positions_scanned < scan.n_candidates
