"""Witness extraction: agreement with Q1, validity of the returned worlds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import IncompleteDataset
from repro.core.knn import KNNClassifier
from repro.core.queries import certain_label, q2_counts
from repro.core.witness import Witness, find_witness
from tests.conftest import random_incomplete_dataset


def verify_witness(dataset: IncompleteDataset, t: np.ndarray, k: int, witness: Witness) -> None:
    """Replay both worlds through the plain KNN substrate."""
    for choice, label in (
        (witness.choice_a, witness.label_a),
        (witness.choice_b, witness.label_b),
    ):
        world = dataset.world(list(choice))
        clf = KNNClassifier(k=k).fit(world, dataset.labels)
        assert clf.predict_one(t) == label
    assert witness.label_a != witness.label_b


class TestAgreementWithQ1:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
        n_labels=st.integers(min_value=2, max_value=3),
    )
    def test_witness_exists_iff_not_certain(self, seed: int, k: int, n_labels: int) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6, n_labels=n_labels)
        t = rng.normal(size=dataset.n_features)
        witness = find_witness(dataset, t, k=k)
        if certain_label(dataset, t, k=k) is None:
            assert witness is not None
            verify_witness(dataset, t, k, witness)
        else:
            assert witness is None

    def test_witness_labels_have_nonzero_counts(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=7)
        t = rng.normal(size=dataset.n_features)
        witness = find_witness(dataset, t, k=3)
        if witness is not None:
            counts = q2_counts(dataset, t, k=3)
            assert counts[witness.label_a] > 0
            assert counts[witness.label_b] > 0


class TestEdgeCases:
    def test_clean_dataset_has_no_witness(self, rng: np.random.Generator) -> None:
        features = rng.normal(size=(5, 2))
        dataset = IncompleteDataset.from_complete(features, [0, 1, 0, 1, 0])
        assert find_witness(dataset, rng.normal(size=2), k=3) is None

    def test_contested_top1_yields_witness(self) -> None:
        dataset = IncompleteDataset(
            [np.array([[1.0], [9.0]]), np.array([[2.0]])], labels=[0, 1]
        )
        witness = find_witness(dataset, np.array([0.0]), k=1)
        assert witness is not None
        verify_witness(dataset, np.array([0.0]), 1, witness)

    def test_k_exceeding_rows_rejected(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=3)
        with pytest.raises(ValueError, match="exceeds"):
            find_witness(dataset, np.zeros(dataset.n_features), k=4)

    def test_multiclass_enumeration_path(self, rng: np.random.Generator) -> None:
        # Small 3-label instance: the exhaustive path must find witnesses
        # whenever counting says the point is contested.
        dataset = random_incomplete_dataset(rng, n_rows=5, n_labels=3)
        t = rng.normal(size=dataset.n_features)
        counts = q2_counts(dataset, t, k=1)
        witness = find_witness(dataset, t, k=1)
        contested = sum(1 for c in counts if c > 0) > 1
        assert (witness is not None) == contested

    def test_large_multiclass_sampling_path(self, rng: np.random.Generator) -> None:
        # 14 rows x 3 candidates ≈ 4.7M worlds: forces the sampling branch.
        sets = [rng.normal(size=(3, 2)) for _ in range(14)]
        labels = rng.integers(0, 3, size=14)
        labels[:3] = [0, 1, 2]
        dataset = IncompleteDataset(sets, labels)
        t = rng.normal(size=2)
        witness = find_witness(dataset, t, k=3, seed=1)
        if witness is not None:
            verify_witness(dataset, t, 3, witness)
        else:
            assert certain_label(dataset, t, k=3) is not None
