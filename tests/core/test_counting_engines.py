"""Cross-validation of every Q2 counting engine against brute force.

These are the load-bearing correctness tests of the library: four
independent implementations (Algorithm 1 reference DP, fast incremental
engine, SS-DC tree, SS-DC-MC) must agree bit-for-bit with exhaustive world
enumeration on randomised instances.
"""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_check, brute_force_counts
from repro.core.engine import sortscan_counts
from repro.core.multiclass import count_bounded_assignments, sortscan_counts_multiclass
from repro.core.sortscan import sortscan_counts_naive
from repro.core.sortscan_tree import sortscan_counts_tree
from tests.conftest import random_incomplete_dataset

ENGINES = {
    "naive": sortscan_counts_naive,
    "engine": sortscan_counts,
    "tree": sortscan_counts_tree,
    "multiclass": sortscan_counts_multiclass,
}


class TestFigure6:
    """The paper's worked example (Figure 6, Examples 1-6)."""

    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_counts_are_6_and_2(self, figure6_dataset, engine):
        dataset, t = figure6_dataset
        assert ENGINES[engine](dataset, t, k=1) == [6, 2]

    def test_brute_force_agrees(self, figure6_dataset):
        dataset, t = figure6_dataset
        assert brute_force_counts(dataset, t, k=1) == [6, 2]

    def test_not_certainly_predicted(self, figure6_dataset):
        dataset, t = figure6_dataset
        assert not brute_force_check(dataset, t, 0, k=1)
        assert not brute_force_check(dataset, t, 1, k=1)

    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_k3_uses_all_rows(self, figure6_dataset, engine):
        dataset, t = figure6_dataset
        expected = brute_force_counts(dataset, t, k=3)
        assert ENGINES[engine](dataset, t, k=3) == expected


class TestRandomisedCrossChecks:
    @pytest.mark.parametrize("engine", list(ENGINES))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_binary_agrees_with_bruteforce(self, engine, k):
        rng = np.random.default_rng(100 + k)
        for _ in range(15):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            t = rng.normal(size=dataset.n_features)
            expected = brute_force_counts(dataset, t, k=k)
            assert ENGINES[engine](dataset, t, k=k) == expected

    @pytest.mark.parametrize("engine", list(ENGINES))
    @pytest.mark.parametrize("n_labels", [3, 4])
    def test_multiclass_agrees_with_bruteforce(self, engine, n_labels):
        rng = np.random.default_rng(200 + n_labels)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_labels=n_labels)
            t = rng.normal(size=dataset.n_features)
            for k in (1, 3):
                expected = brute_force_counts(dataset, t, k=k)
                assert ENGINES[engine](dataset, t, k=k) == expected

    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_counts_sum_to_world_count(self, engine):
        rng = np.random.default_rng(300)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, max_candidates=4)
            t = rng.normal(size=dataset.n_features)
            counts = ENGINES[engine](dataset, t, k=2)
            assert sum(counts) == dataset.n_worlds()

    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_complete_dataset_concentrates_on_knn_prediction(self, engine):
        from repro.core.knn import KNNClassifier

        rng = np.random.default_rng(400)
        features = rng.normal(size=(8, 2))
        labels = rng.integers(0, 2, size=8)
        labels[:2] = [0, 1]
        from repro.core.dataset import IncompleteDataset

        dataset = IncompleteDataset.from_complete(features, labels)
        clf = KNNClassifier(k=3).fit(features, labels)
        for _ in range(5):
            t = rng.normal(size=2)
            counts = ENGINES[engine](dataset, t, k=3)
            assert counts[clf.predict_one(t)] == 1
            assert sum(counts) == 1

    def test_k_equals_n_rows(self):
        rng = np.random.default_rng(500)
        dataset = random_incomplete_dataset(rng, n_rows=4)
        t = rng.normal(size=dataset.n_features)
        expected = brute_force_counts(dataset, t, k=4)
        for engine in ENGINES.values():
            assert engine(dataset, t, k=4) == expected

    def test_k_larger_than_n_rejected(self):
        rng = np.random.default_rng(600)
        dataset = random_incomplete_dataset(rng, n_rows=3)
        t = rng.normal(size=dataset.n_features)
        for engine in ENGINES.values():
            with pytest.raises(ValueError, match="exceeds"):
                engine(dataset, t, k=10)

    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_large_counts_stay_exact(self, engine):
        # 3^20 worlds exceed float precision; counts must still sum exactly.
        rng = np.random.default_rng(700)
        from repro.core.dataset import IncompleteDataset

        sets = [rng.normal(size=(3, 2)) for _ in range(20)]
        labels = rng.integers(0, 2, size=20)
        labels[:2] = [0, 1]
        dataset = IncompleteDataset(sets, labels)
        t = rng.normal(size=2)
        counts = ENGINES[engine](dataset, t, k=3)
        assert sum(counts) == 3**20


class TestBoundedAssignments:
    def test_exhaustive_small_case(self):
        # Two labels with known placement ways; compare against enumeration.
        arrays = [[1, 2, 1], [1, 3, 0]]
        bounds = [2, 1]
        total = 2
        expected = 0
        for a in range(3):
            for b in range(3):
                if a + b == total and a <= bounds[0] and b <= bounds[1]:
                    expected += arrays[0][a] * arrays[1][b]
        assert count_bounded_assignments(arrays, bounds, total) == expected

    def test_negative_total(self):
        assert count_bounded_assignments([[1, 1]], [1], -1) == 0

    def test_empty_labels(self):
        assert count_bounded_assignments([], [], 0) == 1
        assert count_bounded_assignments([], [], 2) == 0
