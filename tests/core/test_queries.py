"""Unit tests for the public Q1/Q2 API."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_counts
from repro.core.queries import certain_label, q1, q2, q2_counts
from tests.conftest import random_incomplete_dataset


class TestQ2:
    def test_figure6(self, figure6_dataset):
        dataset, t = figure6_dataset
        assert q2_counts(dataset, t, k=1) == [6, 2]
        assert q2(dataset, t, 0, k=1) == 6
        assert q2(dataset, t, 1, k=1) == 2

    @pytest.mark.parametrize("algorithm", ["auto", "engine", "tree", "multiclass", "naive", "bruteforce"])
    def test_all_backends_agree(self, figure6_dataset, algorithm):
        dataset, t = figure6_dataset
        assert q2_counts(dataset, t, k=1, algorithm=algorithm) == [6, 2]

    def test_unknown_backend(self, figure6_dataset):
        dataset, t = figure6_dataset
        with pytest.raises(ValueError, match="algorithm"):
            q2_counts(dataset, t, algorithm="quantum")

    def test_label_out_of_range(self, figure6_dataset):
        dataset, t = figure6_dataset
        with pytest.raises(ValueError, match="label"):
            q2(dataset, t, 7, k=1)


class TestQ1:
    def test_uncertain_point(self, figure6_dataset):
        dataset, t = figure6_dataset
        assert not q1(dataset, t, 0, k=1)
        assert not q1(dataset, t, 1, k=1)

    @pytest.mark.parametrize("algorithm", ["auto", "minmax", "engine", "bruteforce"])
    def test_backends_agree_on_random_binary(self, algorithm):
        rng = np.random.default_rng(0)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_labels=2)
            t = rng.normal(size=dataset.n_features)
            counts = brute_force_counts(dataset, t, k=3)
            total = sum(counts)
            for label in (0, 1):
                expected = counts[label] == total
                assert q1(dataset, t, label, k=3, algorithm=algorithm) == expected

    def test_multiclass_uses_counting_path(self):
        rng = np.random.default_rng(1)
        dataset = random_incomplete_dataset(rng, n_labels=3)
        t = rng.normal(size=dataset.n_features)
        counts = brute_force_counts(dataset, t, k=1)
        total = sum(counts)
        for label in range(3):
            assert q1(dataset, t, label, k=1) == (counts[label] == total)

    def test_minmax_refused_for_multiclass(self):
        rng = np.random.default_rng(2)
        dataset = random_incomplete_dataset(rng, n_labels=3)
        t = rng.normal(size=dataset.n_features)
        with pytest.raises(ValueError, match="binary"):
            q1(dataset, t, 0, k=1, algorithm="minmax")


class TestCertainLabel:
    def test_none_when_uncertain(self, figure6_dataset):
        dataset, t = figure6_dataset
        assert certain_label(dataset, t, k=1) is None

    def test_matches_counts_on_random_instances(self):
        rng = np.random.default_rng(3)
        for n_labels in (2, 3):
            for _ in range(10):
                dataset = random_incomplete_dataset(rng, n_labels=n_labels)
                t = rng.normal(size=dataset.n_features)
                counts = q2_counts(dataset, t, k=3)
                total = sum(counts)
                expected = next(
                    (lbl for lbl, c in enumerate(counts) if c == total), None
                )
                assert certain_label(dataset, t, k=3) == expected

    def test_certain_when_all_labels_equal(self):
        from repro.core.dataset import IncompleteDataset

        dataset = IncompleteDataset(
            [np.array([[0.0], [1.0]]), np.array([[5.0]])], labels=[1, 1]
        )
        assert certain_label(dataset, np.array([0.3]), k=1) == 1
