"""Unit tests for the Monte-Carlo CP estimator and the logistic substrate."""

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.entropy import counts_to_probabilities
from repro.core.knn import KNNClassifier
from repro.core.linear import LogisticRegression
from repro.core.montecarlo import (
    estimate_prediction_probabilities,
    sample_size_for,
)
from repro.core.queries import q2_counts
from tests.conftest import random_incomplete_dataset


def knn_factory(k):
    return lambda X, y: KNNClassifier(k=k).fit(X, y)


class TestMonteCarloEstimator:
    def test_estimates_converge_to_exact_counts(self):
        rng = np.random.default_rng(0)
        dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
        points = rng.normal(size=(4, dataset.n_features))
        estimate = estimate_prediction_probabilities(
            dataset, points, knn_factory(3), n_samples=600, seed=1
        )
        epsilon = estimate.half_width(0.99)
        for i, t in enumerate(points):
            exact = counts_to_probabilities(q2_counts(dataset, t, k=3))
            for label in range(dataset.n_labels):
                assert abs(estimate.probabilities()[i, label] - exact[label]) <= epsilon + 0.02

    def test_certain_labels_are_sound(self):
        """An MC 'certain' verdict must match the exact certain label."""
        rng = np.random.default_rng(1)
        from repro.core.queries import certain_label

        hits = 0
        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_rows=5, max_candidates=2)
            t = rng.normal(size=(1, dataset.n_features))
            estimate = estimate_prediction_probabilities(
                dataset, t, knn_factory(1), n_samples=400, seed=2
            )
            verdict = estimate.certain_labels(0.95)[0]
            if verdict is not None:
                hits += 1
                exact = certain_label(dataset, t[0], k=1)
                # the sampled-unanimous label must at least be the majority label
                counts = q2_counts(dataset, t[0], k=1)
                assert verdict == int(np.argmax(counts))
                if exact is not None:
                    assert verdict == exact
        assert hits > 0  # the test exercised the certain path

    def test_votes_shape_and_total(self):
        rng = np.random.default_rng(2)
        dataset = random_incomplete_dataset(rng)
        points = rng.normal(size=(3, dataset.n_features))
        estimate = estimate_prediction_probabilities(
            dataset, points, knn_factory(1), n_samples=50, seed=0
        )
        assert estimate.votes.shape == (3, dataset.n_labels)
        assert np.all(estimate.votes.sum(axis=1) == 50)

    def test_sample_size_for_inverts_half_width(self):
        n = sample_size_for(epsilon=0.05, confidence=0.95)
        from repro.core.montecarlo import MonteCarloEstimate

        est = MonteCarloEstimate(np.zeros((1, 2)), n, 2)
        assert est.half_width(0.95) <= 0.05

    def test_rejects_bad_predictions(self):
        rng = np.random.default_rng(3)
        dataset = random_incomplete_dataset(rng)
        points = rng.normal(size=(2, dataset.n_features))

        class BadModel:
            def predict(self, X):
                return np.full(X.shape[0], 99)

        with pytest.raises(ValueError, match="label space"):
            estimate_prediction_probabilities(
                dataset, points, lambda X, y: BadModel(), n_samples=2, seed=0
            )

    def test_works_with_logistic_regression(self):
        rng = np.random.default_rng(4)
        dataset = random_incomplete_dataset(rng, n_rows=8, max_candidates=2)
        points = rng.normal(size=(2, dataset.n_features))
        estimate = estimate_prediction_probabilities(
            dataset,
            points,
            lambda X, y: LogisticRegression(n_iterations=50).fit(X, y),
            n_samples=20,
            seed=0,
        )
        probs = estimate.probabilities()
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestLogisticRegression:
    def test_learns_linearly_separable_data(self):
        rng = np.random.default_rng(5)
        n = 200
        X = rng.normal(size=(n, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        clf = LogisticRegression(n_iterations=300).fit(X, y)
        assert clf.accuracy(X, y) > 0.95

    def test_multiclass(self):
        rng = np.random.default_rng(6)
        centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
        X = np.concatenate([c + rng.normal(size=(50, 2)) * 0.5 for c in centers])
        y = np.repeat(np.arange(3), 50)
        clf = LogisticRegression(n_iterations=300).fit(X, y)
        assert clf.accuracy(X, y) > 0.95

    def test_probabilities_normalised(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(30, 3))
        y = rng.integers(0, 2, size=30)
        clf = LogisticRegression(n_iterations=20).fit(X, y)
        probs = clf.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_deterministic_training(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(40, 2))
        y = rng.integers(0, 2, size=40)
        a = LogisticRegression(n_iterations=50).fit(X, y).predict(X)
        b = LogisticRegression(n_iterations=50).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)
