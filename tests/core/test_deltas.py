"""Unit tests for the delta-maintenance layer (:mod:`repro.core.deltas`).

The sequence-level bit-identity guarantees live in
``tests/fuzz/test_update_sequences.py``; this file pins the unit
semantics — the delta vocabulary, the irrelevance (provenance) rule, the
per-delta reports, the warm-state handoff and every validation error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.deltas import (
    CellRepair,
    DeltaMaintainedState,
    RowAppend,
    RowDelete,
    apply_delta_to_dataset,
    dominating_rows,
    row_is_irrelevant,
)
from repro.core.queries import q2_counts


def small_dataset() -> IncompleteDataset:
    # Rows 0 and 1 are dirty (2 candidates each), rows 2 and 3 are clean.
    return IncompleteDataset(
        [
            np.array([[0.0, 0.0], [6.0, 6.0]]),
            np.array([[10.0, 10.0], [4.0, 4.0]]),
            np.array([[1.0, 1.0]]),
            np.array([[9.0, 9.0]]),
        ],
        labels=[0, 1, 0, 1],
    )


def probe_points() -> np.ndarray:
    return np.array([[0.5, 0.5], [9.5, 9.5], [5.0, 5.0]])


class TestDeltaVocabulary:
    def test_apply_delta_to_dataset_matches_dataset_methods(self):
        dataset = small_dataset()
        repaired = apply_delta_to_dataset(dataset, CellRepair(0, 1))
        assert repaired.fingerprint() == dataset.restrict_row(0, 1).fingerprint()

        new_row = np.array([[2.0, 2.0], [3.0, 3.0]])
        appended = apply_delta_to_dataset(dataset, RowAppend(new_row, 1))
        assert appended.fingerprint() == dataset.append_row(new_row, 1).fingerprint()

        deleted = apply_delta_to_dataset(dataset, RowDelete(1))
        assert deleted.fingerprint() == dataset.delete_row(1).fingerprint()

    def test_apply_delta_to_dataset_rejects_unknown_type(self):
        with pytest.raises(TypeError, match="unknown delta type"):
            apply_delta_to_dataset(small_dataset(), object())


class TestIrrelevanceRule:
    def test_dominating_rows_counts_strictly_greater_mins(self):
        mins = np.array([0.9, 0.5, 0.3, 0.5])
        assert dominating_rows(mins, 0.5) == 1  # ties do not dominate
        assert dominating_rows(mins, 0.2) == 4
        assert dominating_rows(mins, 0.9) == 0

    def test_row_is_irrelevant_excludes_the_row_itself(self):
        # Row 0's own min beats `best`, but it cannot dominate itself.
        mins = np.array([0.9, 0.8, 0.1])
        assert not row_is_irrelevant(mins, row=0, best=0.7, k=2)
        # With k=1 the single other dominator (row 1) suffices.
        assert row_is_irrelevant(mins, row=0, best=0.7, k=1)

    def test_irrelevant_row_never_in_provenance(self):
        dataset = small_dataset()
        state = DeltaMaintainedState(dataset, probe_points(), k=1)
        # For the point at (0.5, 0.5), row 3 at (9, 9) is hopeless: rows 2
        # and 0 both guarantee a closer neighbour, so with k=1 its choice
        # can never matter.
        assert 3 not in state.provenance(0)


class TestDeltaApplication:
    def test_repair_matches_fresh_q2_counts(self):
        dataset = small_dataset()
        points = probe_points()
        state = DeltaMaintainedState(dataset, points, k=3)
        state.apply(CellRepair(0, 0))
        restricted = dataset.restrict_row(0, 0)
        for i, point in enumerate(points):
            assert state.counts(i) == q2_counts(restricted, point, k=3)

    def test_append_matches_fresh_q2_counts(self):
        dataset = small_dataset()
        points = probe_points()
        state = DeltaMaintainedState(dataset, points, k=3)
        new_row = np.array([[2.0, 2.0], [7.0, 7.0], [5.0, 5.0]])
        state.apply(RowAppend(new_row, 0))
        grown = dataset.append_row(new_row, 0)
        for i, point in enumerate(points):
            assert state.counts(i) == q2_counts(grown, point, k=3)

    def test_delete_matches_fresh_q2_counts(self):
        dataset = small_dataset()
        points = probe_points()
        state = DeltaMaintainedState(dataset, points, k=3)
        state.apply(RowDelete(1))
        shrunk = dataset.delete_row(1)
        for i, point in enumerate(points):
            assert state.counts(i) == q2_counts(shrunk, point, k=3)

    def test_append_can_grow_the_label_space(self):
        dataset = small_dataset()
        state = DeltaMaintainedState(dataset, probe_points(), k=3)
        state.apply(RowAppend(np.array([[5.0, 5.0]]), 2))  # new label
        assert state.dataset.n_labels == 3
        grown = dataset.append_row(np.array([[5.0, 5.0]]), 2)
        assert state.counts_all() == [
            q2_counts(grown, point, k=3) for point in probe_points()
        ]
        assert all(len(counts) == 3 for counts in state.counts_all())

    def test_repair_of_clean_row_is_a_counted_noop(self):
        dataset = small_dataset()
        state = DeltaMaintainedState(dataset, probe_points(), k=3)
        before = state.counts_all()
        report = state.apply(CellRepair(2, 0))  # row 2 has one candidate
        assert state.counts_all() == before
        assert report["n_recomputed"] == 0
        assert report["n_pruned"] == state.n_points

    def test_apply_many_returns_one_report_per_delta(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=2)
        reports = state.apply_many([CellRepair(0, 0), RowDelete(3)])
        assert [r["op"] for r in reports] == ["cell_repair", "row_delete"]
        assert [r["version"] for r in reports] == [1, 2]
        state.verify()

    def test_reports_partition_points_into_pruned_and_recomputed(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=1)
        report = state.apply(CellRepair(0, 0))
        assert report["n_pruned"] + report["n_recomputed"] == state.n_points
        assert sorted(report["touched_points"]) == report["touched_points"]
        assert len(report["touched_points"]) == report["n_recomputed"]
        # The running totals accumulate what the reports said.
        assert state.n_pruned == report["n_pruned"]
        assert state.n_recomputed == report["n_recomputed"]

    def test_version_increments_per_delta(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=2)
        assert state.version == 0
        state.apply(CellRepair(0, 1))
        assert state.version == 1
        state.apply(RowDelete(0))
        assert state.version == 2


class TestValidation:
    def test_k_must_fit_the_dataset(self):
        with pytest.raises(ValueError, match="exceeds the number of training rows"):
            DeltaMaintainedState(small_dataset(), probe_points(), k=5)

    def test_repair_row_out_of_range(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=2)
        with pytest.raises(IndexError, match="row 9 out of range"):
            state.apply(CellRepair(9, 0))

    def test_repair_candidate_out_of_range(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=2)
        with pytest.raises(IndexError, match="candidate 5 out of range"):
            state.apply(CellRepair(0, 5))

    def test_delete_cannot_drop_below_k(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=4)
        with pytest.raises(ValueError, match="cannot delete row 0"):
            state.apply(RowDelete(0))

    def test_delete_row_out_of_range(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=2)
        with pytest.raises(IndexError, match="row 7 out of range"):
            state.apply(RowDelete(7))

    def test_unknown_delta_type_rejected(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=2)
        with pytest.raises(TypeError, match="unknown delta type"):
            state.apply("not a delta")

    def test_sims_matrix_shape_checked(self):
        with pytest.raises(ValueError, match="sims_matrix must have shape"):
            DeltaMaintainedState(
                small_dataset(),
                probe_points(),
                k=2,
                sims_matrix=np.zeros((3, 2)),
            )

    def test_test_points_shape_checked(self):
        with pytest.raises(ValueError, match="test_points must have shape"):
            DeltaMaintainedState(small_dataset(), np.zeros((2, 5)), k=2)


class TestWarmStateHandoff:
    def test_sims_matrix_is_bit_identical_to_pairwise(self):
        dataset = small_dataset()
        points = probe_points()
        state = DeltaMaintainedState(dataset, points, k=3)
        state.apply(RowAppend(np.array([[3.0, 3.0], [6.0, 6.0]]), 0))
        state.apply(CellRepair(1, 1))
        current = state.dataset
        stacked = np.concatenate(
            [current.candidates(i) for i in range(current.n_rows)], axis=0
        )
        expected = state.kernel.pairwise(stacked, points)
        assert np.array_equal(state.sims_matrix(), expected)

    def test_prepared_batch_answers_like_a_cold_one(self):
        from repro.core.batch_engine import PreparedBatch

        dataset = small_dataset()
        points = probe_points()
        state = DeltaMaintainedState(dataset, points, k=3)
        state.apply(CellRepair(0, 0))
        warm = state.prepared_batch()
        cold = PreparedBatch(state.dataset, points, k=3, kernel=state.kernel)
        for i in range(len(points)):
            assert warm.query(i).counts() == cold.query(i).counts()

    def test_accepts_precomputed_sims_matrix(self):
        dataset = small_dataset()
        points = probe_points()
        cold = DeltaMaintainedState(dataset, points, k=3)
        warm = DeltaMaintainedState(
            dataset, points, k=3, sims_matrix=cold.sims_matrix()
        )
        assert warm.counts_all() == cold.counts_all()

    def test_verify_detects_corruption(self):
        state = DeltaMaintainedState(small_dataset(), probe_points(), k=3)
        state.verify()  # clean state passes
        state._counts[0][0] += 1
        with pytest.raises(AssertionError, match="maintained counts diverged"):
            state.verify()
