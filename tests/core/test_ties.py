"""Exact similarity ties: every engine must implement one total order.

The paper waves ties away ("we can always break a tie by favoring a smaller
i and j"); the library commits to that exact rule. These tests hammer the
degenerate configurations where *many* candidates are equidistant from the
test point — duplicated candidates within a row, identical rows, whole
datasets collapsed onto one point — and require all Q2 backends, MM, the
prepared-query path and brute force to agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.minmax import minmax_check
from repro.core.prepared import PreparedQuery
from repro.core.queries import q2_counts
from repro.core.topk_prob import (
    topk_inclusion_counts,
    topk_inclusion_counts_bruteforce,
)

ENGINES = ("engine", "tree", "multiclass", "naive")


def assert_all_engines_agree(dataset: IncompleteDataset, t: np.ndarray, k: int) -> list[int]:
    reference = brute_force_counts(dataset, t, k=k)
    for engine in ENGINES:
        counts = q2_counts(dataset, t, k=k, algorithm=engine)
        assert counts == reference, f"{engine} disagrees with brute force under ties"
    return reference


class TestDegenerateGeometry:
    def test_all_candidates_identical(self) -> None:
        # Every candidate of every row sits exactly at t.
        sets = [np.zeros((2, 2)) for _ in range(4)]
        dataset = IncompleteDataset(sets, [0, 1, 0, 1])
        counts = assert_all_engines_agree(dataset, np.zeros(2), k=3)
        assert sum(counts) == dataset.n_worlds() == 16

    def test_duplicate_candidates_within_rows(self) -> None:
        row = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        dataset = IncompleteDataset([row, row.copy(), np.array([[2.0, 0.0]])], [0, 1, 1])
        counts = assert_all_engines_agree(dataset, np.zeros(2), k=1)
        assert sum(counts) == 9

    def test_two_rows_equidistant_opposite_sides(self) -> None:
        # x = -1 and x = +1 are equally similar to t = 0; the row-index
        # tie-break decides the 1-NN deterministically.
        dataset = IncompleteDataset(
            [np.array([[-1.0]]), np.array([[1.0]])], [0, 1]
        )
        counts = assert_all_engines_agree(dataset, np.array([0.0]), k=1)
        assert counts == [1, 0]  # smaller row index wins the tie

    def test_mixed_ties_and_distinct_values(self) -> None:
        dataset = IncompleteDataset(
            [
                np.array([[1.0], [1.0]]),   # internal duplicate
                np.array([[1.0], [3.0]]),   # ties row 0 in one candidate
                np.array([[2.0]]),
            ],
            [0, 1, 1],
        )
        assert_all_engines_agree(dataset, np.array([0.0]), k=2)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
        n_labels=st.integers(min_value=2, max_value=3),
    )
    def test_random_grid_datasets(self, seed: int, k: int, n_labels: int) -> None:
        # Candidates snapped to a 3-value grid: ties everywhere.
        rng = np.random.default_rng(seed)
        n_rows = int(rng.integers(max(3, n_labels), 6))
        sets = [
            rng.choice([0.0, 1.0, 2.0], size=(int(rng.integers(1, 4)), 1))
            for _ in range(n_rows)
        ]
        labels = rng.integers(0, n_labels, size=n_rows)
        labels[:n_labels] = np.arange(n_labels)
        dataset = IncompleteDataset(sets, labels)
        assert_all_engines_agree(dataset, np.array([1.0]), k=k)


class TestTiesAcrossQueryPaths:
    def test_prepared_query_matches_under_ties(self) -> None:
        sets = [np.array([[1.0], [1.0]]), np.array([[1.0]]), np.array([[1.0], [2.0]])]
        dataset = IncompleteDataset(sets, [0, 1, 1])
        t = np.array([0.0])
        assert PreparedQuery(dataset, t, k=2).counts() == brute_force_counts(dataset, t, k=2)

    def test_prepared_fixing_matches_under_ties(self) -> None:
        sets = [np.array([[1.0], [1.0]]), np.array([[1.0]]), np.array([[1.0], [2.0]])]
        dataset = IncompleteDataset(sets, [0, 1, 1])
        t = np.array([0.0])
        query = PreparedQuery(dataset, t, k=2)
        for cand, variant in enumerate(query.counts_per_fixing(0)):
            fixed = dataset.restrict_row(0, cand)
            assert variant == brute_force_counts(fixed, t, k=2)

    def test_minmax_matches_counting_under_ties(self) -> None:
        sets = [np.zeros((2, 1)) for _ in range(4)]
        dataset = IncompleteDataset(sets, [0, 1, 0, 1])
        t = np.zeros(1)
        counts = q2_counts(dataset, t, k=3)
        total = sum(counts)
        for label in range(2):
            assert minmax_check(dataset, t, label, k=3) == (counts[label] == total)

    def test_topk_membership_under_ties(self) -> None:
        sets = [np.zeros((2, 1)), np.zeros((1, 1)), np.array([[0.0], [1.0]])]
        dataset = IncompleteDataset(sets, [0, 1, 1])
        t = np.zeros(1)
        fast = topk_inclusion_counts(dataset, t, k=2)
        oracle = topk_inclusion_counts_bruteforce(dataset, t, k=2)
        assert fast == oracle


class TestTieBreakDeterminism:
    def test_counts_stable_across_repeated_calls(self) -> None:
        sets = [np.ones((3, 1)) for _ in range(3)]
        dataset = IncompleteDataset(sets, [0, 1, 0])
        t = np.zeros(1)
        first = q2_counts(dataset, t, k=1)
        for _ in range(3):
            assert q2_counts(dataset, t, k=1) == first

    def test_relabelling_rows_moves_the_tie(self) -> None:
        # With everything tied, the 1-NN is always row 0 — whatever its label.
        sets = [np.ones((1, 1)), np.ones((1, 1))]
        a = IncompleteDataset(sets, [0, 1])
        b = IncompleteDataset(sets, [1, 0])
        t = np.zeros(1)
        assert q2_counts(a, t, k=1) == [1, 0]
        assert q2_counts(b, t, k=1) == [0, 1]
