"""Property-based tests (hypothesis) for the CP machinery's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.engine import sortscan_counts
from repro.core.knn import KNNClassifier
from repro.core.multiclass import sortscan_counts_multiclass
from repro.core.polynomials import poly_div_linear, poly_mul, poly_mul_linear, poly_one
from repro.core.sortscan import sortscan_counts_naive
from repro.core.sortscan_tree import sortscan_counts_tree
from repro.core.tally import predicted_label, valid_tallies


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def incomplete_datasets(draw, max_rows=6, max_candidates=3, max_labels=3):
    """Small random incomplete datasets with integer-grid features.

    Integer features deliberately produce similarity ties, exercising the
    deterministic tie-breaking paths.
    """
    n_labels = draw(st.integers(2, max_labels))
    n_rows = draw(st.integers(n_labels, max_rows))
    n_features = draw(st.integers(1, 2))
    sets = []
    for _ in range(n_rows):
        m = draw(st.integers(1, max_candidates))
        values = draw(
            st.lists(
                st.lists(st.integers(-3, 3), min_size=n_features, max_size=n_features),
                min_size=m,
                max_size=m,
            )
        )
        sets.append(np.array(values, dtype=np.float64))
    labels = [draw(st.integers(0, n_labels - 1)) for _ in range(n_rows)]
    for lbl in range(n_labels):
        labels[lbl] = lbl
    point = draw(
        st.lists(st.integers(-3, 3), min_size=n_features, max_size=n_features)
    )
    k = draw(st.integers(1, min(3, n_rows)))
    return IncompleteDataset(sets, labels), np.array(point, dtype=np.float64), k


# ---------------------------------------------------------------------------
# Counting-engine properties
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(incomplete_datasets())
def test_all_engines_agree_with_bruteforce(case):
    dataset, t, k = case
    expected = brute_force_counts(dataset, t, k=k)
    assert sortscan_counts(dataset, t, k=k) == expected
    assert sortscan_counts_naive(dataset, t, k=k) == expected
    assert sortscan_counts_tree(dataset, t, k=k) == expected
    assert sortscan_counts_multiclass(dataset, t, k=k) == expected


@settings(max_examples=60, deadline=None)
@given(incomplete_datasets())
def test_counts_sum_to_number_of_worlds(case):
    dataset, t, k = case
    assert sum(sortscan_counts(dataset, t, k=k)) == dataset.n_worlds()


@settings(max_examples=40, deadline=None)
@given(incomplete_datasets())
def test_restricting_a_row_partitions_counts(case):
    """Fixing a dirty row to each candidate partitions the world count."""
    dataset, t, k = case
    dirty = dataset.uncertain_rows()
    if not dirty:
        return
    row = dirty[0]
    full = sortscan_counts(dataset, t, k=k)
    partition = [0] * dataset.n_labels
    for cand in range(dataset.candidates(row).shape[0]):
        sub = sortscan_counts(dataset.restrict_row(row, cand), t, k=k)
        partition = [a + b for a, b in zip(partition, sub)]
    assert partition == full


@settings(max_examples=40, deadline=None)
@given(incomplete_datasets())
def test_every_sampled_world_prediction_is_counted(case):
    """A world's KNN prediction must have a positive Q2 count."""
    dataset, t, k = case
    counts = sortscan_counts(dataset, t, k=k)
    rng = np.random.default_rng(0)
    from repro.core.worlds import sample_world_choice

    for _ in range(3):
        choice = sample_world_choice(dataset, rng)
        clf = KNNClassifier(k=k).fit(dataset.world(choice), dataset.labels)
        assert counts[clf.predict_one(t)] > 0


# ---------------------------------------------------------------------------
# Polynomial properties
# ---------------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 20), min_size=2, max_size=6),
    st.integers(1, 9),
    st.integers(0, 9),
)
def test_poly_division_inverts_multiplication(coeffs, a, b):
    product = poly_mul_linear(coeffs, a, b)
    assert poly_div_linear(product, a, b) == coeffs


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=4),
    st.lists(st.integers(0, 5), min_size=1, max_size=4),
)
def test_poly_mul_is_commutative(p, q):
    degree = max(len(p), len(q))
    assert poly_mul(p, q, degree) == poly_mul(q, p, degree)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=6))
def test_product_of_factors_order_invariant(factors):
    degree = 3
    forward = poly_one(degree)
    for a, b in factors:
        forward = poly_mul_linear(forward, a, b)
    backward = poly_one(degree)
    for a, b in reversed(factors):
        backward = poly_mul_linear(backward, a, b)
    assert forward == backward


# ---------------------------------------------------------------------------
# Tally properties
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.integers(1, 5), st.integers(2, 4))
def test_predicted_label_is_an_argmax(k, n_labels):
    for tally in valid_tallies(k, n_labels):
        winner = predicted_label(tally)
        assert tally[winner] == max(tally)
        # tie-break: no smaller label has the same count
        for label in range(winner):
            assert tally[label] < tally[winner]
