"""Unit tests for ``repro.core.pruning``: certificates, scan surgery, and
bit-identity of every pruned query path against its unpruned reference.

The fuzz half (world-enumeration soundness oracle, cross-backend
on/off identity) lives in ``tests/fuzz/test_pruning.py``; these tests
pin down the building blocks one at a time.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.batch_engine import _counts_from_scan
from repro.core.dataset import IncompleteDataset
from repro.core.deltas import row_is_irrelevant
from repro.core.entropy import certain_label_from_counts
from repro.core.label_uncertainty import LabelUncertainDataset, label_uncertain_counts
from repro.core.planner import (
    ExecutionOptions,
    PlanError,
    make_query,
    plan_query,
)
from repro.core.prepared import PreparedQuery
from repro.core.pruning import (
    accumulate_prune_stats,
    apply_pins_to_scan,
    certificate_from_intervals,
    empty_prune_stats,
    interval_arrays,
    prune_mask,
    pruned_counts_from_scan,
    pruned_counts_from_sims,
    pruned_decision_from_scan,
    pruned_label_uncertain_counts,
    pruned_label_uncertain_decision,
    pruned_topk_counts_from_scan,
    pruned_weighted_decision,
    pruned_weighted_probabilities,
    restrict_scan,
)
from repro.core.scan import compute_scan_order
from repro.core.topk_prob import topk_inclusion_counts_from_scan
from repro.core.weighted import condition_weights, weighted_prediction_probabilities

SEEDS = list(range(15))


def random_problem(seed: int, n_labels: int | None = None, clustered: bool = False):
    """A random ``(dataset, t, k, pins)`` problem; ``clustered`` guarantees
    the certificate actually fires (tight candidate clusters, many rows)."""
    rng = np.random.default_rng(seed)
    n_labels = n_labels or int(rng.integers(2, 4))
    if clustered:
        n_rows = int(rng.integers(12, 20))
        centers = rng.normal(size=(n_rows, 2))
        sets = [
            center + 0.01 * rng.normal(size=(int(rng.integers(2, 4)), 2))
            for center in centers
        ]
    else:
        n_rows = int(rng.integers(4, 9))
        sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0
    labels[1] = n_labels - 1
    dataset = IncompleteDataset(sets, labels)
    t = rng.normal(size=2)
    k = int(rng.integers(1, min(4, n_rows) + 1))
    counts = dataset.candidate_counts()
    dirty = dataset.uncertain_rows()
    chosen = rng.permutation(dirty)[: int(rng.integers(0, len(dirty) + 1))]
    pins = {int(row): int(rng.integers(0, counts[int(row)])) for row in chosen}
    return dataset, t, k, pins


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_prune_mask_matches_row_is_irrelevant(seed):
    dataset, t, k, _ = random_problem(seed)
    scan = compute_scan_order(dataset, t, None)
    mins, maxs = interval_arrays(scan)
    mask = prune_mask(mins, maxs, k)
    for row in range(dataset.n_rows):
        assert mask[row] == row_is_irrelevant(mins, row, maxs[row], k)


@pytest.mark.parametrize("seed", SEEDS)
def test_certificate_verifies_and_keeps_at_least_k(seed):
    dataset, t, k, _ = random_problem(seed, clustered=True)
    scan = compute_scan_order(dataset, t, None)
    mins, maxs = interval_arrays(scan)
    cert = certificate_from_intervals(mins, maxs, k, scan.row_counts)
    cert.verify()
    assert cert.n_kept >= k
    assert cert.n_kept + cert.n_pruned == dataset.n_rows
    expected_scale = 1
    for row in cert.pruned_rows.tolist():
        expected_scale *= int(scan.row_counts[row])
    assert cert.scale == expected_scale


def test_certificate_fires_on_clustered_rows():
    dataset, t, k, _ = random_problem(3, clustered=True)
    scan = compute_scan_order(dataset, t, None)
    mins, maxs = interval_arrays(scan)
    cert = certificate_from_intervals(mins, maxs, k, scan.row_counts)
    assert cert.n_pruned > 0  # tight clusters must dominate far rows


def test_certificate_verify_detects_corruption():
    dataset, t, k, _ = random_problem(3, clustered=True)
    scan = compute_scan_order(dataset, t, None)
    mins, maxs = interval_arrays(scan)
    cert = certificate_from_intervals(mins, maxs, k, scan.row_counts)
    assert cert.n_pruned > 0
    swapped = type(cert)(
        k=cert.k,
        # Claim the pruned rows are kept and vice versa: domination breaks.
        keep_rows=cert.pruned_rows,
        pruned_rows=cert.keep_rows,
        scale=cert.scale,
        row_mins=cert.row_mins,
        row_maxs=cert.row_maxs,
    )
    with pytest.raises(AssertionError, match="certificate broken"):
        swapped.verify()


def test_certificate_rejects_bad_k():
    mins = np.zeros(3)
    maxs = np.ones(3)
    with pytest.raises(ValueError, match="out of range"):
        certificate_from_intervals(mins, maxs, 4, [1, 1, 1])


# ---------------------------------------------------------------------------
# Scan surgery
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_restrict_scan_is_an_order_preserving_subsequence(seed):
    dataset, t, k, pins = random_problem(seed)
    scan = apply_pins_to_scan(compute_scan_order(dataset, t, None), pins)
    mins, maxs = interval_arrays(scan)
    cert = certificate_from_intervals(mins, maxs, k, scan.row_counts)
    reduced = restrict_scan(scan, cert.keep_rows)
    keep = set(cert.keep_rows.tolist())
    expected_sims = [
        float(sim) for row, sim in zip(scan.rows, scan.sims) if int(row) in keep
    ]
    assert [float(sim) for sim in reduced.sims] == expected_sims
    # Monotone re-indexing: relative row order within the scan is intact.
    remap = {int(row): new for new, row in enumerate(cert.keep_rows.tolist())}
    expected_rows = [remap[int(row)] for row in scan.rows if int(row) in keep]
    assert [int(row) for row in reduced.rows] == expected_rows


def test_apply_pins_to_scan_rejects_bad_candidate():
    dataset, t, _, _ = random_problem(0)
    scan = compute_scan_order(dataset, t, None)
    with pytest.raises(IndexError, match="out of range"):
        apply_pins_to_scan(scan, {0: 99})


# ---------------------------------------------------------------------------
# Pruned query paths vs their unpruned references
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("clustered", (False, True))
def test_pruned_counts_bit_identical(seed, clustered):
    dataset, t, k, pins = random_problem(seed, clustered=clustered)
    reference = PreparedQuery(dataset, t, k=k).counts(pins or None)
    scan = compute_scan_order(dataset, t, None)
    counts, stats = pruned_counts_from_scan(scan, k, dataset.n_labels, pins or None)
    assert counts == reference
    assert stats["n_rows"] == dataset.n_rows
    assert stats["n_scanned"] + stats["n_pruned"] == stats["n_candidates"]


@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_counts_from_sims_bit_identical(seed):
    dataset, t, k, pins = random_problem(seed, clustered=True)
    reference = PreparedQuery(dataset, t, k=k).counts(pins or None)
    scan = compute_scan_order(dataset, t, None)
    # Rebuild candidate-order arrays (what the batch backend holds).
    order = np.argsort(scan.rows * 10_000 + scan.cands, kind="stable")
    counts, _ = pruned_counts_from_sims(
        scan.sims[order],
        scan.rows[order],
        scan.cands[order],
        scan.row_labels,
        scan.row_counts,
        k,
        dataset.n_labels,
        pins or None,
    )
    assert counts == reference


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("implementation", ("numpy", "python"))
def test_pruned_decision_matches_counts_verdict(seed, implementation):
    dataset, t, k, pins = random_problem(seed, clustered=True)
    reference = certain_label_from_counts(PreparedQuery(dataset, t, k=k).counts(pins or None))
    scan = compute_scan_order(dataset, t, None)
    decision, stats = pruned_decision_from_scan(
        scan, k, dataset.n_labels, pins or None, implementation=implementation
    )
    assert decision.certain_label == reference
    assert stats["n_scanned"] <= stats["n_candidates"] - stats["n_pruned"]


@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_topk_counts_bit_identical(seed):
    dataset, t, k, pins = random_problem(seed, clustered=True)
    effective = apply_pins_to_scan(compute_scan_order(dataset, t, None), pins or None)
    reference = topk_inclusion_counts_from_scan(effective, k)
    counts, _ = pruned_topk_counts_from_scan(
        compute_scan_order(dataset, t, None), k, pins or None
    )
    assert counts == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_weighted_probabilities_bit_identical(seed):
    dataset, t, k, pins = random_problem(seed, n_labels=2, clustered=True)
    rng = np.random.default_rng(seed + 99)
    weights = []
    for m in dataset.candidate_counts():
        raw = [Fraction(int(rng.integers(1, 6))) for _ in range(int(m))]
        total = sum(raw)
        weights.append([w / total for w in raw])
    conditioned = condition_weights(weights, pins) if pins else weights
    reference = weighted_prediction_probabilities(dataset, t, k=k, weights=conditioned)
    probabilities, _ = pruned_weighted_probabilities(dataset, t, conditioned, k)
    assert probabilities == reference
    decision, _ = pruned_weighted_decision(dataset, t, conditioned, k)
    certain = [label for label, p in enumerate(reference) if p == 1]
    assert decision.certain_label == (certain[0] if certain else None)


@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_label_uncertain_counts_bit_identical(seed):
    dataset, t, k, _ = random_problem(seed, clustered=True)
    rng = np.random.default_rng(seed + 7)
    flip_rows = [
        int(row) for row in rng.permutation(dataset.n_rows)[: int(rng.integers(1, 3))]
    ]
    lu = LabelUncertainDataset.from_incomplete(dataset, flip_rows=flip_rows)
    reference = label_uncertain_counts(lu, t, k=k)
    counts, _ = pruned_label_uncertain_counts(lu, t, k)
    assert counts == reference
    verdict, _ = pruned_label_uncertain_decision(lu, t, k)
    assert verdict == certain_label_from_counts(reference)


# ---------------------------------------------------------------------------
# Stats plumbing
# ---------------------------------------------------------------------------


def test_accumulate_prune_stats():
    totals = empty_prune_stats()
    accumulate_prune_stats(
        totals,
        {"n_rows": 5, "n_rows_pruned": 3, "n_candidates": 10, "n_pruned": 6,
         "n_scanned": 4, "early_terminated": True},
    )
    accumulate_prune_stats(
        totals,
        {"n_rows": 5, "n_rows_pruned": 0, "n_candidates": 10, "n_pruned": 0,
         "n_scanned": 10, "early_terminated": False},
    )
    assert totals == {
        "n_rows": 10,
        "n_rows_pruned": 3,
        "n_candidates": 20,
        "n_pruned": 6,
        "n_scanned": 14,
        "n_points": 2,
        "n_early_terminated": 1,
    }


# ---------------------------------------------------------------------------
# ExecutionOptions validation and planning guards
# ---------------------------------------------------------------------------


def test_execution_options_reject_unknown_prune_mode():
    with pytest.raises(ValueError, match="prune must be one of"):
        ExecutionOptions(prune="sometimes")


def test_execution_options_reject_unknown_scan_kernel():
    with pytest.raises(ValueError, match="scan_kernel must be one of"):
        ExecutionOptions(scan_kernel="fortran")


def test_execution_options_accept_all_modes():
    for prune in ("auto", "on", "off"):
        for scan_kernel in ("auto", "numpy", "python"):
            ExecutionOptions(prune=prune, scan_kernel=scan_kernel)


def test_plan_rejects_prune_on_with_naive_algorithm():
    dataset, t, k, _ = random_problem(0)
    query = make_query(dataset, t, kind="counts", k=k, algorithm="naive")
    with pytest.raises(PlanError, match="prune"):
        plan_query(query, options=ExecutionOptions(prune="on"))
    # auto degrades gracefully: the naive path simply runs unpruned.
    plan_query(query, options=ExecutionOptions(prune="auto"))
