"""Top-K membership counting: engine vs. oracle, invariants, derived queries."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import IncompleteDataset
from repro.core.topk_prob import (
    expected_topk_label_histogram,
    most_uncertain_rows,
    topk_inclusion_counts,
    topk_inclusion_counts_bruteforce,
    topk_inclusion_probabilities,
)
from tests.conftest import random_incomplete_dataset


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_counts_match_enumeration(self, seed: int, k: int) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6)
        t = rng.normal(size=dataset.n_features)
        fast = topk_inclusion_counts(dataset, t, k=k)
        oracle = topk_inclusion_counts_bruteforce(dataset, t, k=k)
        assert fast == oracle

    def test_bruteforce_cap(self) -> None:
        sets = [np.zeros((8, 1)) for _ in range(8)]
        dataset = IncompleteDataset(sets, [0, 1] * 4)
        with pytest.raises(ValueError, match="cap"):
            topk_inclusion_counts_bruteforce(dataset, np.array([0.0]), k=1, max_worlds=100)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_total_mass_is_k_worlds(self, seed: int, k: int) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6)
        t = rng.normal(size=dataset.n_features)
        counts = topk_inclusion_counts(dataset, t, k=k)
        assert sum(counts) == k * dataset.n_worlds()

    def test_probabilities_in_unit_interval(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=7)
        t = rng.normal(size=dataset.n_features)
        probs = topk_inclusion_probabilities(dataset, t, k=3)
        assert all(0 <= p <= 1 for p in probs)
        assert sum(probs) == 3

    def test_k_equals_n_gives_probability_one(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=5)
        t = rng.normal(size=dataset.n_features)
        probs = topk_inclusion_probabilities(dataset, t, k=5)
        assert probs == [Fraction(1)] * 5

    def test_k_exceeding_rows_rejected(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=4)
        with pytest.raises(ValueError, match="exceeds"):
            topk_inclusion_counts(dataset, np.zeros(dataset.n_features), k=5)

    def test_certain_nearest_row_always_included(self) -> None:
        # A clean row at the test point is in every world's top-1.
        dataset = IncompleteDataset(
            [np.array([[0.0]]), np.array([[5.0], [9.0]]), np.array([[7.0]])],
            labels=[0, 1, 0],
        )
        probs = topk_inclusion_probabilities(dataset, np.array([0.0]), k=1)
        assert probs[0] == 1
        assert probs[1] == 0 and probs[2] == 0

    def test_contested_second_slot_splits(self) -> None:
        # Row 1 beats row 2 in one of two worlds for the second slot.
        dataset = IncompleteDataset(
            [np.array([[0.0]]), np.array([[1.0], [9.0]]), np.array([[2.0]])],
            labels=[0, 1, 0],
        )
        probs = topk_inclusion_probabilities(dataset, np.array([0.0]), k=2)
        assert probs == [Fraction(1), Fraction(1, 2), Fraction(1, 2)]


class TestDerivedQueries:
    def test_expected_histogram_sums_to_k(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=6, n_labels=3)
        t = rng.normal(size=dataset.n_features)
        histogram = expected_topk_label_histogram(dataset, t, k=3)
        assert sum(histogram) == 3
        assert len(histogram) == 3

    def test_histogram_matches_manual_aggregation(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=5)
        t = rng.normal(size=dataset.n_features)
        probs = topk_inclusion_probabilities(dataset, t, k=2)
        histogram = expected_topk_label_histogram(dataset, t, k=2)
        manual = [Fraction(0)] * dataset.n_labels
        for row, p in enumerate(probs):
            manual[dataset.label_of(row)] += p
        assert histogram == manual

    def test_most_uncertain_rows_only_dirty_and_sorted(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=8)
        t = rng.normal(size=dataset.n_features)
        ranked = most_uncertain_rows(dataset, t, k=3)
        assert set(ranked) == set(dataset.uncertain_rows())
        probs = topk_inclusion_probabilities(dataset, t, k=3)
        distances = [abs(probs[row] - Fraction(1, 2)) for row in ranked]
        assert distances == sorted(distances)
