"""Unit tests for possible-world enumeration and sampling."""

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.worlds import (
    count_worlds,
    iter_world_choices,
    iter_worlds,
    sample_world_choice,
    sample_worlds,
)


def dataset_2x3() -> IncompleteDataset:
    return IncompleteDataset(
        [np.arange(2, dtype=float).reshape(2, 1), np.arange(3, dtype=float).reshape(3, 1)],
        labels=[0, 1],
    )


class TestEnumeration:
    def test_all_choices_enumerated(self):
        choices = list(iter_world_choices(dataset_2x3()))
        assert len(choices) == 6
        assert len(set(choices)) == 6
        assert all(len(c) == 2 for c in choices)

    def test_count_matches_enumeration(self):
        ds = dataset_2x3()
        assert count_worlds(ds) == len(list(iter_world_choices(ds)))

    def test_worlds_materialised_consistently(self):
        ds = dataset_2x3()
        for choice, features in iter_worlds(ds):
            assert features.shape == (2, 1)
            assert features[0, 0] == float(choice[0])
            assert features[1, 0] == float(choice[1])

    def test_enumeration_guard(self):
        ds = IncompleteDataset([np.zeros((10, 1))] * 10, labels=[0, 1] * 5)
        with pytest.raises(ValueError, match="max_worlds"):
            list(iter_world_choices(ds, max_worlds=1000))


class TestSampling:
    def test_sampled_choice_in_range(self):
        ds = dataset_2x3()
        rng = np.random.default_rng(0)
        for _ in range(50):
            c = sample_world_choice(ds, rng)
            assert 0 <= c[0] < 2 and 0 <= c[1] < 3

    def test_sampling_is_seed_deterministic(self):
        ds = dataset_2x3()
        a = [sample_world_choice(ds, np.random.default_rng(7)) for _ in range(1)]
        b = [sample_world_choice(ds, np.random.default_rng(7)) for _ in range(1)]
        assert a == b

    def test_sample_worlds_yields_requested_count(self):
        ds = dataset_2x3()
        worlds = list(sample_worlds(ds, 5, seed=0))
        assert len(worlds) == 5
        assert all(w.shape == (2, 1) for w in worlds)

    def test_sample_worlds_rejects_negative(self):
        with pytest.raises(ValueError):
            list(sample_worlds(dataset_2x3(), -1))

    def test_sampling_covers_all_worlds_eventually(self):
        ds = dataset_2x3()
        rng = np.random.default_rng(3)
        seen = {sample_world_choice(ds, rng) for _ in range(200)}
        assert len(seen) == 6
