"""Unit tests for the incomplete-dataset data model."""

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset


def simple_dataset() -> IncompleteDataset:
    return IncompleteDataset(
        [np.array([[0.0, 0.0]]), np.array([[1.0, 1.0], [2.0, 2.0]])],
        labels=[0, 1],
    )


class TestConstruction:
    def test_basic_shape_accessors(self):
        ds = simple_dataset()
        assert ds.n_rows == 2
        assert len(ds) == 2
        assert ds.n_features == 2
        assert ds.n_labels == 2

    def test_candidate_counts(self):
        ds = simple_dataset()
        assert ds.candidate_counts().tolist() == [1, 2]

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="at least one row"):
            IncompleteDataset([], labels=[])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            IncompleteDataset([np.zeros((1, 2))], labels=[0, 1])

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IncompleteDataset([np.zeros((1, 2))], labels=[-1])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            IncompleteDataset([np.zeros((1, 2)), np.zeros((1, 3))], labels=[0, 1])

    def test_nan_candidates_rejected(self):
        bad = np.array([[np.nan, 0.0]])
        with pytest.raises(ValueError, match="finite"):
            IncompleteDataset([bad], labels=[0])

    def test_candidates_are_read_only(self):
        ds = simple_dataset()
        with pytest.raises(ValueError):
            ds.candidates(0)[0, 0] = 99.0

    def test_input_mutation_does_not_leak(self):
        source = np.array([[1.0, 1.0]])
        ds = IncompleteDataset([source], labels=[0])
        source[0, 0] = 42.0
        assert ds.candidates(0)[0, 0] == 1.0


class TestUncertainty:
    def test_certainty_flags(self):
        ds = simple_dataset()
        assert ds.is_certain(0)
        assert not ds.is_certain(1)
        assert ds.certain_rows() == [0]
        assert ds.uncertain_rows() == [1]
        assert ds.n_uncertain == 1

    def test_world_count(self):
        ds = IncompleteDataset(
            [np.zeros((2, 1)), np.zeros((3, 1)), np.zeros((1, 1))], labels=[0, 1, 0]
        )
        assert ds.n_worlds() == 6

    def test_world_count_is_exact_bigint(self):
        ds = IncompleteDataset([np.zeros((2, 1))] * 70, labels=[0, 1] * 35)
        assert ds.n_worlds() == 2**70

    def test_from_complete(self):
        features = np.arange(6, dtype=float).reshape(3, 2)
        ds = IncompleteDataset.from_complete(features, [0, 1, 0])
        assert ds.n_worlds() == 1
        assert ds.uncertain_rows() == []


class TestDerivation:
    def test_with_row_fixed(self):
        ds = simple_dataset()
        fixed = ds.with_row_fixed(1, np.array([2.0, 2.0]))
        assert fixed.is_certain(1)
        assert fixed.candidates(1).tolist() == [[2.0, 2.0]]
        # original unchanged
        assert not ds.is_certain(1)

    def test_with_row_fixed_rejects_foreign_value(self):
        ds = simple_dataset()
        with pytest.raises(ValueError, match="not among"):
            ds.with_row_fixed(1, np.array([9.0, 9.0]))

    def test_restrict_row(self):
        ds = simple_dataset()
        restricted = ds.restrict_row(1, 0)
        assert restricted.candidates(1).tolist() == [[1.0, 1.0]]

    def test_restrict_row_out_of_range(self):
        ds = simple_dataset()
        with pytest.raises(IndexError):
            ds.restrict_row(1, 5)

    def test_world_materialisation(self):
        ds = simple_dataset()
        world = ds.world([0, 1])
        assert world.tolist() == [[0.0, 0.0], [2.0, 2.0]]

    def test_world_choice_length_checked(self):
        ds = simple_dataset()
        with pytest.raises(ValueError, match="length"):
            ds.world([0])

    def test_world_choice_range_checked(self):
        ds = simple_dataset()
        with pytest.raises(IndexError):
            ds.world([0, 7])
