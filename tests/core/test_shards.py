"""The sharded out-of-core execution layer.

Covers the tile grid (exact partition for any boundary alignment), the
determinism guarantees (results independent of ``n_jobs``, ``tile_rows``
and ``tile_candidates``, including tiles smaller and larger than the
dataset), the exact per-tile min/max merge, the zero-copy PreparedBatch
tile, the result cache, the cost model's memory threshold, and knob
validation. The cross-backend value checks live in
``tests/core/test_backend_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_engine import PreparedBatch
from repro.core.dataset import IncompleteDataset
from repro.core.planner import (
    ExecutionOptions,
    execute_query,
    get_backend,
    make_query,
)
from repro.core.shards import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    ShardedBackend,
    ShardedExecutor,
    TilePlan,
    plan_tiles,
)


def dataset_with_ragged_rows(seed: int = 0, n_rows: int = 8, n_labels: int = 2):
    rng = np.random.default_rng(seed)
    sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0
    labels[1] = n_labels - 1
    return IncompleteDataset(sets, labels)


class TestTilePlan:
    def test_partitions_both_axes_exactly(self):
        plan = plan_tiles(10, 23, tile_rows=3, tile_candidates=7)
        assert plan.row_tiles == ((0, 3), (3, 6), (6, 9), (9, 10))
        assert plan.candidate_tiles == ((0, 7), (7, 14), (14, 21), (21, 23))
        assert plan.n_tiles == plan.n_row_tiles * plan.n_candidate_tiles == 16

    def test_oversized_tiles_collapse_to_one(self):
        plan = plan_tiles(4, 9, tile_rows=1000, tile_candidates=1000)
        assert plan.row_tiles == ((0, 4),)
        assert plan.candidate_tiles == ((0, 9),)
        assert plan.tile_rows == 4 and plan.tile_candidates == 9

    def test_empty_point_axis(self):
        plan = plan_tiles(0, 9, tile_rows=4, tile_candidates=4)
        assert plan.row_tiles == ()
        assert plan.dense_bytes == 0

    def test_memory_accounting(self):
        plan = plan_tiles(100, 50, tile_rows=10, tile_candidates=25)
        assert plan.tile_buffer_bytes == 10 * 50 * 8
        assert plan.dense_bytes == 100 * 50 * 8

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_tile_edges_rejected(self, bad):
        with pytest.raises(ValueError, match="tile_rows"):
            plan_tiles(4, 9, tile_rows=bad)
        with pytest.raises(ValueError, match="tile_candidates"):
            plan_tiles(4, 9, tile_candidates=bad)


class TestDeterminism:
    """Sharded results never depend on tiling or parallelism."""

    # Boundary-adversarial configurations: tiles of one candidate (every
    # row segment split), tiles of three (misaligned with the ragged
    # segments), tiles the exact dataset size, and tiles far larger.
    TILE_CONFIGS = [(1, 1), (1, 3), (2, 3), (3, 5), (8, 10_000), (10_000, 1), (10_000, 10_000)]

    def reference(self, query):
        return execute_query(
            query, backend="sequential", options=ExecutionOptions(cache=False)
        ).values

    @pytest.mark.parametrize("tile_rows,tile_candidates", TILE_CONFIGS)
    @pytest.mark.parametrize("kind", ["counts", "certain_label"])
    def test_tile_boundaries_binary(self, tile_rows, tile_candidates, kind):
        dataset = dataset_with_ragged_rows(1)
        test_X = np.random.default_rng(1).normal(size=(5, 2))
        pins = {dataset.uncertain_rows()[0]: 0}
        query = make_query(dataset, test_X, kind=kind, k=2, pins=pins)
        values = execute_query(
            query,
            backend="sharded",
            options=ExecutionOptions(
                cache=False, tile_rows=tile_rows, tile_candidates=tile_candidates
            ),
        ).values
        assert values == self.reference(query)

    @pytest.mark.parametrize("tile_rows,tile_candidates", TILE_CONFIGS)
    def test_tile_boundaries_multiclass(self, tile_rows, tile_candidates):
        dataset = dataset_with_ragged_rows(2, n_labels=3)
        test_X = np.random.default_rng(2).normal(size=(4, 2))
        query = make_query(dataset, test_X, kind="counts", k=2)
        values = execute_query(
            query,
            backend="sharded",
            options=ExecutionOptions(
                cache=False, tile_rows=tile_rows, tile_candidates=tile_candidates
            ),
        ).values
        assert values == self.reference(query)

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_n_jobs_does_not_change_results(self, n_jobs):
        dataset = dataset_with_ragged_rows(3, n_rows=10, n_labels=3)
        test_X = np.random.default_rng(3).normal(size=(7, 2))
        query = make_query(dataset, test_X, kind="counts", k=3)
        values = execute_query(
            query,
            backend="sharded",
            options=ExecutionOptions(
                cache=False, n_jobs=n_jobs, tile_rows=3, tile_candidates=4
            ),
        ).values
        assert values == self.reference(query)

    def test_pooled_and_in_process_agree_on_every_flavor(self):
        from repro.core.label_uncertainty import LabelUncertainDataset

        dataset = dataset_with_ragged_rows(4, n_rows=9)
        lu = LabelUncertainDataset.from_incomplete(dataset, flip_rows=[0, 3])
        test_X = np.random.default_rng(4).normal(size=(6, 2))
        queries = {
            flavor: make_query(dataset, test_X, kind="counts", flavor=flavor, k=2)
            # "multiclass" on the binary dataset still exercises the full
            # counting path (no MM shortcut for kind="counts" anyway).
            for flavor in ("binary", "multiclass", "weighted", "topk")
        }
        queries["label_uncertainty"] = make_query(lu, test_X, kind="counts", k=2)
        for flavor, query in queries.items():
            runs = [
                execute_query(
                    query,
                    backend="sharded",
                    options=ExecutionOptions(
                        cache=False, n_jobs=jobs, tile_rows=2, tile_candidates=5
                    ),
                ).values
                for jobs in (1, 3)
            ]
            assert runs[0] == runs[1] == self.reference(query), flavor


class TestMinMaxMerge:
    """The streamed min/max path: exact merging, no full similarity row."""

    def test_merged_extremes_match_dense(self):
        dataset = dataset_with_ragged_rows(5)
        test_X = np.random.default_rng(5).normal(size=(4, 2))
        executor = ShardedExecutor(
            dataset, test_X, k=2, tile_rows=2, tile_candidates=3
        )
        labels = executor.minmax_labels({}, range(4))
        reference = execute_query(
            make_query(dataset, test_X, kind="certain_label", k=2),
            backend="sequential",
        ).values
        assert [labels[i] for i in range(4)] == reference

    def test_pinned_rows_override_extremes(self):
        dataset = dataset_with_ragged_rows(6)
        test_X = np.random.default_rng(6).normal(size=(3, 2))
        pins = {row: 0 for row in dataset.uncertain_rows()[:2]}
        executor = ShardedExecutor(
            dataset, test_X, k=2, tile_rows=2, tile_candidates=1
        )
        labels = executor.minmax_labels(pins, range(3))
        reference = execute_query(
            make_query(dataset, test_X, kind="certain_label", k=2, pins=pins),
            backend="sequential",
        ).values
        assert [labels[i] for i in range(3)] == reference

    def test_requires_binary_labels(self):
        dataset = dataset_with_ragged_rows(7, n_labels=3)
        executor = ShardedExecutor(dataset, np.zeros((1, 2)), k=1)
        with pytest.raises(ValueError, match="binary"):
            executor.minmax_labels({}, [0])

    def test_out_of_range_pin_rejected(self):
        dataset = dataset_with_ragged_rows(8)
        executor = ShardedExecutor(dataset, np.zeros((1, 2)), k=1)
        with pytest.raises(IndexError, match="out of range"):
            executor.minmax_labels({0: 99}, [0])

    def test_negative_pinned_row_rejected(self):
        # numpy's negative indexing must not let row=-1 slip through to an
        # uninitialised pinned-similarity slot.
        dataset = dataset_with_ragged_rows(8)
        executor = ShardedExecutor(dataset, np.zeros((1, 2)), k=1)
        with pytest.raises(IndexError, match="pinned row -1"):
            executor.minmax_labels({-1: 0}, [0])


class TestZeroCopyTile:
    def test_prepared_batch_accepts_precomputed_sims(self):
        dataset = dataset_with_ragged_rows(9)
        test_X = np.random.default_rng(9).normal(size=(3, 2))
        dense = PreparedBatch(dataset, test_X, k=2)
        tile = PreparedBatch(
            dataset, test_X, k=2, sims_matrix=dense.sims_matrix
        )
        assert tile.sims_matrix is dense.sims_matrix  # no copy
        for index in range(3):
            assert np.array_equal(tile.scan(index).rows, dense.scan(index).rows)
            assert np.array_equal(tile.scan(index).sims, dense.scan(index).sims)

    def test_prepared_batch_rejects_misshaped_sims(self):
        dataset = dataset_with_ragged_rows(10)
        test_X = np.zeros((2, 2))
        with pytest.raises(ValueError, match="sims_matrix"):
            PreparedBatch(dataset, test_X, k=1, sims_matrix=np.zeros((2, 3)))

    def test_executor_tile_batch_matches_dense_prepared(self):
        dataset = dataset_with_ragged_rows(17)
        test_X = np.random.default_rng(17).normal(size=(5, 2))
        executor = ShardedExecutor(
            dataset, test_X, k=2, tile_rows=2, tile_candidates=3
        )
        dense = PreparedBatch(dataset, test_X, k=2)
        tile = executor.tile_batch(2, 4)
        assert np.array_equal(tile.sims_matrix, dense.sims_matrix[2:4])
        for local, global_index in enumerate(range(2, 4)):
            assert tile.query(local).counts({}) == dense.query(global_index).counts({})
        with pytest.raises(IndexError, match="out of range"):
            executor.tile_batch(4, 9)


class TestBackendBehaviour:
    def test_only_needed_tiles_are_streamed(self):
        backend = ShardedBackend(tile_rows=2)
        dataset = dataset_with_ragged_rows(11)
        test_X = np.random.default_rng(11).normal(size=(6, 2))
        query = make_query(dataset, test_X, kind="counts", k=2)
        backend.execute(query, ExecutionOptions(cache=True))
        assert backend.last_stats["n_tiles_streamed"] == 3
        backend.execute(query, ExecutionOptions(cache=True))
        # Every point was cache-served: no tile streamed the second time.
        assert backend.last_stats["n_tiles_streamed"] == 0

    def test_cost_model_prefers_tiling_above_memory_budget(self):
        small_budget = ShardedBackend(memory_budget_bytes=1)
        batch = get_backend("batch")
        dataset = dataset_with_ragged_rows(12)
        test_X = np.random.default_rng(12).normal(size=(8, 2))
        query = make_query(dataset, test_X, kind="counts", k=2)
        options = ExecutionOptions()
        over_budget, reason = small_budget.estimate_cost(query, options)
        assert "memory budget" in reason
        assert over_budget < batch.estimate_cost(query, options)[0]
        # Under the (default, generous) budget the dense batch path wins.
        roomy = ShardedBackend(memory_budget_bytes=DEFAULT_MEMORY_BUDGET_BYTES)
        under_budget, _ = roomy.estimate_cost(query, options)
        assert under_budget > batch.estimate_cost(query, options)[0]

    def test_registered_default_instance(self):
        backend = get_backend("sharded")
        assert isinstance(backend, ShardedBackend)
        caps = backend.capabilities
        assert caps.batchable and caps.exact and not caps.incremental
        assert caps.flavors == frozenset(
            {"binary", "multiclass", "weighted", "topk", "label_uncertainty"}
        )

    def test_empty_test_set(self):
        dataset = dataset_with_ragged_rows(13)
        query = make_query(dataset, np.zeros((0, 2)), k=1)
        assert execute_query(query, backend="sharded").values == []

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_option_knobs_rejected(self, bad):
        backend = ShardedBackend()
        dataset = dataset_with_ragged_rows(14)
        query = make_query(dataset, np.zeros((2, 2)), k=1)
        with pytest.raises(ValueError, match="tile_rows"):
            backend.execute(query, ExecutionOptions(tile_rows=bad))
        with pytest.raises(ValueError, match="tile_candidates"):
            backend.execute(query, ExecutionOptions(tile_candidates=bad))

    @pytest.mark.parametrize("bad", [0, -2])
    def test_non_positive_constructor_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            ShardedBackend(tile_rows=bad)
        with pytest.raises(ValueError):
            ShardedBackend(tile_candidates=bad)

    def test_executor_rejects_out_of_range_indices(self):
        dataset = dataset_with_ragged_rows(15)
        executor = ShardedExecutor(dataset, np.zeros((2, 2)), k=1)
        with pytest.raises(IndexError, match="out of range"):
            executor.map_points(lambda scan, index: None, [5])

    def test_plan_is_observable(self):
        executor = ShardedExecutor(
            dataset_with_ragged_rows(16),
            np.zeros((5, 2)),
            k=1,
            tile_rows=2,
            tile_candidates=4,
        )
        assert isinstance(executor.plan, TilePlan)
        assert executor.plan.n_points == 5
        assert executor.plan.tile_rows == 2
