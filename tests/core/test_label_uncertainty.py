"""CP queries with uncertain labels: exact counter vs. oracle, MM extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import IncompleteDataset
from repro.core.label_uncertainty import (
    LabelUncertainDataset,
    label_uncertain_certain_label,
    label_uncertain_counts,
    label_uncertain_counts_bruteforce,
    label_uncertain_minmax_check,
)
from repro.core.queries import q2_counts


def random_label_uncertain(
    rng: np.random.Generator,
    n_rows: int = 5,
    n_labels: int = 2,
    max_candidates: int = 3,
    flip_prob: float = 0.4,
) -> LabelUncertainDataset:
    sets = [
        rng.normal(size=(int(rng.integers(1, max_candidates + 1)), 2))
        for _ in range(n_rows)
    ]
    label_sets = []
    for i in range(n_rows):
        if rng.random() < flip_prob:
            label_sets.append(tuple(range(n_labels)))
        else:
            label_sets.append((int(rng.integers(n_labels)),))
    # guarantee both extreme labels appear somewhere as possibilities
    label_sets[0] = (0,)
    label_sets[-1] = (n_labels - 1,)
    return LabelUncertainDataset(sets, label_sets)


class TestModel:
    def test_world_count_multiplies_feature_and_label_choices(self) -> None:
        ds = LabelUncertainDataset(
            [np.zeros((2, 1)), np.zeros((3, 1))], [(0, 1), (1,)]
        )
        assert ds.n_worlds() == 2 * 3 * 2 * 1

    def test_mismatched_lengths_rejected(self) -> None:
        with pytest.raises(ValueError, match="label sets"):
            LabelUncertainDataset([np.zeros((1, 1))], [(0,), (1,)])

    def test_empty_label_set_rejected(self) -> None:
        with pytest.raises(ValueError, match="empty"):
            LabelUncertainDataset([np.zeros((1, 1))], [()])

    def test_negative_label_rejected(self) -> None:
        with pytest.raises(ValueError, match="negative"):
            LabelUncertainDataset([np.zeros((1, 1))], [(-1,)])

    def test_duplicate_labels_deduplicated(self) -> None:
        ds = LabelUncertainDataset([np.zeros((1, 1))], [(1, 1, 0)])
        assert ds.label_sets == ((1, 0),)

    def test_has_certain_labels(self) -> None:
        certain = LabelUncertainDataset([np.zeros((1, 1))] * 2, [(0,), (1,)])
        assert certain.has_certain_labels()
        uncertain = LabelUncertainDataset([np.zeros((1, 1))] * 2, [(0, 1), (1,)])
        assert not uncertain.has_certain_labels()

    def test_from_incomplete_lift(self) -> None:
        base = IncompleteDataset([np.zeros((2, 1)), np.ones((1, 1))], [0, 1])
        lifted = LabelUncertainDataset.from_incomplete(base, flip_rows=[0])
        assert lifted.label_sets == ((0, 1), (1,))
        assert lifted.n_worlds() == base.n_worlds() * 2


class TestCertainLabelReduction:
    """Singleton label sets must reproduce the feature-only counts exactly."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_reduces_to_q2_counts(self, seed: int, k: int) -> None:
        rng = np.random.default_rng(seed)
        base_sets = [
            rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(5)
        ]
        labels = rng.integers(0, 2, size=5)
        labels[:2] = [0, 1]
        base = IncompleteDataset(base_sets, labels)
        lifted = LabelUncertainDataset(base_sets, [(int(y),) for y in labels])
        t = rng.normal(size=2)
        assert label_uncertain_counts(lifted, t, k=k) == q2_counts(base, t, k=k)


class TestExactVsBruteForce:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
        n_labels=st.integers(min_value=2, max_value=3),
    )
    def test_counts_match_enumeration(self, seed: int, k: int, n_labels: int) -> None:
        rng = np.random.default_rng(seed)
        ds = random_label_uncertain(rng, n_rows=5, n_labels=n_labels)
        t = rng.normal(size=2)
        fast = label_uncertain_counts(ds, t, k=k)
        oracle = label_uncertain_counts_bruteforce(ds, t, k=k)
        assert fast == oracle

    def test_counts_sum_to_world_count(self, rng: np.random.Generator) -> None:
        ds = random_label_uncertain(rng, n_rows=6, n_labels=3)
        t = rng.normal(size=2)
        counts = label_uncertain_counts(ds, t, k=3)
        assert sum(counts) == ds.n_worlds()

    def test_fully_flipped_row_in_top1_splits_counts(self) -> None:
        # Single certain-feature row right on top of t with both labels
        # possible: each label gets exactly half of the worlds.
        ds = LabelUncertainDataset(
            [np.array([[0.0]]), np.array([[10.0]])], [(0, 1), (0,)]
        )
        counts = label_uncertain_counts(ds, np.array([0.0]), k=1)
        assert counts == [ds.n_worlds() // 2, ds.n_worlds() // 2]

    def test_k_exceeding_rows_rejected(self) -> None:
        ds = LabelUncertainDataset([np.zeros((1, 1))], [(0,)])
        with pytest.raises(ValueError, match="exceeds"):
            label_uncertain_counts(ds, np.array([0.0]), k=2)

    def test_bruteforce_world_cap(self) -> None:
        sets = [np.zeros((4, 1)) for _ in range(12)]
        ds = LabelUncertainDataset(sets, [(0, 1)] * 12)
        with pytest.raises(ValueError, match="cap"):
            label_uncertain_counts_bruteforce(ds, np.array([0.0]), k=1)


class TestMinMaxExtension:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_mm_agrees_with_counting(self, seed: int, k: int) -> None:
        rng = np.random.default_rng(seed)
        ds = random_label_uncertain(rng, n_rows=5, n_labels=2)
        t = rng.normal(size=2)
        counts = label_uncertain_counts(ds, t, k=k)
        total = sum(counts)
        for label in range(2):
            expected = counts[label] == total
            assert label_uncertain_minmax_check(ds, t, label, k=k) == expected

    def test_mm_rejects_multiclass(self) -> None:
        ds = LabelUncertainDataset([np.zeros((1, 1))] * 3, [(0,), (1,), (2,)])
        with pytest.raises(ValueError, match="binary"):
            label_uncertain_minmax_check(ds, np.array([0.0]), 0, k=1)

    def test_mm_rejects_bad_label(self) -> None:
        ds = LabelUncertainDataset([np.zeros((1, 1))] * 2, [(0,), (1,)])
        with pytest.raises(ValueError, match="label"):
            label_uncertain_minmax_check(ds, np.array([0.0]), 7, k=1)


class TestCertainLabel:
    def test_certain_when_labels_agree_despite_flips(self) -> None:
        # All label sets are {0}: label 0 is certain whatever the features do.
        sets = [np.random.default_rng(0).normal(size=(3, 1)) for _ in range(4)]
        ds = LabelUncertainDataset(sets, [(0,)] * 4)
        assert label_uncertain_certain_label(ds, np.array([0.0]), k=3) == 0

    def test_uncertain_when_top1_label_flips(self) -> None:
        ds = LabelUncertainDataset(
            [np.array([[0.0]]), np.array([[10.0]])], [(0, 1), (0,)]
        )
        assert label_uncertain_certain_label(ds, np.array([0.0]), k=1) is None

    def test_label_uncertainty_only_decreases_certainty(self, rng: np.random.Generator) -> None:
        # Flipping a row's label set can never make an uncertain point certain.
        base_sets = [rng.normal(size=(2, 2)) for _ in range(5)]
        labels = [0, 1, 0, 1, 0]
        base = IncompleteDataset(base_sets, labels)
        t = rng.normal(size=2)
        lifted = LabelUncertainDataset.from_incomplete(base, flip_rows=[2])
        base_counts = q2_counts(base, t, k=3)
        lifted_label = label_uncertain_certain_label(lifted, t, k=3)
        if lifted_label is not None:
            # certainty under flips implies certainty without them
            assert base_counts[lifted_label] == sum(base_counts)
