"""Unit tests for the shared scan-order infrastructure."""

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.scan import candidate_similarities, compute_scan_order
from tests.conftest import random_incomplete_dataset


class TestCandidateSimilarities:
    def test_one_vector_per_row(self):
        rng = np.random.default_rng(0)
        dataset = random_incomplete_dataset(rng)
        sims = candidate_similarities(dataset, rng.normal(size=dataset.n_features))
        assert len(sims) == dataset.n_rows
        for row, row_sims in enumerate(sims):
            assert row_sims.shape == (dataset.candidates(row).shape[0],)

    def test_matches_kernel_directly(self):
        from repro.core.kernels import NegativeEuclideanKernel

        rng = np.random.default_rng(1)
        dataset = random_incomplete_dataset(rng)
        t = rng.normal(size=dataset.n_features)
        kernel = NegativeEuclideanKernel()
        sims = candidate_similarities(dataset, t, kernel)
        for row in range(dataset.n_rows):
            expected = kernel.similarities(dataset.candidates(row), t)
            assert np.array_equal(sims[row], expected)


class TestScanOrder:
    def test_covers_every_candidate_once(self):
        rng = np.random.default_rng(2)
        dataset = random_incomplete_dataset(rng)
        scan = compute_scan_order(dataset, rng.normal(size=dataset.n_features))
        pairs = list(zip(scan.rows.tolist(), scan.cands.tolist()))
        assert len(pairs) == sum(dataset.candidate_counts())
        assert len(set(pairs)) == len(pairs)

    def test_similarities_non_decreasing(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng)
            scan = compute_scan_order(dataset, rng.normal(size=dataset.n_features))
            assert np.all(np.diff(scan.sims) >= 0)

    def test_tie_break_smaller_pair_is_more_similar(self):
        # Three candidates at the exact same distance from t: the scan must
        # place larger (row, cand) pairs first (less similar).
        dataset = IncompleteDataset(
            [np.array([[1.0], [-1.0]]), np.array([[1.0]])], labels=[0, 1]
        )
        scan = compute_scan_order(dataset, np.array([0.0]))
        pairs = list(zip(scan.rows.tolist(), scan.cands.tolist()))
        assert pairs == [(1, 0), (0, 1), (0, 0)]

    def test_metadata_matches_dataset(self):
        rng = np.random.default_rng(4)
        dataset = random_incomplete_dataset(rng)
        scan = compute_scan_order(dataset, rng.normal(size=dataset.n_features))
        assert np.array_equal(scan.row_labels, dataset.labels)
        assert np.array_equal(scan.row_counts, dataset.candidate_counts())
        assert scan.n_rows == dataset.n_rows
        assert scan.n_candidates == int(dataset.candidate_counts().sum())


class TestTiesDoNotBreakEngines:
    def test_heavily_tied_instances_still_exact(self):
        """Integer-grid candidates produce many exact similarity ties; all
        engines must still agree with brute force (the deterministic total
        order resolves every tie consistently)."""
        from repro.core.bruteforce import brute_force_counts
        from repro.core.engine import sortscan_counts
        from repro.core.sortscan_tree import sortscan_counts_tree

        rng = np.random.default_rng(5)
        for _ in range(15):
            n = int(rng.integers(3, 6))
            sets = [
                rng.integers(-1, 2, size=(int(rng.integers(1, 4)), 1)).astype(float)
                for _ in range(n)
            ]
            labels = rng.integers(0, 2, size=n)
            labels[:2] = [0, 1]
            dataset = IncompleteDataset(sets, labels)
            t = np.array([0.0])
            for k in (1, 2):
                expected = brute_force_counts(dataset, t, k=k)
                assert sortscan_counts(dataset, t, k=k) == expected
                assert sortscan_counts_tree(dataset, t, k=k) == expected

    def test_duplicate_candidates_within_a_row(self):
        """Identical candidate values are legal (they weight the world count)."""
        from repro.core.bruteforce import brute_force_counts
        from repro.core.engine import sortscan_counts

        dataset = IncompleteDataset(
            [np.array([[1.0], [1.0], [3.0]]), np.array([[2.0]])], labels=[0, 1]
        )
        t = np.array([0.0])
        expected = brute_force_counts(dataset, t, k=1)
        assert sortscan_counts(dataset, t, k=1) == expected
        assert sum(expected) == 3
