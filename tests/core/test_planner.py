"""The unified planner: registry, planning, and the cross-backend matrix.

The load-bearing guarantee is the equivalence matrix: for random small
incomplete datasets, every task flavor × every capable backend must return
**bit-identical** values — including with pins applied mid-cleaning — and
the counting flavors must match the brute-force world enumeration.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.core.planner import (
    Backend,
    BackendCapabilities,
    ExecutionOptions,
    IncrementalBackend,
    PlanError,
    backend_names,
    capable_backends,
    execute_query,
    get_backend,
    make_query,
    plan_query,
    register_backend,
)


def random_dataset(seed: int, n_rows: int = 6, n_labels: int = 2) -> IncompleteDataset:
    """A small random incomplete dataset with a mix of clean and dirty rows."""
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(n_rows):
        m = int(rng.integers(1, 4))
        sets.append(rng.normal(size=(m, 2)))
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0  # every label space size is as declared
    labels[1] = n_labels - 1
    return IncompleteDataset(sets, labels)


def some_pins(dataset: IncompleteDataset, seed: int, n_pins: int = 2) -> dict[int, int]:
    """Pins on the first dirty rows, as a mid-cleaning session would apply."""
    rng = np.random.default_rng(seed + 1000)
    counts = dataset.candidate_counts()
    pins = {}
    for row in dataset.uncertain_rows()[:n_pins]:
        pins[row] = int(rng.integers(0, counts[row]))
    return pins


def capable_names(query) -> list[str]:
    return [backend.name for backend in capable_backends(query)]


class TestRegistry:
    def test_default_backends_registered(self):
        assert backend_names() == ["sequential", "batch", "incremental", "sharded"]

    def test_get_backend_unknown_raises(self):
        with pytest.raises(PlanError, match="unknown backend"):
            get_backend("gpu")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("batch"))

    def test_declared_capabilities(self):
        assert get_backend("incremental").capabilities.incremental
        assert get_backend("batch").capabilities.batchable
        assert get_backend("sharded").capabilities.batchable
        assert not get_backend("sequential").capabilities.batchable
        for name in backend_names():
            assert get_backend(name).capabilities.exact

    def test_custom_backend_registers_and_plans(self):
        class NullBackend(Backend):
            name = "null-test"
            capabilities = BackendCapabilities(flavors=frozenset({"binary"}))

            def estimate_cost(self, query, options):
                return float("inf"), "never picked automatically"

            def execute(self, query, options=None):
                return [None] * query.n_points

        try:
            register_backend(NullBackend())
            dataset = random_dataset(0)
            query = make_query(dataset, np.zeros((2, 2)), k=1)
            assert "null-test" in capable_names(query)
            # auto never picks the infinite-cost backend ...
            assert plan_query(query).backend != "null-test"
            # ... but an explicit request runs it.
            assert execute_query(query, backend="null-test").values == [None, None]
        finally:
            from repro.core import planner

            planner._REGISTRY.pop("null-test", None)


class TestRegistryErrorPaths:
    """The registry's failure modes: precise errors, no partial state."""

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(PlanError) as excinfo:
            get_backend("gpu")
        message = str(excinfo.value)
        for name in ("sequential", "batch", "incremental", "sharded"):
            assert name in message

    def test_unknown_backend_raises_through_plan_and_execute(self):
        dataset = random_dataset(61)
        query = make_query(dataset, np.zeros((2, 2)), k=1)
        with pytest.raises(PlanError, match="unknown backend"):
            plan_query(query, backend="gpu")
        with pytest.raises(PlanError, match="unknown backend"):
            execute_query(query, backend="gpu")

    def test_capability_mismatch_flavor(self):
        dataset = random_dataset(62)
        query = make_query(dataset, np.zeros((2, 2)), k=1, flavor="weighted")
        with pytest.raises(PlanError, match="cannot serve"):
            plan_query(query, backend="incremental")

    @pytest.mark.parametrize("backend", ["batch", "incremental", "sharded"])
    def test_capability_mismatch_algorithm(self, backend):
        # Only the sequential backend honours the published algorithm
        # overrides; every other explicit request must fail loudly.
        dataset = random_dataset(63)
        query = make_query(dataset, np.zeros((2, 2)), k=1, algorithm="naive")
        with pytest.raises(PlanError, match="cannot serve"):
            plan_query(query, backend=backend)

    def test_mismatch_error_names_capabilities(self):
        dataset = random_dataset(64)
        query = make_query(dataset, np.zeros((2, 2)), k=1, flavor="weighted")
        with pytest.raises(PlanError, match="capabilities"):
            execute_query(query, backend="incremental")

    def test_double_registration_rejected_and_registry_intact(self):
        before = backend_names()
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("sharded"))
        assert backend_names() == before

    def test_replace_reregisters_under_same_name(self):
        original = get_backend("sharded")
        try:
            from repro.core.shards import ShardedBackend

            replacement = ShardedBackend(tile_rows=2)
            assert register_backend(replacement, replace=True) is replacement
            assert get_backend("sharded") is replacement
        finally:
            register_backend(original, replace=True)
        assert get_backend("sharded") is original


class TestPlanning:
    def test_single_point_goes_sequential(self):
        dataset = random_dataset(1)
        plan = plan_query(make_query(dataset, np.zeros((1, 2)), k=2))
        assert plan.backend == "sequential"

    def test_batch_goes_parallel(self):
        dataset = random_dataset(2)
        plan = plan_query(make_query(dataset, np.zeros((8, 2)), k=2))
        assert plan.backend == "batch"
        assert dict(plan.considered)["sequential"] > plan.cost

    def test_warm_incremental_state_wins(self):
        backend = IncrementalBackend()
        dataset = random_dataset(3)
        test_X = np.zeros((4, 2))
        query = make_query(dataset, test_X, k=2)
        cold, _ = backend.estimate_cost(query, ExecutionOptions())
        backend.execute(query)
        warm, reason = backend.estimate_cost(query, ExecutionOptions())
        assert warm < cold
        assert "delta" in reason

    def test_explicit_incapable_backend_raises(self):
        dataset = random_dataset(4)
        query = make_query(dataset, np.zeros((2, 2)), k=1, flavor="weighted")
        with pytest.raises(PlanError, match="cannot serve"):
            plan_query(query, backend="incremental")

    def test_algorithm_override_forces_sequential(self):
        dataset = random_dataset(5)
        query = make_query(dataset, np.zeros((4, 2)), k=2, algorithm="tree")
        assert capable_names(query) == ["sequential"]
        assert plan_query(query).backend == "sequential"

    def test_empty_test_set_executes_to_nothing(self):
        dataset = random_dataset(6)
        query = make_query(dataset, np.zeros((0, 2)), k=2)
        assert execute_query(query).values == []


class TestMakeQuery:
    def test_flavor_inference(self):
        binary = random_dataset(7, n_labels=2)
        multi = random_dataset(7, n_labels=3)
        lu = LabelUncertainDataset.from_incomplete(binary, flip_rows=[0])
        assert make_query(binary, np.zeros((1, 2)), k=1).flavor == "binary"
        assert make_query(multi, np.zeros((1, 2)), k=1).flavor == "multiclass"
        assert make_query(lu, np.zeros((1, 2)), k=1).flavor == "label_uncertainty"
        weights = [[Fraction(1, m)] * m for m in binary.candidate_counts()]
        assert (
            make_query(binary, np.zeros((1, 2)), k=1, weights=weights).flavor
            == "weighted"
        )

    def test_invalid_combinations_rejected(self):
        dataset = random_dataset(8, n_labels=3)
        with pytest.raises(ValueError, match="binary"):
            make_query(dataset, np.zeros((1, 2)), k=1, flavor="binary")
        with pytest.raises(ValueError, match="topk"):
            make_query(dataset, np.zeros((1, 2)), k=1, flavor="topk", kind="certain_label")
        with pytest.raises(ValueError, match="label"):
            make_query(dataset, np.zeros((1, 2)), k=1, kind="check")
        with pytest.raises(IndexError):
            make_query(dataset, np.zeros((1, 2)), k=1, pins={0: 99})
        with pytest.raises(ValueError, match="exceeds"):
            make_query(dataset, np.zeros((1, 2)), k=99)


class TestEquivalenceMatrix:
    """Every capable backend must return bit-identical values."""

    SEEDS = [11, 12, 13]

    def assert_backends_agree(self, query, options=None, oracle=None):
        names = capable_names(query)
        assert names, f"no backend serves {query!r}"
        reference = None
        for name in names:
            values = execute_query(query, backend=name, options=options).values
            if reference is None:
                reference = (name, values)
            else:
                assert values == reference[1], (
                    f"{name} diverged from {reference[0]} on {query!r}"
                )
        if oracle is not None:
            assert reference[1] == oracle, f"backends diverge from oracle on {query!r}"
        return reference[1]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_labels", [2, 3])
    @pytest.mark.parametrize("kind", ["counts", "certain_label"])
    def test_counting_flavors(self, seed, n_labels, kind):
        dataset = random_dataset(seed, n_labels=n_labels)
        rng = np.random.default_rng(seed + 500)
        test_X = rng.normal(size=(3, 2))
        for pins in ({}, some_pins(dataset, seed)):
            query = make_query(dataset, test_X, kind=kind, k=2, pins=pins)
            oracle = None
            if kind == "counts":
                restricted = dataset
                for row, cand in pins.items():
                    restricted = restricted.restrict_row(row, cand)
                oracle = [brute_force_counts(restricted, t, k=2) for t in test_X]
            self.assert_backends_agree(query, oracle=oracle)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_check_kind(self, seed):
        dataset = random_dataset(seed, n_labels=2)
        test_X = np.random.default_rng(seed).normal(size=(3, 2))
        query = make_query(dataset, test_X, kind="check", label=1, k=2)
        values = self.assert_backends_agree(query)
        assert all(isinstance(v, bool) for v in values)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_weighted_flavor(self, seed):
        dataset = random_dataset(seed, n_labels=2)
        rng = np.random.default_rng(seed + 600)
        test_X = rng.normal(size=(3, 2))
        # A non-uniform exact prior per dirty row.
        weights = []
        for m in dataset.candidate_counts():
            m = int(m)
            raw = [Fraction(int(rng.integers(1, 5)), 1) for _ in range(m)]
            total = sum(raw)
            weights.append([w / total for w in raw])
        for pins in ({}, some_pins(dataset, seed)):
            query = make_query(
                dataset, test_X, kind="counts", flavor="weighted", k=2,
                weights=weights, pins=pins,
            )
            values = self.assert_backends_agree(query)
            assert all(sum(probs) == 1 for probs in values)
        # Uniform prior must reproduce the integer counts exactly.
        uniform = make_query(dataset, test_X, kind="counts", flavor="weighted", k=2)
        counts = make_query(dataset, test_X, kind="counts", k=2)
        n_worlds = dataset.n_worlds()
        probs = self.assert_backends_agree(uniform)
        exact = self.assert_backends_agree(counts)
        assert probs == [
            [Fraction(c, n_worlds) for c in point] for point in exact
        ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_topk_flavor(self, seed):
        dataset = random_dataset(seed, n_labels=2)
        test_X = np.random.default_rng(seed + 700).normal(size=(3, 2))
        for pins in ({}, some_pins(dataset, seed)):
            query = make_query(
                dataset, test_X, kind="counts", flavor="topk", k=2, pins=pins
            )
            values = self.assert_backends_agree(query)
            restricted = dataset
            for row, cand in pins.items():
                restricted = restricted.restrict_row(row, cand)
            for counts in values:
                assert sum(counts) == 2 * restricted.n_worlds()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_label_uncertainty_flavor(self, seed):
        dataset = random_dataset(seed, n_labels=2, n_rows=5)
        lu = LabelUncertainDataset.from_incomplete(dataset, flip_rows=[0, 2])
        test_X = np.random.default_rng(seed + 800).normal(size=(3, 2))
        for pins in ({}, some_pins(dataset, seed, n_pins=1)):
            query = make_query(lu, test_X, kind="counts", k=2, pins=pins)
            values = self.assert_backends_agree(query)
            restricted = lu
            for row, cand in pins.items():
                restricted = restricted.restrict_row(row, cand)
            for counts in values:
                assert sum(counts) == restricted.n_worlds()

    def test_incremental_pins_grow_across_calls(self):
        """The session workload: one state, pins applied one at a time."""
        dataset = random_dataset(21, n_labels=3)
        test_X = np.random.default_rng(21).normal(size=(4, 2))
        backend = IncrementalBackend()
        pins: dict[int, int] = {}
        for row in dataset.uncertain_rows():
            pins[row] = 0
            query = make_query(dataset, test_X, kind="counts", k=2, pins=pins)
            incremental = backend.execute(query)
            sequential = execute_query(query, backend="sequential").values
            assert incremental == sequential
        assert backend.n_rebuilds == 1
        assert backend.n_reuses == len(pins) - 1


class TestCachingAndOptions:
    def test_batch_cache_serves_repeats(self):
        from repro.core.planner import BatchParallelBackend

        backend = BatchParallelBackend()
        dataset = random_dataset(31)
        test_X = np.random.default_rng(31).normal(size=(4, 2))
        query = make_query(dataset, test_X, kind="counts", k=2)
        first = backend.execute(query, ExecutionOptions(cache=True))
        hits_before = backend.cache.hits
        second = backend.execute(query, ExecutionOptions(cache=True))
        assert second == first
        assert backend.cache.hits >= hits_before + len(test_X)

    def test_prepared_handoff_is_used(self):
        from repro.core.batch_engine import PreparedBatch
        from repro.core.planner import BatchParallelBackend

        backend = BatchParallelBackend()
        dataset = random_dataset(32)
        test_X = np.random.default_rng(32).normal(size=(3, 2))
        prepared = PreparedBatch(dataset, test_X, k=2)
        options = ExecutionOptions(cache=False, prepared=prepared)
        query = make_query(dataset, test_X, kind="counts", k=2)
        values = backend.execute(query, options)
        assert values == execute_query(query, backend="sequential").values
        assert not backend._prepared  # the handed-in batch was used, not rebuilt

    def test_n_jobs_does_not_change_results(self):
        dataset = random_dataset(33)
        test_X = np.random.default_rng(33).normal(size=(6, 2))
        query = make_query(dataset, test_X, kind="counts", k=2)
        single = execute_query(query, backend="batch", options=ExecutionOptions(n_jobs=1)).values
        multi = execute_query(query, backend="batch", options=ExecutionOptions(n_jobs=2)).values
        assert single == multi


class TestExecutionOptionsValidation:
    """Library callers get the same knob validation the CLI flags enforce."""

    def test_defaults_and_sentinels_accepted(self):
        ExecutionOptions()
        ExecutionOptions(n_jobs=None)
        ExecutionOptions(n_jobs=-1)  # the all-CPUs sentinel
        ExecutionOptions(n_jobs=4, tile_rows=8, tile_candidates=128)
        ExecutionOptions(n_jobs=np.int64(2))  # numpy integers are integers

    def test_zero_n_jobs_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            ExecutionOptions(n_jobs=0)

    def test_other_negative_n_jobs_rejected(self):
        # -1 is the conventional sentinel; -2 etc. used to silently mean
        # "all CPUs", which hid typos — exactly what the CLI flag rejects.
        with pytest.raises(ValueError, match="-1"):
            ExecutionOptions(n_jobs=-2)

    def test_non_integer_n_jobs_rejected(self):
        with pytest.raises(TypeError, match="n_jobs"):
            ExecutionOptions(n_jobs=2.5)
        with pytest.raises(TypeError, match="n_jobs"):
            ExecutionOptions(n_jobs=True)

    @pytest.mark.parametrize("knob", ["tile_rows", "tile_candidates"])
    def test_tile_bounds_must_be_positive(self, knob):
        with pytest.raises(ValueError, match=knob):
            ExecutionOptions(**{knob: 0})
        with pytest.raises(ValueError, match=knob):
            ExecutionOptions(**{knob: -3})
        with pytest.raises(TypeError, match=knob):
            ExecutionOptions(**{knob: 2.0})


class TestFrontDoorGuards:
    """The single-point front door must not silently mis-handle matrices."""

    def test_q2_counts_rejects_matrices(self):
        from repro.core.queries import q2_counts

        dataset = random_dataset(51)
        with pytest.raises(ValueError):
            q2_counts(dataset, np.zeros((2, 2)), k=1)

    def test_unknown_backend_rejected_even_on_minmax_shortcut(self):
        from repro.core.queries import certain_label, q1

        dataset = random_dataset(52, n_labels=2)  # binary: MM shortcut fires
        t = np.zeros(2)
        with pytest.raises(PlanError, match="unknown backend"):
            q1(dataset, t, 0, k=1, backend="gpu")
        with pytest.raises(PlanError, match="unknown backend"):
            certain_label(dataset, t, k=1, backend="gpu")


class TestSessionBackends:
    """A cleaning session must report identically on every backend."""

    def test_session_reports_identical_across_backends(self):
        from repro.cleaning.cp_clean import run_cp_clean
        from repro.cleaning.oracle import GroundTruthOracle
        from repro.data.task import build_cleaning_task

        task = build_cleaning_task("supreme", n_train=30, n_val=6, n_test=10, seed=3)
        oracle = GroundTruthOracle(task.gt_choice)
        reports = {
            name: run_cp_clean(
                task.incomplete, task.val_X, oracle, k=task.k, backend=name
            )
            for name in ("auto", "sequential", "batch", "incremental", "sharded")
        }
        reference = reports["auto"]
        for name, report in reports.items():
            assert report.final_fixed == reference.final_fixed, name
            assert report.cp_fraction_final == reference.cp_fraction_final, name
            assert [s.row for s in report.steps] == [s.row for s in reference.steps], name

    def test_session_rejects_unknown_backend(self):
        from repro.cleaning.sequential import CleaningSession

        dataset = random_dataset(41)
        with pytest.raises(PlanError, match="unknown backend"):
            CleaningSession(dataset, np.zeros((2, 2)), k=1, backend="gpu")
