"""Unit tests for the deterministic KNN substrate."""

import numpy as np
import pytest

from repro.core.knn import KNNClassifier, majority_label, top_k_rows


class TestMajorityLabel:
    def test_clear_majority(self):
        assert majority_label([1, 1, 0]) == 1

    def test_tie_breaks_to_smallest_label(self):
        assert majority_label([0, 1]) == 0
        assert majority_label([2, 1]) == 1

    def test_single_vote(self):
        assert majority_label([3]) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_label([])


class TestTopKRows:
    def test_orders_by_similarity_descending(self):
        sims = np.array([0.1, 0.9, 0.5])
        assert top_k_rows(sims, 2).tolist() == [1, 2]

    def test_tie_prefers_smaller_row_index(self):
        sims = np.array([0.5, 0.5, 0.5])
        assert top_k_rows(sims, 2).tolist() == [0, 1]

    def test_k_equals_n(self):
        sims = np.array([0.3, 0.1, 0.2])
        assert top_k_rows(sims, 3).tolist() == [0, 2, 1]

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            top_k_rows(np.array([1.0]), 2)


class TestKNNClassifier:
    def test_1nn_predicts_nearest(self):
        clf = KNNClassifier(k=1).fit(np.array([[0.0], [10.0]]), [0, 1])
        assert clf.predict_one(np.array([1.0])) == 0
        assert clf.predict_one(np.array([9.0])) == 1

    def test_3nn_majority(self):
        X = np.array([[0.0], [0.5], [1.0], [10.0]])
        clf = KNNClassifier(k=3).fit(X, [0, 0, 1, 1])
        assert clf.predict_one(np.array([0.2])) == 0

    def test_predict_matrix(self):
        X = np.array([[0.0], [10.0]])
        clf = KNNClassifier(k=1).fit(X, [0, 1])
        preds = clf.predict(np.array([[1.0], [9.0]]))
        assert preds.tolist() == [0, 1]

    def test_accuracy(self):
        X = np.array([[0.0], [10.0]])
        clf = KNNClassifier(k=1).fit(X, [0, 1])
        assert clf.accuracy(np.array([[1.0], [9.0]]), [0, 0]) == 0.5

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KNNClassifier(k=1).predict_one(np.zeros(1))

    def test_k_larger_than_train_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            KNNClassifier(k=5).fit(np.zeros((3, 1)), [0, 1, 0])

    def test_neighbors_ordering(self):
        X = np.array([[0.0], [1.0], [2.0]])
        clf = KNNClassifier(k=2).fit(X, [0, 1, 0])
        assert clf.neighbors_one(np.array([0.1])).tolist() == [0, 1]

    def test_deterministic_tie_break_between_equidistant_rows(self):
        X = np.array([[1.0], [-1.0], [5.0]])
        clf = KNNClassifier(k=1).fit(X, [0, 1, 0])
        # rows 0 and 1 are equidistant from 0; smaller index wins
        assert clf.predict_one(np.array([0.0])) == 0

    def test_label_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            KNNClassifier(k=1).fit(np.zeros((2, 1)), [0, -2])

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_rbf_kernel_same_predictions_as_euclidean(self):
        rng = np.random.default_rng(5)
        X, y = rng.normal(size=(20, 3)), rng.integers(0, 2, size=20)
        T = rng.normal(size=(10, 3))
        a = KNNClassifier(k=3, kernel="euclidean").fit(X, y).predict(T)
        b = KNNClassifier(k=3, kernel="rbf").fit(X, y).predict(T)
        assert np.array_equal(a, b)
