"""Unit tests for the polynomial segment tree (SS-DC support structure)."""

import numpy as np
import pytest

from repro.core.polynomials import poly_mul, poly_one
from repro.core.segment_tree import PolySegmentTree


def brute_product(leaves: list[list[int]], degree: int) -> list[int]:
    result = poly_one(degree)
    for leaf in leaves:
        result = poly_mul(result, leaf, degree)
    return result


class TestPolySegmentTree:
    def test_empty_tree_root_is_one(self):
        tree = PolySegmentTree(0, 3)
        assert tree.root() == [1, 0, 0, 0]

    def test_single_leaf(self):
        tree = PolySegmentTree(1, 2)
        tree.set_linear_leaf(0, 2, 5)
        assert tree.root() == [2, 5, 0]

    def test_root_matches_brute_product(self):
        rng = np.random.default_rng(0)
        for n_leaves in (1, 2, 3, 5, 8, 13):
            degree = 3
            tree = PolySegmentTree(n_leaves, degree)
            leaves = []
            for i in range(n_leaves):
                a, b = int(rng.integers(0, 5)), int(rng.integers(0, 5))
                tree.set_linear_leaf(i, a, b)
                coeffs = [a, b] + [0] * (degree - 1)
                leaves.append(coeffs)
            assert tree.root() == brute_product(leaves, degree)

    def test_incremental_updates(self):
        rng = np.random.default_rng(1)
        degree, n_leaves = 2, 6
        tree = PolySegmentTree(n_leaves, degree)
        leaves = [[1] + [0] * degree for _ in range(n_leaves)]
        for i in range(n_leaves):
            tree.set_linear_leaf(i, 1, 1)
            leaves[i] = [1, 1, 0]
        for _ in range(30):
            pos = int(rng.integers(0, n_leaves))
            a, b = int(rng.integers(0, 4)), int(rng.integers(0, 4))
            tree.set_linear_leaf(pos, a, b)
            leaves[pos] = [a, b, 0]
            assert tree.root() == brute_product(leaves, degree)

    def test_root_with_leaf_is_non_destructive(self):
        tree = PolySegmentTree(4, 2)
        for i in range(4):
            tree.set_linear_leaf(i, 1, 1)
        before = tree.root()
        z_poly = [0, 1, 0]
        replaced = tree.root_with_leaf(2, z_poly)
        assert tree.root() == before
        # (1+z)^3 * z = z + 3z^2 truncated at 2
        assert replaced == [0, 1, 3]

    def test_leaf_readback(self):
        tree = PolySegmentTree(2, 1)
        tree.set_leaf(1, [7, 9])
        assert tree.leaf(1) == [7, 9]

    def test_out_of_range_leaf(self):
        tree = PolySegmentTree(2, 1)
        with pytest.raises(IndexError):
            tree.set_linear_leaf(2, 1, 1)
        with pytest.raises(IndexError):
            tree.leaf(5)

    def test_wrong_coefficient_length(self):
        tree = PolySegmentTree(2, 2)
        with pytest.raises(ValueError):
            tree.set_leaf(0, [1, 2])
