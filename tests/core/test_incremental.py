"""Incremental CP-state maintenance vs. fresh recomputation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import IncompleteDataset
from repro.core.incremental import IncrementalCPState
from repro.core.prepared import PreparedQuery
from tests.conftest import random_incomplete_dataset


def make_state(
    rng: np.random.Generator, n_points: int = 4, k: int = 3, n_labels: int = 2
) -> tuple[IncrementalCPState, IncompleteDataset, np.ndarray]:
    dataset = random_incomplete_dataset(rng, n_rows=8, n_labels=n_labels)
    points = rng.normal(size=(n_points, dataset.n_features))
    return IncrementalCPState(dataset, points, k=k), dataset, points


class TestConstruction:
    def test_initial_counts_match_prepared_query(self, rng: np.random.Generator) -> None:
        state, dataset, points = make_state(rng)
        for i in range(points.shape[0]):
            expected = PreparedQuery(dataset, points[i], k=3).counts()
            assert state.counts(i) == expected

    def test_single_point_vector_accepted(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng)
        state = IncrementalCPState(dataset, np.zeros(dataset.n_features), k=1)
        assert state.n_points == 1

    def test_shape_mismatch_rejected(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_features=2)
        with pytest.raises(ValueError, match="shape"):
            IncrementalCPState(dataset, np.zeros((3, 5)), k=1)

    def test_counts_returns_copy(self, rng: np.random.Generator) -> None:
        state, _, _ = make_state(rng)
        state.counts(0).append(999)
        assert len(state.counts(0)) == state.dataset.n_labels


class TestPinning:
    def test_pin_matches_fresh_scan_after_every_step(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng, n_points=5)
        for row in dataset.uncertain_rows():
            cand = int(rng.integers(dataset.candidate_counts()[row]))
            state.pin(row, cand)
            state.verify()  # raises on divergence

    def test_double_pin_rejected(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng)
        row = dataset.uncertain_rows()[0]
        state.pin(row, 0)
        with pytest.raises(ValueError, match="already pinned"):
            state.pin(row, 0)

    def test_out_of_range_candidate_rejected(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng)
        row = dataset.uncertain_rows()[0]
        with pytest.raises(IndexError, match="out of range"):
            state.pin(row, 99)

    def test_pin_many_applies_in_order(self, rng: np.random.Generator) -> None:
        state, dataset, points = make_state(rng)
        pins = [(row, 0) for row in dataset.uncertain_rows()]
        state.pin_many(pins)
        assert state.fixed == dict(pins)
        state.verify()

    def test_pinning_certain_row_is_noop_for_counts(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng)
        certain = dataset.certain_rows()
        if not certain:
            pytest.skip("no certain rows in this draw")
        before = [state.counts(i) for i in range(state.n_points)]
        state.pin(certain[0], 0)
        assert [state.counts(i) for i in range(state.n_points)] == before

    def test_all_rows_pinned_gives_single_world(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng, n_points=3, k=1)
        for row in range(dataset.n_rows):
            state.pin(row, 0)
        for i in range(3):
            counts = state.counts(i)
            assert sum(counts) == 1
            assert state.certain_label(i) is not None
            assert state.entropy(i) == 0.0

    def test_fixed_property_is_a_copy(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng)
        row = dataset.uncertain_rows()[0]
        state.fixed[row] = 0  # mutating the copy must not pin anything
        state.pin(row, 0)  # would raise "already pinned" if it leaked


class TestDerivedQuantities:
    def test_mean_entropy_zero_when_all_certain(self, rng: np.random.Generator) -> None:
        state, dataset, _ = make_state(rng, n_points=2, k=1)
        for row in range(dataset.n_rows):
            state.pin(row, 0)
        assert state.mean_entropy() == 0.0
        assert state.n_uncertain_points() == 0

    def test_certain_labels_consistent_with_counts(self, rng: np.random.Generator) -> None:
        state, _, _ = make_state(rng, n_points=6)
        for i, label in enumerate(state.certain_labels()):
            counts = state.counts(i)
            if label is None:
                assert sum(1 for c in counts if c > 0) > 1
            else:
                assert counts[label] == sum(counts)

    def test_entropy_never_increases_in_expectation_to_zero(self, rng: np.random.Generator) -> None:
        # Entropy for a specific pin sequence can fluctuate, but the final
        # fully-pinned state is deterministic, hence zero entropy.
        state, dataset, _ = make_state(rng, n_points=3)
        for row in dataset.uncertain_rows():
            state.pin(row, 0)
        assert state.mean_entropy() == pytest.approx(0.0)


class TestPruningRule:
    def test_far_away_dirty_row_is_pruned(self) -> None:
        # Nine tight rows around the test point, one dirty row far away:
        # pinning the far row must be pruned for k=3.
        near = [np.array([[0.1 * i, 0.0]]) for i in range(9)]
        far = np.array([[50.0, 50.0], [60.0, 60.0], [70.0, 70.0]])
        dataset = IncompleteDataset(near + [far], labels=[0, 1] * 5)
        state = IncrementalCPState(dataset, np.zeros(2), k=3)
        before = state.counts(0)
        state.pin(9, 1)
        assert state.n_pruned == 1
        assert state.n_recomputed == 0
        assert state.counts(0) == [c // 3 for c in before]
        state.verify()

    def test_nearby_dirty_row_is_recomputed(self) -> None:
        near_dirty = np.array([[0.0, 0.0], [0.2, 0.0]])
        others = [np.array([[1.0 * (i + 1), 0.0]]) for i in range(5)]
        dataset = IncompleteDataset([near_dirty] + others, labels=[0, 1, 0, 1, 0, 1])
        state = IncrementalCPState(dataset, np.zeros(2), k=3)
        state.pin(0, 0)
        assert state.n_recomputed == 1
        state.verify()


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=3),
        n_labels=st.integers(min_value=2, max_value=3),
    )
    def test_random_pin_sequences_stay_exact(self, seed: int, k: int, n_labels: int) -> None:
        rng = np.random.default_rng(seed)
        dataset = random_incomplete_dataset(rng, n_rows=6, n_labels=n_labels)
        points = rng.normal(size=(3, dataset.n_features))
        state = IncrementalCPState(dataset, points, k=k)
        rows = dataset.uncertain_rows()
        rng.shuffle(rows)
        for row in rows:
            cand = int(rng.integers(dataset.candidate_counts()[row]))
            state.pin(row, cand)
        state.verify()
        # Final counts must equal a from-scratch query on the pinned dataset.
        pinned = dataset
        for row, cand in state.fixed.items():
            pinned = pinned.restrict_row(row, cand)
        for i in range(3):
            fresh = PreparedQuery(pinned, points[i], k=k).counts()
            assert state.counts(i) == fresh
