"""Equivalence and caching tests for the parallel batch CP query engine.

The batch executor's contract is that it NEVER changes results — only how
fast they arrive. Every test here therefore compares against the sequential
per-point path (:class:`repro.core.prepared.PreparedQuery`) and demands
bit-identical output, across ``n_jobs`` values, cache states and pinned-row
mappings.
"""

import numpy as np
import pytest

from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.sequential import CleaningSession
from repro.core.batch_engine import (
    BatchQueryExecutor,
    PreparedBatch,
    QueryResultCache,
    batch_certain_labels,
    batch_q2_counts,
    fanout_map,
    resolve_n_jobs,
)
from repro.core.dataset import IncompleteDataset
from repro.core.prepared import PreparedQuery
from repro.core.queries import certain_label
from repro.core.scan import compute_scan_order, compute_scan_orders
from repro.core.screening import screen_dataset
from tests.conftest import random_incomplete_dataset


def _workload(seed=0, n_rows=24, n_val=6, n_labels=2, max_candidates=3):
    rng = np.random.default_rng(seed)
    dataset = random_incomplete_dataset(
        rng, n_rows=n_rows, n_labels=n_labels, max_candidates=max_candidates
    )
    # Regenerate until at least two rows are dirty (the tests pin rows).
    while len(dataset.uncertain_rows()) < 2:
        dataset = random_incomplete_dataset(
            rng, n_rows=n_rows, n_labels=n_labels, max_candidates=max_candidates
        )
    test_X = rng.normal(size=(n_val, dataset.n_features))
    return dataset, test_X


def _sequential_counts(dataset, test_X, k, fixed=None):
    return [PreparedQuery(dataset, t, k=k).counts(fixed) for t in test_X]


def _square(x):
    return x * x


class TestPreparedBatch:
    def test_scan_orders_match_per_point_path(self):
        dataset, test_X = _workload()
        batch = PreparedBatch(dataset, test_X, k=3)
        batched = compute_scan_orders(dataset, test_X)
        for i, t in enumerate(test_X):
            reference = compute_scan_order(dataset, t)
            for scan in (batch.scan(i), batched[i]):
                assert np.array_equal(scan.rows, reference.rows)
                assert np.array_equal(scan.cands, reference.cands)
                assert np.array_equal(scan.sims, reference.sims)

    def test_batch_built_queries_behave_like_fresh_ones(self):
        dataset, test_X = _workload(seed=3)
        batch = PreparedBatch(dataset, test_X, k=3)
        target = dataset.uncertain_rows()[0]
        for i, t in enumerate(test_X):
            fresh = PreparedQuery(dataset, t, k=3)
            from_batch = batch.query(i)
            assert from_batch.counts() == fresh.counts()
            assert from_batch.counts_per_fixing(target) == fresh.counts_per_fixing(target)
            assert from_batch.certain_label_minmax() == fresh.certain_label_minmax()

    def test_k_larger_than_rows_rejected(self):
        dataset, test_X = _workload(n_rows=4)
        with pytest.raises(ValueError, match="exceeds the number of training rows"):
            PreparedBatch(dataset, test_X, k=10)


class TestBatchCountsEquivalence:
    @pytest.mark.parametrize("n_labels", [2, 3])
    def test_counts_identical_to_sequential(self, n_labels):
        dataset, test_X = _workload(seed=1, n_labels=n_labels)
        expected = _sequential_counts(dataset, test_X, k=3)
        assert batch_q2_counts(dataset, test_X, k=3) == expected

    def test_counts_identical_with_n_jobs(self):
        dataset, test_X = _workload(seed=2)
        expected = _sequential_counts(dataset, test_X, k=3)
        assert batch_q2_counts(dataset, test_X, k=3, n_jobs=2) == expected
        assert batch_q2_counts(dataset, test_X, k=3, n_jobs=4) == expected

    def test_counts_identical_with_pinned_rows(self):
        dataset, test_X = _workload(seed=4)
        fixed = {row: 0 for row in dataset.uncertain_rows()[:2]}
        expected = _sequential_counts(dataset, test_X, k=3, fixed=fixed)
        executor = BatchQueryExecutor(dataset, test_X, k=3, cache=False)
        assert executor.counts(fixed) == expected
        parallel = BatchQueryExecutor(dataset, test_X, k=3, n_jobs=2, cache=False)
        assert parallel.counts(fixed) == expected

    def test_certain_labels_match_query_api(self):
        for n_labels in (2, 3):
            dataset, test_X = _workload(seed=5, n_labels=n_labels)
            expected = [certain_label(dataset, t, k=3) for t in test_X]
            assert batch_certain_labels(dataset, test_X, k=3) == expected

    def test_out_of_range_pin_rejected(self):
        dataset, test_X = _workload(seed=6)
        row = dataset.uncertain_rows()[0]
        executor = BatchQueryExecutor(dataset, test_X, k=3, cache=False)
        with pytest.raises(IndexError, match="out of range"):
            executor.counts({row: 99})
        # The binary MinMax path must reject bad pins too, not silently
        # read a neighbouring row's similarity.
        assert dataset.n_labels == 2
        with pytest.raises(IndexError, match="out of range"):
            executor.certain_labels({row: int(dataset.candidates(row).shape[0])})


class TestResultCache:
    def test_cache_hits_serve_identical_results(self):
        dataset, test_X = _workload(seed=7)
        executor = BatchQueryExecutor(dataset, test_X, k=3, cache=True)
        first = executor.counts()
        assert executor.cache.hits == 0
        second = executor.counts()
        assert second == first
        assert executor.cache.hits == len(test_X)
        # Cached results also match the sequential path, not just each other.
        assert second == _sequential_counts(dataset, test_X, k=3)

    def test_cache_hit_results_are_isolated_copies(self):
        dataset, test_X = _workload(seed=8)
        executor = BatchQueryExecutor(dataset, test_X, k=3, cache=True)
        first = executor.counts()
        first[0][0] = -12345  # corrupt the caller's copy
        assert executor.counts() == _sequential_counts(dataset, test_X, k=3)

    def test_distinct_pins_get_distinct_entries(self):
        dataset, test_X = _workload(seed=9)
        executor = BatchQueryExecutor(dataset, test_X, k=3, cache=True)
        row = dataset.uncertain_rows()[0]
        plain = executor.counts()
        pinned = executor.counts({row: 1})
        assert pinned == _sequential_counts(dataset, test_X, k=3, fixed={row: 1})
        assert executor.cache.hits == 0  # different keys: no false sharing
        assert executor.counts() == plain
        assert executor.cache.hits == len(test_X)

    def test_fingerprint_change_invalidates(self):
        """A shared cache never leaks results across dataset contents."""
        dataset, test_X = _workload(seed=10)
        shared = QueryResultCache()
        before = BatchQueryExecutor(dataset, test_X, k=3, cache=shared).counts()

        row = dataset.uncertain_rows()[0]
        cleaned = dataset.restrict_row(row, 1)
        assert cleaned.fingerprint() != dataset.fingerprint()

        hits_before = shared.hits
        after = BatchQueryExecutor(cleaned, test_X, k=3, cache=shared).counts()
        assert shared.hits == hits_before  # every lookup missed: new fingerprint
        assert after == _sequential_counts(cleaned, test_X, k=3)
        # The original dataset's entries are still valid and still served.
        assert BatchQueryExecutor(dataset, test_X, k=3, cache=shared).counts() == before
        assert shared.hits > hits_before

    def test_identical_content_shares_fingerprint(self):
        dataset, _ = _workload(seed=11)
        clone = IncompleteDataset(
            [dataset.candidates(i) for i in range(dataset.n_rows)], dataset.labels
        )
        assert clone.fingerprint() == dataset.fingerprint()

    def test_default_repr_kernels_never_alias_cache_entries(self):
        from repro.core.batch_engine import _kernel_cache_key
        from repro.core.kernels import Kernel, RBFKernel

        class OpaqueKernel(Kernel):  # keeps object.__repr__
            def similarities(self, candidates, t):  # pragma: no cover
                raise NotImplementedError

        a, b = OpaqueKernel(), OpaqueKernel()
        assert _kernel_cache_key(a) != _kernel_cache_key(b)
        # Value-based reprs intentionally share keys across equal instances.
        assert _kernel_cache_key(RBFKernel(2.0)) == _kernel_cache_key(RBFKernel(2.0))
        assert _kernel_cache_key(RBFKernel(2.0)) != _kernel_cache_key(RBFKernel(3.0))

        class TweakedRBF(RBFKernel):  # inherits the parent's __repr__
            def similarities(self, candidates, t):  # pragma: no cover
                raise NotImplementedError

        # A subclass may compute different similarities, so an inherited
        # parameterised repr must not alias the parent's cache entries.
        assert _kernel_cache_key(TweakedRBF(2.0)) != _kernel_cache_key(RBFKernel(2.0))

    def test_lru_eviction_bounds_size(self):
        cache = QueryResultCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))  # refresh "a" so "b" is the LRU entry
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_concurrent_hammer(self):
        """Many threads of get/put/clear on one instance: the broker's
        prerequisite. No exception, size stays bounded, and — because every
        lookup bumps exactly one counter under the lock — the counters
        exactly account for every get."""
        import threading

        cache = QueryResultCache(maxsize=16)
        n_threads, n_ops = 8, 500
        gets_done = [0] * n_threads
        errors: list[Exception] = []

        def hammer(thread_index: int) -> None:
            rng = np.random.default_rng(thread_index)
            try:
                for op in range(n_ops):
                    key = ("key", int(rng.integers(0, 48)))
                    roll = rng.random()
                    if roll < 0.45:
                        cache.put(key, [thread_index, op])
                    elif roll < 0.9:
                        value = cache.get(key)
                        gets_done[thread_index] += 1
                        assert value is None or isinstance(value, list)
                    elif roll < 0.95:
                        _ = cache.stats(), cache.hit_rate, len(cache)
                    else:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - surfaces below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16
        # clear() resets the counters, so only a lower bound survives — but
        # hits + misses can never exceed the lookups actually performed.
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] <= sum(gets_done)
        assert 0.0 <= cache.hit_rate <= 1.0

    def test_shared_cache_across_threads_serves_consistent_values(self):
        """Two executors on different threads sharing one cache agree with
        the sequential reference throughout."""
        import threading

        dataset, test_X = _workload(seed=12)
        shared = QueryResultCache()
        expected = _sequential_counts(dataset, test_X, k=3)
        results: dict[int, list] = {}

        def run(slot: int) -> None:
            executor = BatchQueryExecutor(dataset, test_X, k=3, cache=shared)
            for _ in range(3):
                results[slot] = executor.counts()

        threads = [threading.Thread(target=run, args=(slot,)) for slot in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results[slot] == expected for slot in results)


class TestFanout:
    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(None) >= 1
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0)

    def test_fanout_map_covers_all_items(self):
        items = list(range(17))
        expected = sorted(x * x for x in items)
        assert sorted(fanout_map(_square, items, n_jobs=1)) == expected
        assert sorted(fanout_map(_square, items, n_jobs=3)) == expected


class TestCleaningIntegration:
    def test_session_certainty_checks_match_seed_semantics(self):
        dataset, val_X = _workload(seed=12)
        session = CleaningSession(dataset, val_X, k=3)
        expected = [
            query.certain_label_minmax(session.fixed) for query in session.queries
        ]
        assert session.val_certain_labels() == expected
        row = dataset.uncertain_rows()[0]
        session.clean_row(row, 0)
        expected = [
            query.certain_label_minmax(session.fixed) for query in session.queries
        ]
        assert session.val_certain_labels() == expected

    @pytest.mark.parametrize("n_jobs,use_cache", [(1, False), (2, True), (2, False)])
    def test_cp_clean_report_invariant_under_executor_config(self, n_jobs, use_cache):
        dataset, val_X = _workload(seed=13, n_rows=16, n_val=4)
        oracle = GroundTruthOracle([0] * dataset.n_rows)
        baseline = run_cp_clean(dataset, val_X, oracle, k=3, max_cleaned=3)
        report = run_cp_clean(
            dataset, val_X, oracle, k=3, max_cleaned=3,
            n_jobs=n_jobs, use_cache=use_cache,
        )
        assert [s.row for s in report.steps] == [s.row for s in baseline.steps]
        assert [s.expected_entropy for s in report.steps] == [
            s.expected_entropy for s in baseline.steps
        ]
        assert report.final_fixed == baseline.final_fixed
        assert report.cp_fraction_final == baseline.cp_fraction_final


class TestEmptyTestSet:
    @pytest.mark.parametrize("kernel", ["euclidean", "rbf", "linear", "cosine"])
    def test_empty_test_matrix_yields_empty_results(self, kernel):
        dataset, _ = _workload(seed=15)
        empty = np.empty((0, dataset.n_features))
        executor = BatchQueryExecutor(dataset, empty, k=3, kernel=kernel)
        assert executor.counts() == []
        assert executor.certain_labels() == []
        assert screen_dataset(dataset, empty, k=3, kernel=kernel).cp_fraction == 1.0

    def test_empty_validation_set_session(self):
        dataset, _ = _workload(seed=16)
        empty = np.empty((0, dataset.n_features))
        session = CleaningSession(dataset, empty, k=3, kernel="linear")
        assert session.cp_fraction() == 1.0


class TestScreeningIntegration:
    def test_screening_matches_sequential_path(self):
        dataset, test_X = _workload(seed=14, n_labels=3)
        result = screen_dataset(dataset, test_X, k=3)
        assert result.counts == _sequential_counts(dataset, test_X, k=3)
        parallel = screen_dataset(dataset, test_X, k=3, n_jobs=2)
        assert parallel.counts == result.counts
        assert parallel.certain_labels == result.certain_labels
        assert parallel.entropies == result.entropies
