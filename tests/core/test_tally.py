"""Unit tests for label tallies."""

import math

import pytest

from repro.core.tally import predicted_label, tallies_with_prediction, valid_tallies


class TestValidTallies:
    def test_k1_binary(self):
        assert set(valid_tallies(1, 2)) == {(1, 0), (0, 1)}

    def test_k3_binary(self):
        assert set(valid_tallies(3, 2)) == {(0, 3), (1, 2), (2, 1), (3, 0)}

    def test_all_sum_to_k(self):
        for k in range(5):
            for n_labels in range(1, 5):
                assert all(sum(t) == k for t in valid_tallies(k, n_labels))

    def test_count_is_stars_and_bars(self):
        for k in range(5):
            for n_labels in range(1, 5):
                expected = math.comb(n_labels + k - 1, k)
                assert len(valid_tallies(k, n_labels)) == expected

    def test_no_duplicates(self):
        tallies = valid_tallies(4, 3)
        assert len(set(tallies)) == len(tallies)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            valid_tallies(-1, 2)
        with pytest.raises(ValueError):
            valid_tallies(2, 0)


class TestPredictedLabel:
    def test_clear_winner(self):
        assert predicted_label((0, 3)) == 1
        assert predicted_label((2, 1)) == 0

    def test_tie_prefers_smallest_label(self):
        assert predicted_label((2, 2)) == 0
        assert predicted_label((0, 2, 2)) == 1

    def test_consistent_with_majority_label(self):
        from repro.core.knn import majority_label

        for tally in valid_tallies(4, 3):
            votes = [label for label, count in enumerate(tally) for _ in range(count)]
            assert predicted_label(tally) == majority_label(votes, tally_size=3)


class TestTalliesWithPrediction:
    def test_pairs_are_consistent(self):
        for tally, winner in tallies_with_prediction(3, 3):
            assert winner == predicted_label(tally)

    def test_caching_returns_same_object(self):
        assert tallies_with_prediction(3, 2) is tallies_with_prediction(3, 2)
