"""CI-friendly documentation checks.

Documentation rots silently: files move, commands get renamed, examples
drift from the API. These tests pin the documented surface to reality —
the README must exist and its code blocks must reference real files, real
CLI commands and a runnable API; every public module must carry a module
docstring; and the design docs must only cite files that exist.
"""

from __future__ import annotations

import argparse
import ast
import io
import pathlib
import re
from contextlib import redirect_stdout

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOCS = [REPO_ROOT / "docs" / "architecture.md", REPO_ROOT / "docs" / "engines.md"]

# Repo-relative path-like tokens: at least one '/', a known top-level
# directory, and a .py/.md suffix (or a trailing slash for directories).
_PATH_PATTERN = re.compile(
    r"\b(?:src|docs|examples|benchmarks|tests)/[\w./-]*(?:\.py|\.md|/)"
)


def _fenced_blocks(text: str, language: str) -> list[str]:
    return re.findall(rf"```{language}\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeExists:
    def test_readme_present_and_substantial(self):
        assert README.is_file(), "top-level README.md is missing"
        text = README.read_text(encoding="utf-8")
        assert len(text) > 2000, "README.md looks like a stub"
        for needle in (
            "Certain Predictions",
            "CPClean",
            "quickstart",
            "PYTHONPATH=src python -m pytest",
        ):
            assert needle in text, f"README.md no longer mentions {needle!r}"


class TestReadmeReferencesAreReal:
    def test_referenced_paths_exist(self):
        text = README.read_text(encoding="utf-8")
        paths = set(_PATH_PATTERN.findall(text))
        assert paths, "README.md references no repository paths at all?"
        missing = [p for p in paths if not (REPO_ROOT / p).exists()]
        assert not missing, f"README.md references nonexistent paths: {missing}"

    def test_referenced_cli_commands_exist(self):
        from repro.cli import build_parser

        text = README.read_text(encoding="utf-8")
        referenced = set(re.findall(r"python -m repro (\w[\w-]*)", text))
        assert referenced, "README.md shows no CLI usage"
        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        unknown = referenced - set(subparsers.choices)
        assert not unknown, f"README.md references unknown CLI commands: {unknown}"

    def test_python_blocks_execute(self):
        """The README's Python blocks must actually run against the API."""
        text = README.read_text(encoding="utf-8")
        blocks = _fenced_blocks(text, "python")
        assert blocks, "README.md has no Python examples"
        namespace: dict = {}
        for block in blocks:
            with redirect_stdout(io.StringIO()):
                exec(compile(block, "<README.md>", "exec"), namespace)  # noqa: S102

    def test_shell_blocks_reference_real_entry_points(self):
        text = README.read_text(encoding="utf-8")
        for block in _fenced_blocks(text, "bash"):
            for match in re.finditer(r"python ((?:examples|benchmarks)/\S+\.py)", block):
                assert (REPO_ROOT / match.group(1)).is_file(), (
                    f"README.md runs nonexistent script {match.group(1)}"
                )
            for match in re.finditer(r"pytest (\S+\.py)", block):
                assert (REPO_ROOT / match.group(1)).is_file(), (
                    f"README.md runs pytest on nonexistent file {match.group(1)}"
                )


class TestDesignDocs:
    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_doc_exists(self, doc):
        assert doc.is_file(), f"{doc.relative_to(REPO_ROOT)} is missing"

    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_doc_references_are_real(self, doc):
        text = doc.read_text(encoding="utf-8")
        paths = set(_PATH_PATTERN.findall(text))
        assert paths, f"{doc.name} references no repository paths"
        missing = [p for p in paths if not (REPO_ROOT / p).exists()]
        assert not missing, f"{doc.name} references nonexistent paths: {missing}"


class TestModuleDocstrings:
    def test_every_public_module_has_a_docstring(self):
        missing = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            if not ast.get_docstring(tree):
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert not missing, f"modules without a module docstring: {missing}"

    def test_package_docstring_enumerates_public_api(self):
        import repro

        assert repro.__doc__ is not None
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert name in repro.__doc__, (
                f"repro.__init__ docstring does not mention public name {name!r}"
            )
