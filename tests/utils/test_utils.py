"""Unit tests for the shared utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_float, format_percent, format_table
from repro.utils.timing import Stopwatch, time_callable
from repro.utils.validation import (
    check_fraction,
    check_in_options,
    check_matrix,
    check_positive_int,
    check_vector,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(7).integers(0, 100) == ensure_rng(7).integers(0, 100)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_rngs_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rngs_deterministic(self):
        a = [c.integers(0, 10**9) for c in spawn_rngs(5, 2)]
        b = [c.integers(0, 10**9) for c in spawn_rngs(5, 2)]
        assert a == b

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_positive_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_positive_int_rejects_small(self):
        with pytest.raises(ValueError, match="x must be >="):
            check_positive_int(0, "x")

    def test_fraction_bounds(self):
        assert check_fraction(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_fraction(1.5, "p")
        with pytest.raises(ValueError):
            check_fraction(0.0, "p", closed=False)

    def test_matrix_checks(self):
        out = check_matrix([[1, 2], [3, 4]], "m", n_cols=2)
        assert out.dtype == np.float64
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix([1, 2], "m")
        with pytest.raises(ValueError, match="columns"):
            check_matrix([[1, 2]], "m", n_cols=3)
        with pytest.raises(ValueError, match="finite"):
            check_matrix([[np.nan, 1.0]], "m")

    def test_vector_checks(self):
        assert check_vector([1.0, 2.0], "v", length=2).tolist() == [1.0, 2.0]
        with pytest.raises(ValueError, match="length"):
            check_vector([1.0], "v", length=3)

    def test_in_options(self):
        assert check_in_options("a", "opt", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="one of"):
            check_in_options("c", "opt", ("a", "b"))


class TestTables:
    def test_format_percent(self):
        assert format_percent(0.153) == "15%"
        assert format_percent(0.153, digits=1) == "15.3%"

    def test_format_float(self):
        assert format_float(0.12345, 2) == "0.12"

    def test_table_renders_all_rows(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])


class TestTiming:
    def test_stopwatch_measures_elapsed(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.009

    def test_time_callable_returns_positive(self):
        assert time_callable(lambda: sum(range(100)), repeats=2) > 0

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
