"""Unit tests for experiment metrics and scale configuration."""

import pytest

from repro.experiments.config import get_scale
from repro.experiments.metrics import gap_closed


class TestGapClosed:
    def test_full_gap(self):
        assert gap_closed(0.9, 0.8, 0.9) == pytest.approx(1.0)

    def test_no_improvement(self):
        assert gap_closed(0.8, 0.8, 0.9) == pytest.approx(0.0)

    def test_negative_when_worse_than_default(self):
        assert gap_closed(0.75, 0.8, 0.9) < 0

    def test_above_one_when_better_than_ground_truth(self):
        assert gap_closed(0.95, 0.8, 0.9) > 1.0

    def test_degenerate_gap(self):
        assert gap_closed(0.85, 0.9, 0.9) == 0.0


class TestScaleConfig:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert get_scale().name == "quick"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert get_scale("large").name == "large"

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("galactic")

    def test_scales_are_ordered(self):
        assert get_scale("quick").n_train < get_scale("default").n_train < get_scale("large").n_train
