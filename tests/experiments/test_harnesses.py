"""Unit tests for the experiment harnesses (scaled way down for CI speed)."""

import numpy as np
import pytest

from repro.experiments.complexity import (
    fit_growth_exponent,
    measure_runtime,
    random_instance,
)
from repro.experiments.curves import (
    average_random_curves,
    sweep_validation_size,
    trace_cleaning_curve,
)
from repro.experiments.end_to_end import run_end_to_end
from repro.data.task import build_cleaning_task


@pytest.fixture(scope="module")
def small_task():
    return build_cleaning_task("supreme", n_train=40, n_val=8, n_test=60, seed=0)


class TestEndToEnd:
    def test_result_is_internally_consistent(self):
        result = run_end_to_end("supreme", n_train=40, n_val=8, n_test=60, seed=0)
        assert result.dataset == "supreme"
        assert 0.0 <= result.default_accuracy <= 1.0
        assert 0.0 <= result.ground_truth_accuracy <= 1.0
        assert 0.0 <= result.cp_clean_examples_cleaned <= 1.0
        assert result.raw["n_cleaned"] <= result.raw["n_dirty"]

    def test_cp_clean_reaches_full_certainty(self):
        result = run_end_to_end("supreme", n_train=40, n_val=8, n_test=60, seed=0)
        assert result.raw["cp_fraction_final"] == 1.0


class TestCurves:
    def test_cpclean_curve_shapes(self, small_task):
        curve = trace_cleaning_curve(small_task, strategy="cpclean")
        n = len(curve.fraction_cleaned)
        assert len(curve.cp_fraction) == n
        assert len(curve.gap_closed) == n
        assert curve.fraction_cleaned[0] == 0.0
        assert curve.cp_fraction[-1] == 1.0

    def test_cp_fraction_never_decreases_much(self, small_task):
        curve = trace_cleaning_curve(small_task, strategy="cpclean")
        # CP'ed fraction is monotone under truthful cleaning.
        diffs = np.diff(curve.cp_fraction)
        assert np.all(diffs >= -1e-12)

    def test_random_curve_averaging_pads_runs(self, small_task):
        merged = average_random_curves(small_task, n_runs=2, seed=0)
        assert merged.strategy == "random"
        assert len(merged.cp_fraction) == len(merged.gap_closed)
        assert merged.cp_fraction[-1] == pytest.approx(1.0)

    def test_unknown_strategy(self, small_task):
        with pytest.raises(ValueError, match="strategy"):
            trace_cleaning_curve(small_task, strategy="psychic")

    def test_validation_size_sweep(self):
        results = sweep_validation_size(
            "supreme", val_sizes=[4, 8], n_train=40, n_test=60, seed=0
        )
        assert [r.n_val for r in results] == [4, 8]
        for r in results:
            assert 0.0 <= r.examples_cleaned_fraction <= 1.0


class TestComplexity:
    def test_random_instance_shape(self):
        dataset, t = random_instance(10, 3, n_labels=2, n_features=4, seed=0)
        assert dataset.n_rows == 10
        assert dataset.candidate_counts().tolist() == [3] * 10
        assert t.shape == (4,)

    @pytest.mark.parametrize("algorithm", ["ss-engine", "minmax"])
    def test_measure_runtime_returns_positive(self, algorithm):
        point = measure_runtime(algorithm, n_rows=20, m_candidates=2, k=3, repeats=1)
        assert point.seconds > 0
        assert point.algorithm == algorithm

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            measure_runtime("quantum", n_rows=5, m_candidates=2)

    def test_fit_growth_exponent_on_synthetic_data(self):
        sizes = [10, 20, 40, 80]
        quadratic = [s**2 * 1e-6 for s in sizes]
        assert fit_growth_exponent(sizes, quadratic) == pytest.approx(2.0, abs=0.01)
        linear = [s * 1e-6 for s in sizes]
        assert fit_growth_exponent(sizes, linear) == pytest.approx(1.0, abs=0.01)

    def test_fit_growth_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([10], [0.1])
