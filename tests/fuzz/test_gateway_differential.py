"""Partitioned (gateway) execution must be bit-identical to local.

The gateway slices candidate rows across executor processes, computes
per-partition tallies remotely, and merges them; this harness holds that
whole pipeline to the repo's certification standard. For the seeded
random queries of :mod:`tests.fuzz.cp_cases` — all five flavors, every
kind, pins, exact-``Fraction`` weights — and for random delta sequences
that force redistribution, :meth:`Gateway.execute_query` must return
values equal (with ``==``, exact types) to a direct
:func:`~repro.core.planner.execute_query` call.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.deltas import CellRepair, RowAppend, RowDelete, apply_delta_to_dataset
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service.gateway import Gateway
from tests.fuzz.cp_cases import FLAVOR_CYCLE, SEEDS, random_case


@pytest.fixture(scope="module")
def gateway():
    with Gateway(2, partitions_per_executor=2, timeout_s=30.0) as gw:
        yield gw


def _assert_same_values(gathered, local, where: str) -> None:
    assert gathered == local, f"gateway diverged from local execution: {where}"
    for got, want in zip(gathered, local):
        assert type(got) is type(want), (
            f"type drift ({type(got).__name__} vs {type(want).__name__}): {where}"
        )


class TestGatewayDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_partitioned_values_match_local(self, gateway, seed):
        query, _oracle, description = random_case(seed)
        local = execute_query(query, options=ExecutionOptions(cache=False))
        gathered = gateway.execute_query(f"fuzz-{seed}", query)
        assert gathered.plan.backend == "gateway"
        _assert_same_values(gathered.values, local.values, description)

    def test_seeds_cover_every_flavor(self):
        assert {random_case(seed)[0].flavor for seed in SEEDS} == set(FLAVOR_CYCLE)


class TestDeltasForceExactRedistribution:
    """Same dataset name, new fingerprint → re-partition, still exact."""

    @pytest.mark.parametrize("seed", range(5))
    def test_delta_sequence_stays_bit_identical(self, gateway, seed):
        rng = np.random.default_rng(7000 + seed)
        query, _oracle, _description = random_case(seed * 5)  # binary seed family
        dataset = query.dataset
        test_X = rng.normal(size=(2, 2))
        k = 2
        name = f"delta-{seed}"
        for step in range(4):
            if dataset.uncertain_rows() and step % 2 == 0:
                dirty = dataset.uncertain_rows()
                row = int(dirty[int(rng.integers(0, len(dirty)))])
                cand = int(rng.integers(0, dataset.candidate_counts()[row]))
                delta = CellRepair(row, cand)
            elif step == 1:
                delta = RowAppend(rng.normal(size=(2, 2)), 0)
            else:
                delta = RowDelete(int(rng.integers(0, dataset.n_rows)))
            dataset = apply_delta_to_dataset(dataset, delta)
            q = make_query(dataset, test_X, kind="counts", k=min(k, dataset.n_rows))
            local = execute_query(q, options=ExecutionOptions(cache=False))
            gathered = gateway.execute_query(name, q)
            where = f"seed={seed} step={step} delta={type(delta).__name__}"
            _assert_same_values(gathered.values, local.values, where)
            described = gateway.describe_dataset(name)
            assert described["fingerprint"] == dataset.fingerprint(), (
                f"gateway kept serving a stale distribution: {where}"
            )


class TestWeightedFractionsSurviveTheMerge:
    def test_weighted_probabilities_are_exact_fractions(self, gateway):
        rng = np.random.default_rng(99)
        sets = [rng.normal(size=(m, 2)) for m in (2, 3, 1, 2, 2)]
        dataset_labels = [0, 1, 0, 1, 1]
        from repro.core.dataset import IncompleteDataset

        dataset = IncompleteDataset(sets, dataset_labels)
        weights = []
        for m in dataset.candidate_counts():
            raw = [Fraction(int(rng.integers(1, 5))) for _ in range(int(m))]
            total = sum(raw)
            weights.append([w / total for w in raw])
        query = make_query(
            dataset,
            rng.normal(size=(3, 2)),
            kind="counts",
            flavor="weighted",
            k=2,
            weights=weights,
        )
        local = execute_query(query, options=ExecutionOptions(cache=False))
        gathered = gateway.execute_query("fractions", query)
        _assert_same_values(gathered.values, local.values, "weighted fractions")
