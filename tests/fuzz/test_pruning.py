"""Fuzz harness for the prune certificate: soundness and bit-identity.

Two properties over 30 seeded random cases:

1. **Soundness** — for every issued certificate, enumerate the worlds
   (the cartesian product of candidate choices) and check, world by
   world, that each pruned row is strictly dominated by at least ``k``
   rows. That is the tie-break-free statement of "never in any world's
   top-K": whatever convention breaks similarity ties, a row with ``k``
   strictly-greater rows above it cannot be a k-nearest neighbour.
2. **Bit-identity** — every backend that can plan the query returns
   exactly the same values with ``prune`` off, on and auto (and, for the
   decision kinds, under both scan-kernel implementations). The cases
   come from :mod:`tests.fuzz.cp_cases`, so flavors, pins and weights
   all cycle through.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.planner import ExecutionOptions, PlanError, execute_query
from repro.core.pruning import (
    certificate_from_intervals,
    interval_arrays,
    prune_mask,
)
from repro.core.scan import compute_scan_order

from tests.fuzz.cp_cases import BACKENDS, random_case, random_dataset

SEEDS = list(range(30))

#: Enumerating every world is the oracle; cap the blow-up per case.
MAX_WORLDS = 5_000


def _soundness_problem(seed: int):
    """A random soundness case; odd seeds cluster candidates so the
    certificate demonstrably fires on a healthy fraction of cases."""
    rng = np.random.default_rng(seed)
    n_labels = int(rng.integers(2, 4))
    if seed % 2:
        n_rows = int(rng.integers(8, 12))
        centers = rng.normal(size=(n_rows, 2))
        sets = [
            center + 0.02 * rng.normal(size=(int(rng.integers(1, 3)), 2))
            for center in centers
        ]
        labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
        labels[0], labels[1] = 0, n_labels - 1
        from repro.core.dataset import IncompleteDataset

        dataset = IncompleteDataset(sets, labels)
    else:
        dataset = random_dataset(rng, n_labels)
    t = rng.normal(size=2)
    k = int(rng.integers(1, dataset.n_rows + 1))
    return dataset, t, k


@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_rows_dominated_in_every_world(seed):
    dataset, t, k, = _soundness_problem(seed)
    scan = compute_scan_order(dataset, t, None)
    mins, maxs = interval_arrays(scan)
    cert = certificate_from_intervals(mins, maxs, k, scan.row_counts)
    cert.verify()
    assert np.array_equal(
        np.sort(np.concatenate([cert.keep_rows, cert.pruned_rows])),
        np.arange(dataset.n_rows),
    )
    if cert.n_pruned == 0:
        return

    # Candidate similarities per row, in candidate order.
    sims_of = {}
    for row, cand, sim in zip(scan.rows, scan.cands, scan.sims):
        sims_of[(int(row), int(cand))] = float(sim)
    counts = [int(m) for m in scan.row_counts]
    n_worlds = int(np.prod(counts, dtype=object))
    rng = np.random.default_rng(seed + 10_000)
    if n_worlds <= MAX_WORLDS:
        worlds = itertools.product(*[range(m) for m in counts])
    else:  # uniform sample; the exhaustive check runs on the small cases
        worlds = (
            tuple(int(rng.integers(0, m)) for m in counts) for _ in range(500)
        )
    pruned = cert.pruned_rows.tolist()
    for world in worlds:
        world_sims = np.array(
            [sims_of[(row, choice)] for row, choice in enumerate(world)]
        )
        for row in pruned:
            n_strictly_above = int(np.sum(world_sims > world_sims[row]))
            assert n_strictly_above >= k, (
                f"seed={seed}: pruned row {row} has only {n_strictly_above} "
                f"rows strictly above it in world {world} (need >= {k})"
            )


def test_soundness_seeds_actually_prune():
    """The harness must exercise the interesting branch, not vacuously pass."""
    n_pruning_cases = 0
    for seed in SEEDS:
        dataset, t, k = _soundness_problem(seed)
        scan = compute_scan_order(dataset, t, None)
        mins, maxs = interval_arrays(scan)
        if prune_mask(mins, maxs, k).any():
            n_pruning_cases += 1
    assert n_pruning_cases >= len(SEEDS) // 3


# ---------------------------------------------------------------------------
# prune on/off/auto bit-identity across backends x flavors x pins x weights
# ---------------------------------------------------------------------------


def _options(prune: str, scan_kernel: str = "auto") -> ExecutionOptions:
    return ExecutionOptions(cache=False, prune=prune, scan_kernel=scan_kernel)


@pytest.mark.parametrize("seed", SEEDS)
def test_prune_modes_bit_identical_across_backends(seed):
    query, oracle, description = random_case(seed)
    reference = None
    n_served = 0
    for backend in BACKENDS:
        try:
            off = execute_query(query, backend=backend, options=_options("off"))
        except PlanError:
            continue  # backend cannot serve this flavor/kind; fine
        n_served += 1
        for prune in ("on", "auto"):
            result = execute_query(query, backend=backend, options=_options(prune))
            assert result.values == off.values, (
                f"{description}: backend={backend} prune={prune} diverged"
            )
            assert result.stats.get("prune") in (True, False)
        if reference is None:
            reference = off.values
        else:
            assert off.values == reference, (
                f"{description}: backend={backend} disagrees with reference"
            )
    assert n_served > 0, f"{description}: no backend could serve the query"
    if oracle is not None:
        assert reference == oracle, f"{description}: diverged from brute force"

    # Decision kinds additionally cross-check both scan-kernel
    # implementations through the pruned sequential path.
    if query.kind in ("certain_label", "check"):
        for implementation in ("numpy", "python"):
            result = execute_query(
                query,
                backend="sequential",
                options=_options("on", scan_kernel=implementation),
            )
            assert result.values == reference, (
                f"{description}: scan_kernel={implementation} diverged"
            )
