"""Shared seeded case generators for the differential harnesses.

The planner-backend harness (``tests/core/test_backend_differential.py``),
the certain-answer harness (``tests/codd/test_codd_differential.py``) and
the update-sequence harness (``tests/fuzz/test_update_sequences.py``) all
fuzz the same spaces — random incomplete datasets, random CP queries,
random Codd tables and select-project queries. The generators live here
once (:mod:`fuzz.cp_cases` and :mod:`fuzz.codd_cases`) so the harnesses
cannot drift apart; each generator is a pure function of its seed, which
keeps every reported failure replayable from its seed alone.
"""
