"""Seeded random CP-query cases shared by the differential harnesses.

Extracted from ``tests/core/test_backend_differential.py`` so the planner
harness and the update-sequence harness draw from one generator. Every
function is a pure function of its inputs — the same seed always builds
the same case, so a failure report's seed replays it exactly.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core.bruteforce import brute_force_counts
from repro.core.dataset import IncompleteDataset
from repro.core.label_uncertainty import (
    LabelUncertainDataset,
    label_uncertain_counts_bruteforce,
)
from repro.core.planner import make_query

__all__ = [
    "BACKENDS",
    "TILE_CONFIGS",
    "SEEDS",
    "FLAVOR_CYCLE",
    "random_dataset",
    "random_pins",
    "random_weights",
    "random_case",
]

#: The backends the harness differentiates (a capability-filtered subset
#: runs per query). Order matters only for error messages.
BACKENDS = ("sequential", "batch", "incremental", "sharded")

#: Small tiles (split candidate segments) and oversized tiles (single tile).
TILE_CONFIGS = ((1, 3), (10_000, 10_000))

SEEDS = list(range(20))

#: Flavor cycles with the seed so every flavor is guaranteed coverage in
#: any contiguous seed range of length >= 5; everything else is random.
FLAVOR_CYCLE = ("binary", "multiclass", "weighted", "topk", "label_uncertainty")


def random_dataset(rng: np.random.Generator, n_labels: int) -> IncompleteDataset:
    n_rows = int(rng.integers(4, 8))
    sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0  # the label space is exactly as declared
    labels[1] = n_labels - 1
    return IncompleteDataset(sets, labels)


def random_pins(rng: np.random.Generator, dataset: IncompleteDataset) -> dict[int, int]:
    counts = dataset.candidate_counts()
    dirty = dataset.uncertain_rows()
    n_pins = int(rng.integers(0, len(dirty) + 1)) if dirty else 0
    chosen = rng.permutation(dirty)[:n_pins] if n_pins else []
    return {int(row): int(rng.integers(0, counts[int(row)])) for row in chosen}


def random_weights(
    rng: np.random.Generator, dataset: IncompleteDataset
) -> list[list[Fraction]]:
    weights = []
    for m in dataset.candidate_counts():
        raw = [Fraction(int(rng.integers(1, 6))) for _ in range(int(m))]
        total = sum(raw)
        weights.append([w / total for w in raw])
    return weights


def random_case(seed: int):
    """One seeded random query: ``(query, oracle_or_None, description)``."""
    rng = np.random.default_rng(seed)
    flavor = FLAVOR_CYCLE[seed % len(FLAVOR_CYCLE)]
    n_labels = 2 if flavor in ("binary", "weighted") else int(rng.integers(2, 4))
    dataset = random_dataset(rng, n_labels)
    k = int(rng.integers(1, min(4, dataset.n_rows) + 1))
    test_X = rng.normal(size=(int(rng.integers(1, 4)), 2))
    pins = random_pins(rng, dataset)
    kind = "counts" if flavor == "topk" else str(
        rng.choice(["counts", "certain_label", "check"])
    )
    label = int(rng.integers(0, n_labels)) if kind == "check" else None
    kwargs = dict(kind=kind, flavor=flavor, k=k, pins=pins, label=label)

    oracle = None
    if flavor in ("binary", "multiclass"):
        query = make_query(dataset, test_X, **kwargs)
        if kind == "counts":
            restricted = dataset
            for row, cand in pins.items():
                restricted = restricted.restrict_row(row, cand)
            oracle = [brute_force_counts(restricted, t, k=k) for t in test_X]
    elif flavor == "weighted":
        kwargs["weights"] = random_weights(rng, dataset)
        query = make_query(dataset, test_X, **kwargs)
    elif flavor == "topk":
        query = make_query(dataset, test_X, kind="counts", flavor="topk", k=k, pins=pins)
    else:
        flip_rows = [
            int(row)
            for row in rng.permutation(dataset.n_rows)[: int(rng.integers(1, 3))]
        ]
        lu = LabelUncertainDataset.from_incomplete(dataset, flip_rows=flip_rows)
        query = make_query(lu, test_X, **kwargs)
        if kind == "counts":
            restricted = lu
            for row, cand in pins.items():
                restricted = restricted.restrict_row(row, cand)
            oracle = [
                label_uncertain_counts_bruteforce(restricted, t, k=k) for t in test_X
            ]
    description = f"seed={seed} flavor={flavor} kind={kind} k={k} pins={pins}"
    return query, oracle, description
