"""Seeded random Codd-table cases shared by the differential harnesses.

Extracted from ``tests/codd/test_codd_differential.py`` so the
certain-answer harness and the update-sequence harness draw from one
generator: fuzzed schemas and column types (small ints, floats, strings,
ints beyond float64 exactness) with random NULL domains, plus random
select-project(-rename) queries and two-table join databases.
"""

from __future__ import annotations

import numpy as np

from repro.codd.algebra import (
    Aggregate,
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Join,
    Literal,
    Negation,
    Project,
    Rename,
    Scan,
    Select,
)
from repro.codd.codd_table import CoddTable, Null

__all__ = [
    "SEEDS",
    "TYPE_POOLS",
    "random_table",
    "random_comparison",
    "random_predicate",
    "random_case",
    "random_database_case",
    "random_join_case",
    "random_aggregate_case",
]

SEEDS = list(range(30))

#: Per-column value universes. Ordering comparisons only ever pair a column
#: with a literal (or column) of the same type class, mirroring what typed
#: SQL would allow; equality comparisons may cross classes.
TYPE_POOLS = {
    "int": [0, 1, 2, 3, 4],
    "float": [-1.25, 0.0, 0.5, 2.0, 3.75],
    "str": ["a", "b", "c", "d"],
    "bigint": [2**60, 2**60 + 1, 2**60 + 2, 5],
}


def random_table(
    rng: np.random.Generator, attrs: tuple[str, ...], types: list[str]
) -> CoddTable:
    n_rows = int(rng.integers(1, 5))
    rows = []
    for _ in range(n_rows):
        cells = []
        for col_type in types:
            pool = TYPE_POOLS[col_type]
            if rng.random() < 0.45:
                size = int(rng.integers(1, 4))
                domain = list(rng.choice(len(pool), size=size, replace=False))
                cells.append(Null([pool[i] for i in domain]))
            else:
                cells.append(pool[int(rng.integers(0, len(pool)))])
        rows.append(cells)
    return CoddTable(attrs, rows)


def random_comparison(
    rng: np.random.Generator, attrs: tuple[str, ...], types: list[str]
):
    i = int(rng.integers(0, len(attrs)))
    ops_ordered = ["==", "!=", "<", "<=", ">", ">="]
    same_type = [j for j in range(len(attrs)) if types[j] == types[i]]
    if rng.random() < 0.3 and len(same_type) > 1:
        j = int(rng.choice([j for j in same_type if j != i]))
        right: Attribute | Literal = Attribute(attrs[j])
    elif rng.random() < 0.15:
        # Cross-type literal: equality only (ordering would TypeError,
        # identically on every path, so nothing to differentiate).
        other = [t for t in TYPE_POOLS if t != types[i]]
        pool = TYPE_POOLS[str(rng.choice(other))]
        right = Literal(pool[int(rng.integers(0, len(pool)))])
        return Comparison(
            Attribute(attrs[i]), str(rng.choice(["==", "!="])), right
        )
    else:
        pool = TYPE_POOLS[types[i]]
        right = Literal(pool[int(rng.integers(0, len(pool)))])
    return Comparison(Attribute(attrs[i]), str(rng.choice(ops_ordered)), right)


def random_predicate(
    rng: np.random.Generator, attrs: tuple[str, ...], types: list[str], depth: int = 0
):
    roll = rng.random()
    if depth >= 2 or roll < 0.5:
        return random_comparison(rng, attrs, types)
    parts = [
        random_predicate(rng, attrs, types, depth + 1)
        for _ in range(int(rng.integers(2, 4)))
    ]
    if roll < 0.7:
        return Conjunction(*parts)
    if roll < 0.9:
        return Disjunction(*parts)
    return Negation(random_predicate(rng, attrs, types, depth + 1))


def random_case(seed: int):
    """One seeded random (query, table, name, description) case."""
    rng = np.random.default_rng(seed)
    arity = int(rng.integers(1, 4))
    attrs = tuple(f"c{i}" for i in range(arity))
    types = [str(rng.choice(list(TYPE_POOLS))) for _ in range(arity)]
    table = random_table(rng, attrs, types)
    name = str(rng.choice(["T", "person", "orders"]))

    schema = attrs
    query = Scan(name)
    if rng.random() < 0.3:
        renamed = tuple(f"r_{a}" for a in attrs)
        query = Rename(query, dict(zip(attrs, renamed)))
        schema = renamed
    if rng.random() < 0.8:
        query = Select(query, random_predicate(rng, schema, types))
    if rng.random() < 0.7:
        kept = sorted(
            rng.choice(len(schema), size=int(rng.integers(1, arity + 1)), replace=False)
        )
        query = Project(query, tuple(schema[i] for i in kept))
    description = f"seed={seed} types={types} n_rows={len(table)} name={name}"
    return query, table, name, description


def random_join_case(seed: int):
    """A two-table equi-join database shaped so the pair-table fast path
    engages on a healthy share of seeds.

    The ``dim`` side has unique complete keys; the ``fact`` side's keys are
    sometimes NULL with a domain holding at most one live ``dim`` key (the
    other candidates miss), so a NULL-bearing row rarely pairs twice — the
    exactness condition of the hash join.  Other seeds deliberately break
    it (wide NULL key domains, NULLs on both sides) to exercise the naive
    fallback through the same assertions.
    """
    rng = np.random.default_rng(5000 + seed)
    n_dim = int(rng.integers(2, 5))
    dim_rows = []
    for k in range(n_dim):
        payload: object = TYPE_POOLS["str"][int(rng.integers(0, 4))]
        if rng.random() < 0.25:
            payload = Null(["a", "b"])
        dim_rows.append((k, payload))
    dim = CoddTable(("key", "label"), dim_rows)

    n_fact = int(rng.integers(1, 5))
    fact_rows = []
    for i in range(n_fact):
        key: object = int(rng.integers(0, n_dim + 1))  # may dangle
        if rng.random() < 0.4:
            if rng.random() < 0.7:
                # One live candidate at most: {k, miss} — fast-path friendly.
                key = Null([int(rng.integers(0, n_dim)), 100 + i])
            else:
                # Two live candidates: forces the exactness decline.
                key = Null([0, 1])
        amount: object = TYPE_POOLS["int"][int(rng.integers(0, 5))]
        if rng.random() < 0.35:
            amount = Null([1, 2, 3])
        fact_rows.append((key, amount))
    fact = CoddTable(("key", "amount"), fact_rows)

    query = Join(Scan("fact"), Scan("dim"))
    if rng.random() < 0.6:
        query = Select(
            query, random_comparison(rng, ("amount",), ["int"])
        )
    if rng.random() < 0.5:
        query = Project(query, ("key", "label"))
    database = {"fact": fact, "dim": dim}
    return query, database, f"seed={seed} fact={n_fact} dim={n_dim}"


def random_aggregate_case(seed: int):
    """A GROUP BY / aggregate query over one table, sometimes filtered.

    Value pools are kept small so seeds split between fast-path exact DP
    runs and deliberate declines (two rows able to produce the same child
    tuple), both checked against the naive oracle.
    """
    rng = np.random.default_rng(7000 + seed)
    n_rows = int(rng.integers(1, 5))
    rows = []
    for _ in range(n_rows):
        group: object = int(rng.integers(0, 3))
        if rng.random() < 0.3:
            group = Null([0, 1])
        value: object = (
            TYPE_POOLS["float"][int(rng.integers(0, 5))]
            if rng.random() < 0.4
            else TYPE_POOLS["int"][int(rng.integers(0, 5))]
        )
        if rng.random() < 0.35:
            value = Null([1, 2.5])
        tag = TYPE_POOLS["str"][int(rng.integers(0, 4))]
        rows.append((group, value, tag))
    table = CoddTable(("g", "v", "tag"), rows)

    child = Scan("T")
    if rng.random() < 0.4:
        child = Select(child, random_comparison(rng, ("g",), ["int"]))
    funcs = ["count", "sum", "min", "max"]
    n_aggs = int(rng.integers(1, 3))
    picked = rng.choice(len(funcs), size=n_aggs, replace=False)
    specs = []
    for idx in picked:
        func = funcs[int(idx)]
        attribute = None if func == "count" and rng.random() < 0.5 else "v"
        specs.append(AggregateSpec(func, attribute, f"{func}_out"))
    group_by = ("g",) if rng.random() < 0.8 else ()
    query = Aggregate(child, group_by, tuple(specs))
    return query, {"T": table}, f"seed={seed} group_by={group_by} n_aggs={n_aggs}"


def random_database_case(seed: int):
    """A two-table database plus a filtered join query over it."""
    rng = np.random.default_rng(1000 + seed)
    left = random_table(rng, ("key", "a"), ["int", "int"])
    right = random_table(rng, ("key", "b"), ["int", "str"])
    query = Join(Scan("L"), Scan("R"))
    if rng.random() < 0.8:
        # Filter directly above one scan: exactly what pruning targets.
        query = Join(
            Select(Scan("L"), random_comparison(rng, ("key", "a"), ["int", "int"])),
            Scan("R"),
        )
    if rng.random() < 0.5:
        query = Select(
            query, random_comparison(rng, ("key", "a", "b"), ["int", "int", "str"])
        )
    if rng.random() < 0.7:
        query = Project(query, ("key",))
    database = {"L": left, "R": right}
    if rng.random() < 0.3:
        database["unused"] = random_table(rng, ("z",), ["int"])
    return query, database, f"seed={seed}"
