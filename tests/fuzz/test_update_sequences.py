"""The fuzzed update-sequence differential harness.

The delta-maintenance layer (:mod:`repro.core.deltas` for CP tallies,
:meth:`repro.codd.vectorized.StackedTable.with_cell_fixed` for Codd
grids) promises O(Δ) updates whose results are **bit-identical** to a
full recompute — counts as Python big ints, weighted probabilities as
Fractions, Codd relations exact. This harness fuzzes that promise over
random *sequences* of writes, not single deltas:

* 30 seeded random interleavings of :class:`~repro.core.deltas.CellRepair`
  / :class:`~repro.core.deltas.RowAppend` /
  :class:`~repro.core.deltas.RowDelete` against a warm
  :class:`~repro.core.deltas.DeltaMaintainedState`; after **every** step
  the maintained similarities, counts and certain labels must equal a
  from-scratch recompute on the delta'd dataset, and every capable planner
  backend must return the same count vectors on the current dataset
  (including the batch backend fed the maintained
  :class:`~repro.core.batch_engine.PreparedBatch` — the warm-state handoff
  the service registry rides).
* seeded chains of single-cell Codd fixes; after every fix the surgically
  updated :class:`~repro.codd.vectorized.StackedTable` must be
  cell-for-cell identical to a freshly built grid, and the vectorized
  certain/possible answers over the updated grid must match the naive
  world-enumeration oracle exactly.

Kernels are restricted to ``euclidean`` and ``rbf``: their ``pairwise``
reduces only over the feature axis per element, so a similarity block
computed for an appended row alone is bit-identical to the corresponding
slice of a full pairwise — the property the maintained state relies on
(``linear``/``cosine`` go through BLAS reductions whose float ordering
may differ between block shapes).

The dataset/query generators are shared with the other differential
harnesses via :mod:`fuzz.cp_cases` and :mod:`fuzz.codd_cases`.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from fuzz.codd_cases import TYPE_POOLS, random_predicate, random_table
from fuzz.cp_cases import BACKENDS, random_dataset, random_weights
from repro.codd.algebra import Project, Scan, Select
from repro.codd.certain import certain_answers_naive, possible_answers_naive
from repro.codd.codd_table import Null
from repro.codd.vectorized import (
    StackedTable,
    certain_answers_vectorized,
    possible_answers_vectorized,
)
from repro.core.deltas import (
    CellRepair,
    DeltaMaintainedState,
    RowAppend,
    RowDelete,
    apply_delta_to_dataset,
)
from repro.core.planner import (
    ExecutionOptions,
    capable_backends,
    execute_query,
    make_query,
)

UPDATE_SEEDS = list(range(30))

#: Kernels whose pairwise is per-element deterministic (see module docs).
_KERNELS = ("euclidean", "rbf")


def random_update_sequence(seed: int):
    """One seeded random case: ``(dataset, test_X, k, kernel, deltas)``.

    The delta list is always *valid* for sequential application: repairs
    target currently-dirty rows, deletes respect ``k`` and never empty the
    dataset, appends occasionally grow the label space.
    """
    rng = np.random.default_rng(2000 + seed)
    n_labels = int(rng.integers(2, 4))
    dataset = random_dataset(rng, n_labels)
    kernel = _KERNELS[seed % len(_KERNELS)]
    k = int(rng.integers(1, 4))
    test_X = rng.normal(size=(int(rng.integers(2, 5)), 2))

    deltas = []
    current = dataset
    for _ in range(int(rng.integers(5, 9))):
        ops = ["append"]
        if current.uncertain_rows():
            ops += ["repair", "repair"]  # writes skew toward cleaning
        if current.n_rows > max(1, k):
            ops.append("delete")
        op = str(rng.choice(ops))
        if op == "repair":
            dirty = current.uncertain_rows()
            row = int(dirty[int(rng.integers(0, len(dirty)))])
            candidate = int(rng.integers(0, current.candidate_counts()[row]))
            delta = CellRepair(row, candidate)
        elif op == "append":
            m_new = int(rng.integers(1, 4))
            grow = int(rng.random() < 0.25)  # sometimes mint a new label
            label = int(rng.integers(0, current.n_labels)) if not grow else current.n_labels
            delta = RowAppend(rng.normal(size=(m_new, 2)), label)
        else:
            delta = RowDelete(int(rng.integers(0, current.n_rows)))
        deltas.append(delta)
        current = apply_delta_to_dataset(current, delta)
    return dataset, test_X, k, kernel, deltas


class TestMaintainedStateDifferential:
    """O(Δ) maintenance must be bit-identical to recompute after every step."""

    @pytest.mark.parametrize("seed", UPDATE_SEEDS)
    def test_counts_match_full_recompute_after_every_step(self, seed):
        dataset, test_X, k, kernel, deltas = random_update_sequence(seed)
        state = DeltaMaintainedState(dataset, test_X, k=k, kernel=kernel)
        current = dataset
        for step, delta in enumerate(deltas):
            report = state.apply(delta)
            current = apply_delta_to_dataset(current, delta)
            fresh = DeltaMaintainedState(current, test_X, k=k, kernel=kernel)
            where = f"seed={seed} step={step} op={report['op']} row={report['row']}"
            assert state.dataset.fingerprint() == current.fingerprint(), where
            assert np.array_equal(state.sims_matrix(), fresh.sims_matrix()), (
                f"maintained similarities diverged: {where}"
            )
            assert state.counts_all() == fresh.counts_all(), (
                f"maintained counts diverged: {where}"
            )
            assert state.certain_labels() == fresh.certain_labels(), (
                f"maintained certain labels diverged: {where}"
            )

    @pytest.mark.parametrize("seed", UPDATE_SEEDS)
    def test_every_backend_agrees_after_every_step(self, seed):
        """The maintained counts equal what every planner backend computes
        from scratch on the current dataset — including the batch backend
        handed the maintained PreparedBatch (the registry's warm path)."""
        dataset, test_X, k, kernel, deltas = random_update_sequence(seed)
        state = DeltaMaintainedState(dataset, test_X, k=k, kernel=kernel)
        current = dataset
        for step, delta in enumerate(deltas):
            state.apply(delta)
            current = apply_delta_to_dataset(current, delta)
            expected = state.counts_all()
            query = make_query(current, test_X, kind="counts", k=k, kernel=kernel)
            capable = [b.name for b in capable_backends(query) if b.name in BACKENDS]
            assert "sequential" in capable
            for name in capable:
                values = execute_query(
                    query, backend=name, options=ExecutionOptions(cache=False)
                ).values
                assert values == expected, (
                    f"{name} diverged from maintained counts: seed={seed} step={step}"
                )
            warm = execute_query(
                query,
                backend="batch",
                options=ExecutionOptions(cache=False, prepared=state.prepared_batch()),
            ).values
            assert warm == expected, (
                f"batch over the maintained PreparedBatch diverged: "
                f"seed={seed} step={step}"
            )

    @pytest.mark.parametrize("seed", UPDATE_SEEDS[::3])
    def test_weighted_probabilities_exact_after_updates(self, seed):
        """Weighted queries over the maintained PreparedBatch return the
        same Fractions as a cold run — probabilities survive the warm
        handoff exactly, not approximately."""
        dataset, test_X, k, kernel, deltas = random_update_sequence(seed)
        state = DeltaMaintainedState(dataset, test_X, k=k, kernel=kernel)
        for delta in deltas:
            state.apply(delta)
        current = state.dataset
        weights = random_weights(np.random.default_rng(9000 + seed), current)
        query = make_query(
            current, test_X, kind="counts", flavor="weighted",
            k=k, kernel=kernel, weights=weights,
        )
        cold = execute_query(
            query, backend="sequential", options=ExecutionOptions(cache=False)
        ).values
        warm = execute_query(
            query,
            backend="batch",
            options=ExecutionOptions(cache=False, prepared=state.prepared_batch()),
        ).values
        assert warm == cold, f"seed={seed}"
        flat = [p for point in cold for p in point]
        assert flat and all(isinstance(p, Fraction) for p in flat)
        assert all(sum(point) == 1 for point in cold)

    def test_generator_covers_every_delta_kind(self):
        """The seed range must exercise repairs, appends, deletes, both
        kernels and label-space growth — otherwise the harness proves
        less than it claims."""
        ops = set()
        kernels = set()
        grew_labels = 0
        total = 0
        for seed in UPDATE_SEEDS:
            dataset, _, _, kernel, deltas = random_update_sequence(seed)
            kernels.add(kernel)
            total += len(deltas)
            current = dataset
            for delta in deltas:
                ops.add(type(delta).__name__)
                before = current.n_labels
                current = apply_delta_to_dataset(current, delta)
                grew_labels += current.n_labels > before
        assert ops == {"CellRepair", "RowAppend", "RowDelete"}
        assert kernels == set(_KERNELS)
        assert grew_labels >= 3, "too few appends mint a new label"
        assert total >= 5 * len(UPDATE_SEEDS)


def random_fix_sequence(seed: int):
    """A Codd table plus a valid chain of single-NULL-cell fixes.

    Returns ``(table, fixes, attrs, types)`` where each fix is a
    ``(row, column, value)`` triple valid at its position in the chain.
    """
    rng = np.random.default_rng(3000 + seed)
    arity = int(rng.integers(1, 4))
    attrs = tuple(f"c{i}" for i in range(arity))
    types = [str(rng.choice(list(TYPE_POOLS))) for _ in range(arity)]
    table = random_table(rng, attrs, types)
    while not table.variables:  # every seed must exercise at least one fix
        table = random_table(rng, attrs, types)
    fixes = []
    current = table
    for _ in range(int(rng.integers(1, 5))):
        variables = current.variables
        if not variables:
            break
        row, column, null = variables[int(rng.integers(0, len(variables)))]
        value = null.domain[int(rng.integers(0, len(null.domain)))]
        fixes.append((row, column, value))
        current = current.with_cell_fixed(row, column, value)
    assert fixes, "generator invariant: the table has at least one NULL"
    return table, fixes, attrs, types


class TestCoddGridUpdateDifferential:
    """Surgical grid updates must equal fresh grids and the naive oracle."""

    @pytest.mark.parametrize("seed", UPDATE_SEEDS)
    def test_fixed_grid_identical_to_rebuilt_grid(self, seed):
        table, fixes, _, _ = random_fix_sequence(seed)
        stacked = StackedTable(table)
        current = table
        for step, (row, column, value) in enumerate(fixes):
            stacked = stacked.with_cell_fixed(row, column, value)
            current = current.with_cell_fixed(row, column, value)
            rebuilt = StackedTable(current)
            where = f"seed={seed} step={step} fix=({row},{column},{value!r})"
            assert stacked.table.fingerprint() == current.fingerprint(), where
            assert stacked.total == rebuilt.total, where
            assert np.array_equal(stacked.counts, rebuilt.counts), where
            assert np.array_equal(stacked.offsets, rebuilt.offsets), where
            for c, (col, fresh_col) in enumerate(
                zip(stacked.columns, rebuilt.columns)
            ):
                assert col.tolist() == fresh_col.tolist(), f"{where} column={c}"

    @pytest.mark.parametrize("seed", UPDATE_SEEDS)
    def test_answers_over_updated_grid_match_oracle(self, seed):
        table, fixes, attrs, types = random_fix_sequence(seed)
        rng = np.random.default_rng(4000 + seed)
        query = Select(Scan("T"), random_predicate(rng, attrs, types))
        if rng.random() < 0.6:
            kept = sorted(
                rng.choice(
                    len(attrs), size=int(rng.integers(1, len(attrs) + 1)),
                    replace=False,
                )
            )
            query = Project(query, tuple(attrs[i] for i in kept))
        stacked = StackedTable(table)
        current = table
        for step, (row, column, value) in enumerate(fixes):
            stacked = stacked.with_cell_fixed(row, column, value)
            current = current.with_cell_fixed(row, column, value)
            where = f"seed={seed} step={step}"
            certain = certain_answers_vectorized(
                query, current, name="T", stacked=stacked
            )
            assert certain == certain_answers_naive(query, current, name="T"), where
            possible = possible_answers_vectorized(
                query, current, name="T", stacked=stacked
            )
            assert possible == possible_answers_naive(query, current, name="T"), where
