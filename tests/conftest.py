"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset

# The seeded case generators shared by the differential harnesses live in
# the tests/fuzz package; putting tests/ on sys.path makes `from fuzz...`
# imports work no matter which test directory pytest collects from.
_TESTS_DIR = str(Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


def random_incomplete_dataset(
    rng: np.random.Generator,
    n_rows: int | None = None,
    n_labels: int = 2,
    max_candidates: int = 3,
    n_features: int = 2,
) -> IncompleteDataset:
    """A small random incomplete dataset with every label present."""
    if n_rows is None:
        n_rows = int(rng.integers(max(3, n_labels), 7))
    sets = [
        rng.normal(size=(int(rng.integers(1, max_candidates + 1)), n_features))
        for _ in range(n_rows)
    ]
    labels = rng.integers(0, n_labels, size=n_rows)
    labels[:n_labels] = np.arange(n_labels)  # make sure every label occurs
    return IncompleteDataset(sets, labels)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def figure6_dataset() -> tuple[IncompleteDataset, np.ndarray]:
    """The concrete instance behind the paper's Figure 6 walkthrough.

    One-dimensional points with ``t = 0`` and similarity ``-|x|``; the
    candidate similarity order and tallies match the figure, and the K=1
    counting query must return 6 worlds for label 0 and 2 for label 1.
    """
    dataset = IncompleteDataset(
        [
            np.array([[5.0], [2.0]]),  # C1, label 1
            np.array([[6.0], [4.0]]),  # C2, label 1
            np.array([[3.0], [1.0]]),  # C3, label 0
        ],
        labels=[1, 1, 0],
    )
    return dataset, np.array([0.0])
