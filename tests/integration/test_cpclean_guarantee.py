"""Algorithm 3's termination guarantee, verified literally.

The paper's central cleaning claim: once every validation point is CP'ed,
*any* world of the partially cleaned dataset — including the unknown ground
truth — trains a classifier with the same validation predictions, so the
returned dataset has the ground-truth world's validation accuracy. These
tests enumerate (or sample) the remaining worlds after CPClean terminates
and check the predictions really are identical, end to end through the KNN
substrate rather than through the counting engines that produced the
certificate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.core.dataset import IncompleteDataset
from repro.core.knn import KNNClassifier
from repro.core.worlds import iter_world_choices, sample_worlds
from tests.conftest import random_incomplete_dataset


def partially_cleaned(dataset: IncompleteDataset, fixed: dict[int, int]) -> IncompleteDataset:
    for row, cand in fixed.items():
        dataset = dataset.restrict_row(row, cand)
    return dataset


@pytest.mark.parametrize("seed", [0, 7, 23, 99])
def test_all_remaining_worlds_predict_identically(seed: int) -> None:
    rng = np.random.default_rng(seed)
    dataset = random_incomplete_dataset(rng, n_rows=9, n_labels=2)
    val_X = rng.normal(size=(4, dataset.n_features))
    gt_choice = [int(rng.integers(m)) for m in dataset.candidate_counts()]

    report = run_cp_clean(dataset, val_X, GroundTruthOracle(gt_choice), k=3)
    assert report.cp_fraction_final == 1.0

    remaining = partially_cleaned(dataset, report.final_fixed)
    assert remaining.n_worlds() <= 4096, "test instance grew unexpectedly"

    reference: np.ndarray | None = None
    for choice in iter_world_choices(remaining):
        world = remaining.world(list(choice))
        clf = KNNClassifier(k=3).fit(world, remaining.labels)
        predictions = clf.predict(val_X)
        if reference is None:
            reference = predictions
        else:
            np.testing.assert_array_equal(
                predictions,
                reference,
                err_msg="two worlds of the certified dataset disagree on Dval",
            )


def test_ground_truth_world_is_among_certified_worlds() -> None:
    rng = np.random.default_rng(5)
    dataset = random_incomplete_dataset(rng, n_rows=8, n_labels=2)
    val_X = rng.normal(size=(3, dataset.n_features))
    gt_choice = [int(rng.integers(m)) for m in dataset.candidate_counts()]

    report = run_cp_clean(dataset, val_X, GroundTruthOracle(gt_choice), k=3)
    assert report.cp_fraction_final == 1.0

    # Validity assumption: cleaned rows were answered with the truth, so the
    # ground-truth world survives in the partially cleaned dataset...
    remaining = partially_cleaned(dataset, report.final_fixed)
    gt_world = dataset.world(gt_choice)
    arbitrary_choice = [0] * remaining.n_rows
    arbitrary_world = remaining.world(arbitrary_choice)

    # ... and therefore the arbitrary returned world has the ground-truth
    # world's validation predictions (the paper's accuracy statement).
    gt_predictions = KNNClassifier(k=3).fit(gt_world, dataset.labels).predict(val_X)
    returned_predictions = (
        KNNClassifier(k=3).fit(arbitrary_world, remaining.labels).predict(val_X)
    )
    np.testing.assert_array_equal(returned_predictions, gt_predictions)


def test_guarantee_holds_for_larger_sampled_instance() -> None:
    rng = np.random.default_rng(17)
    dataset = random_incomplete_dataset(rng, n_rows=16, n_labels=2, max_candidates=4)
    val_X = rng.normal(size=(5, dataset.n_features))
    gt_choice = [int(rng.integers(m)) for m in dataset.candidate_counts()]

    report = run_cp_clean(dataset, val_X, GroundTruthOracle(gt_choice), k=3)
    assert report.cp_fraction_final == 1.0

    remaining = partially_cleaned(dataset, report.final_fixed)
    reference: np.ndarray | None = None
    for world in sample_worlds(remaining, n_samples=40, seed=3):
        clf = KNNClassifier(k=3).fit(world, remaining.labels)
        predictions = clf.predict(val_X)
        if reference is None:
            reference = predictions
        else:
            np.testing.assert_array_equal(predictions, reference)
