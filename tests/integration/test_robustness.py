"""Failure-injection and robustness tests across the cleaning pipeline."""

import numpy as np
import pytest

from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.oracle import GroundTruthOracle, NoisyOracle
from repro.core.dataset import IncompleteDataset
from repro.core.queries import q2_counts
from repro.data.task import build_cleaning_task


class TestNoisyOracle:
    def test_cpclean_still_terminates_with_unreliable_human(self):
        """A fallible human slows convergence but the loop must still end:
        every answer, right or wrong, makes one more row certain."""
        task = build_cleaning_task("supreme", n_train=40, n_val=8, n_test=40, seed=4)
        oracle = NoisyOracle(
            task.gt_choice,
            task.incomplete.candidate_counts(),
            error_rate=0.5,
            seed=0,
        )
        report = run_cp_clean(task.incomplete, task.val_X, oracle, k=task.k)
        assert report.cp_fraction_final == 1.0
        assert report.n_cleaned <= len(task.dirty_rows)

    def test_noisy_answers_stay_in_candidate_range(self):
        task = build_cleaning_task("supreme", n_train=40, n_val=8, n_test=40, seed=4)
        counts = task.incomplete.candidate_counts()
        oracle = NoisyOracle(task.gt_choice, counts, error_rate=1.0, seed=1)
        for row in task.dirty_rows:
            answer = oracle(row)
            assert 0 <= answer < counts[row]


class TestDegenerateDatasets:
    def test_all_rows_dirty(self):
        rng = np.random.default_rng(0)
        sets = [rng.normal(size=(3, 2)) for _ in range(5)]
        labels = np.array([0, 1, 0, 1, 0])
        dataset = IncompleteDataset(sets, labels)
        counts = q2_counts(dataset, rng.normal(size=2), k=3)
        assert sum(counts) == 3**5

    def test_no_rows_dirty(self):
        rng = np.random.default_rng(1)
        dataset = IncompleteDataset.from_complete(rng.normal(size=(6, 2)), [0, 1, 0, 1, 0, 1])
        counts = q2_counts(dataset, rng.normal(size=2), k=3)
        assert sorted(counts) == [0, 1]

    def test_single_label_dataset_is_always_certain(self):
        rng = np.random.default_rng(2)
        sets = [rng.normal(size=(2, 2)) for _ in range(4)]
        dataset = IncompleteDataset(sets, [0, 0, 0, 0])
        counts = q2_counts(dataset, rng.normal(size=2), k=3)
        assert counts[0] == dataset.n_worlds()

    def test_one_row_dataset(self):
        dataset = IncompleteDataset([np.array([[1.0], [2.0]])], labels=[1])
        counts = q2_counts(dataset, np.array([0.0]), k=1)
        assert counts == [0, 2]

    def test_identical_candidates_across_rows(self):
        """Distinct rows may propose identical repair values."""
        dataset = IncompleteDataset(
            [np.array([[1.0], [2.0]]), np.array([[1.0], [2.0]]), np.array([[1.5]])],
            labels=[0, 1, 0],
        )
        from repro.core.bruteforce import brute_force_counts

        t = np.array([0.0])
        for k in (1, 2, 3):
            assert q2_counts(dataset, t, k=k) == brute_force_counts(dataset, t, k=k)

    def test_extreme_feature_magnitudes(self):
        dataset = IncompleteDataset(
            [np.array([[1e12], [1e-12]]), np.array([[5.0]]), np.array([[-3.0]])],
            labels=[0, 1, 0],
        )
        counts = q2_counts(dataset, np.array([0.0]), k=1)
        assert sum(counts) == 2


class TestCleaningEdgeCases:
    def test_cleaning_with_empty_validation_is_trivially_done(self):
        task = build_cleaning_task("supreme", n_train=40, n_val=8, n_test=40, seed=4)
        # An empty validation matrix: nothing to certify, no cleaning needed.
        empty_val = np.zeros((0, task.incomplete.n_features))
        report = run_cp_clean(
            task.incomplete, empty_val, GroundTruthOracle(task.gt_choice), k=task.k
        )
        assert report.n_cleaned == 0

    def test_budget_larger_than_dirty_rows(self):
        task = build_cleaning_task("supreme", n_train=40, n_val=8, n_test=40, seed=4)
        report = run_cp_clean(
            task.incomplete,
            task.val_X,
            GroundTruthOracle(task.gt_choice),
            k=task.k,
            max_cleaned=10_000,
        )
        assert report.cp_fraction_final == 1.0
        assert not report.terminated_early
