"""Integration tests for the paper's central claims and invariants."""

import numpy as np
import pytest

from repro.cleaning.cp_clean import run_cp_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.core.dataset import IncompleteDataset
from repro.core.knn import KNNClassifier
from repro.core.prepared import PreparedQuery
from repro.core.queries import certain_label, q2_counts
from repro.data.task import build_cleaning_task
from tests.conftest import random_incomplete_dataset


class TestCPStability:
    """§2: 'as long as a tuple can be CP'ed, the prediction will remain the
    same regardless of further cleaning efforts'."""

    def test_cp_survives_any_row_restriction(self):
        rng = np.random.default_rng(0)
        checked = 0
        while checked < 20:
            dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
            t = rng.normal(size=dataset.n_features)
            label = certain_label(dataset, t, k=3)
            if label is None or not dataset.uncertain_rows():
                continue
            checked += 1
            for row in dataset.uncertain_rows():
                for cand in range(dataset.candidates(row).shape[0]):
                    restricted = dataset.restrict_row(row, cand)
                    assert certain_label(restricted, t, k=3) == label

    def test_cp_prediction_matches_every_world(self):
        rng = np.random.default_rng(1)
        from repro.core.worlds import iter_worlds

        checked = 0
        while checked < 10:
            dataset = random_incomplete_dataset(rng, n_rows=5, max_candidates=2)
            t = rng.normal(size=dataset.n_features)
            label = certain_label(dataset, t, k=1)
            if label is None:
                continue
            checked += 1
            for _choice, features in iter_worlds(dataset):
                clf = KNNClassifier(k=1).fit(features, dataset.labels)
                assert clf.predict_one(t) == label


class TestCleaningGuarantee:
    """§4: once all validation points are CP'ed, any world of the partially
    cleaned dataset has the same validation accuracy as the ground truth."""

    def test_any_world_after_cpclean_agrees_on_validation(self):
        task = build_cleaning_task("supreme", n_train=40, n_val=8, n_test=40, seed=5)
        oracle = GroundTruthOracle(task.gt_choice)
        report = run_cp_clean(task.incomplete, task.val_X, oracle, k=task.k)
        assert report.cp_fraction_final == 1.0

        # Sample several worlds of the partially cleaned dataset; their
        # validation predictions must be identical.
        rng = np.random.default_rng(0)
        counts = task.incomplete.candidate_counts()
        reference = None
        for _ in range(5):
            choice = [
                report.final_fixed.get(row, int(rng.integers(0, counts[row])))
                for row in range(task.incomplete.n_rows)
            ]
            world = task.incomplete.world(choice)
            clf = KNNClassifier(k=task.k).fit(world, task.train_labels)
            predictions = clf.predict(task.val_X).tolist()
            if reference is None:
                reference = predictions
            assert predictions == reference

        # ...and match the ground-truth world's validation predictions
        # (the oracle world is one of the possible worlds).
        gt_clf = KNNClassifier(k=task.k).fit(task.ground_truth_world(), task.train_labels)
        assert gt_clf.predict(task.val_X).tolist() == reference


class TestEntropyProperties:
    def test_cleaning_never_increases_total_entropy_in_expectation(self):
        """Conditioning reduces entropy on average (information never hurts)."""
        from repro.core.entropy import prediction_entropy

        rng = np.random.default_rng(2)
        tried = 0
        while tried < 15:
            dataset = random_incomplete_dataset(rng, n_rows=6, max_candidates=3)
            dirty = dataset.uncertain_rows()
            if not dirty:
                continue
            tried += 1
            t = rng.normal(size=dataset.n_features)
            query = PreparedQuery(dataset, t, k=3)
            base_counts = query.counts()
            base_entropy = prediction_entropy(base_counts)
            total_worlds = sum(base_counts)
            for row in dirty:
                variants = query.counts_per_fixing(row)
                # expectation weighted by the share of worlds each fixing keeps
                expected = sum(
                    (sum(c) / total_worlds) * prediction_entropy(c) for c in variants
                )
                assert expected <= base_entropy + 1e-9

    def test_q2_defines_probability_over_labels(self):
        rng = np.random.default_rng(3)
        from repro.core.entropy import counts_to_probabilities

        for _ in range(10):
            dataset = random_incomplete_dataset(rng, n_labels=3)
            t = rng.normal(size=dataset.n_features)
            probs = counts_to_probabilities(q2_counts(dataset, t, k=2))
            assert sum(probs) == pytest.approx(1.0)


class TestKernelInvariance:
    def test_counts_identical_under_rank_preserving_kernels(self):
        """Q2 depends only on the similarity *order*, so Euclidean and RBF
        kernels must produce identical counts."""
        rng = np.random.default_rng(4)
        for _ in range(10):
            dataset = random_incomplete_dataset(rng)
            t = rng.normal(size=dataset.n_features)
            a = q2_counts(dataset, t, k=3, kernel="euclidean")
            b = q2_counts(dataset, t, k=3, kernel="rbf")
            assert a == b

    def test_counts_invariant_under_feature_translation(self):
        rng = np.random.default_rng(5)
        dataset = random_incomplete_dataset(rng)
        t = rng.normal(size=dataset.n_features)
        shift = rng.normal(size=dataset.n_features)
        shifted = IncompleteDataset(
            [dataset.candidates(i) + shift for i in range(dataset.n_rows)],
            dataset.labels,
        )
        assert q2_counts(dataset, t, k=2) == q2_counts(shifted, t + shift, k=2)
