"""Every shipped example must run to completion (they contain assertions)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found() -> None:
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script: pathlib.Path) -> None:
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
