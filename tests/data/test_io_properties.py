"""Property-based round trips for the CSV layer.

The stable property is read → write → read: once a file has been parsed
into a (Table, CsvSchema) pair, writing it back out and re-reading must
reproduce the table and schema exactly (a fresh first read may assign
different category codes than an arbitrary in-memory table, so the
round trip is anchored on the file, not on the table).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.io import read_csv, write_csv


def csv_cell() -> st.SearchStrategy[str]:
    return st.one_of(
        st.just(""),
        st.just("NA"),
        st.sampled_from(["0", "1.5", "-3.25", "100"]),
        st.sampled_from(["acme", "globex", "a b", "x,y", 'quo"te']),
    )


def csv_files() -> st.SearchStrategy[list[list[str]]]:
    n_cols = st.integers(min_value=1, max_value=3)
    return n_cols.flatmap(
        lambda width: st.lists(
            st.lists(csv_cell(), min_size=width, max_size=width),
            min_size=1,
            max_size=6,
        )
    )


class TestReadWriteReadRoundTrip:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(rows=csv_files(), label=st.sampled_from(["yes", "no"]))
    def test_roundtrip_is_identity(self, tmp_path_factory, rows, label) -> None:
        tmp_path = tmp_path_factory.mktemp("csv_prop")
        width = len(rows[0])
        header = [f"c{i}" for i in range(width)] + ["cls"]
        path = tmp_path / "in.csv"
        import csv as _csv

        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = _csv.writer(handle)
            writer.writerow(header)
            for i, row in enumerate(rows):
                writer.writerow(list(row) + [label if i % 2 == 0 else "other"])

        table1, schema1 = read_csv(path, label_column="cls")
        out = tmp_path / "out.csv"
        write_csv(table1, out, schema=schema1)
        table2, schema2 = read_csv(out, label_column="cls")

        assert schema2.numeric_names == schema1.numeric_names
        assert schema2.categorical_names == schema1.categorical_names
        assert schema2.label_encoding == schema1.label_encoding
        assert schema2.category_encodings == schema1.category_encodings
        np.testing.assert_array_equal(
            np.isnan(table1.numeric), np.isnan(table2.numeric)
        )
        np.testing.assert_allclose(
            np.nan_to_num(table1.numeric), np.nan_to_num(table2.numeric)
        )
        np.testing.assert_array_equal(table1.categorical, table2.categorical)
        np.testing.assert_array_equal(table1.labels, table2.labels)
