"""Unit tests for the synthetic table generator."""

import numpy as np
import pytest

from repro.core.knn import KNNClassifier
from repro.data.preprocess import TableEncoder
from repro.data.synth import SyntheticSpec, generate_table


class TestSpecValidation:
    def test_needs_an_attribute(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            SyntheticSpec(n_rows=10, n_numeric=0, n_categorical=0)

    def test_rejects_single_label(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=10, n_numeric=2, n_categorical=0, n_labels=1)

    def test_rejects_bad_structure(self):
        with pytest.raises(ValueError, match="structure"):
            SyntheticSpec(n_rows=10, n_numeric=2, n_categorical=0, structure="spiral")

    def test_rejects_negative_separation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=10, n_numeric=2, n_categorical=0, class_separation=-1)


class TestGeneration:
    def test_shapes_and_completeness(self):
        spec = SyntheticSpec(n_rows=50, n_numeric=3, n_categorical=2)
        table = generate_table(spec, seed=0)
        assert table.n_rows == 50
        assert table.n_numeric == 3
        assert table.n_categorical == 2
        assert table.missing_rate() == 0.0

    def test_deterministic_from_seed(self):
        spec = SyntheticSpec(n_rows=30, n_numeric=2, n_categorical=1)
        a = generate_table(spec, seed=5)
        b = generate_table(spec, seed=5)
        assert np.array_equal(a.numeric, b.numeric)
        assert np.array_equal(a.categorical, b.categorical)
        assert np.array_equal(a.labels, b.labels)

    def test_all_labels_present_with_enough_rows(self):
        spec = SyntheticSpec(n_rows=200, n_numeric=2, n_categorical=0, n_labels=3)
        table = generate_table(spec, seed=1)
        assert set(np.unique(table.labels)) == {0, 1, 2}

    def test_categorical_codes_in_range(self):
        spec = SyntheticSpec(n_rows=100, n_numeric=1, n_categorical=2, categories_per_column=6)
        table = generate_table(spec, seed=2)
        assert table.categorical.min() >= 0
        assert table.categorical.max() < 6

    def test_label_noise_flips_labels(self):
        base = SyntheticSpec(n_rows=400, n_numeric=3, n_categorical=0, label_noise=0.0)
        noisy = SyntheticSpec(n_rows=400, n_numeric=3, n_categorical=0, label_noise=0.5)
        a = generate_table(base, seed=3)
        b = generate_table(noisy, seed=3)
        # Same latent draw structure, different labels on a large fraction.
        assert (a.labels != b.labels).mean() > 0.2

    @pytest.mark.parametrize("structure", ["blobs", "concentric"])
    def test_separable_spec_is_learnable(self, structure):
        spec = SyntheticSpec(
            n_rows=300,
            n_numeric=4,
            n_categorical=0,
            class_separation=5.0,
            informative_fraction=0.5,
            label_noise=0.0,
            noise_scale=0.2,
            structure=structure,
        )
        table = generate_table(spec, seed=4)
        encoder = TableEncoder().fit(table)
        X = encoder.encode_table(table)
        clf = KNNClassifier(k=3).fit(X[:200], table.labels[:200])
        accuracy = clf.accuracy(X[200:], table.labels[200:])
        assert accuracy > 0.85, f"{structure} generator is not learnable: {accuracy}"

    def test_multiclass_concentric(self):
        spec = SyntheticSpec(
            n_rows=150, n_numeric=3, n_categorical=0, n_labels=3, structure="concentric"
        )
        table = generate_table(spec, seed=6)
        assert table.n_labels == 3
