"""Unit tests for candidate-repair generation."""

import numpy as np
import pytest

from repro.data.missingness import inject_mcar
from repro.data.repairs import RepairSpace, default_clean
from repro.data.synth import SyntheticSpec, generate_table
from repro.data.table import MISSING_CATEGORY, Table


def dirty_table(seed=0, n_rows=120, n_categorical=2):
    spec = SyntheticSpec(n_rows=n_rows, n_numeric=3, n_categorical=n_categorical)
    table = generate_table(spec, seed=seed)
    return inject_mcar(table, row_rate=0.3, cells_per_row=2, seed=seed)


class TestDefaultClean:
    def test_result_is_complete(self):
        cleaned = default_clean(dirty_table())
        assert cleaned.missing_rate() == 0.0

    def test_numeric_filled_with_observed_mean(self):
        table = dirty_table()
        cleaned = default_clean(table)
        for j in range(table.n_numeric):
            observed = table.numeric[:, j]
            observed = observed[~np.isnan(observed)]
            mask = np.isnan(table.numeric[:, j])
            if mask.any():
                assert np.allclose(cleaned.numeric[mask, j], observed.mean())

    def test_categorical_filled_with_mode(self):
        table = dirty_table()
        cleaned = default_clean(table)
        for j in range(table.n_categorical):
            column = table.categorical[:, j]
            observed = column[column != MISSING_CATEGORY]
            values, counts = np.unique(observed, return_counts=True)
            mode = int(values[np.argmax(counts)])
            mask = column == MISSING_CATEGORY
            if mask.any():
                assert np.all(cleaned.categorical[mask, j] == mode)

    def test_observed_cells_untouched(self):
        table = dirty_table()
        cleaned = default_clean(table)
        mask = ~np.isnan(table.numeric)
        assert np.array_equal(cleaned.numeric[mask], table.numeric[mask])


class TestRepairSpace:
    def test_numeric_candidates_are_the_five_statistics(self):
        table = dirty_table()
        space = RepairSpace(table)
        for j in range(table.n_numeric):
            observed = table.numeric[:, j]
            observed = observed[~np.isnan(observed)]
            cands = space.numeric_candidates[j]
            assert cands[0] == pytest.approx(observed.min())
            assert cands[-1] == pytest.approx(observed.max())
            assert len(cands) <= 5

    def test_categorical_candidates_top4_plus_other(self):
        table = dirty_table()
        space = RepairSpace(table)
        for j in range(table.n_categorical):
            cands = space.categorical_candidates[j]
            assert len(cands) <= 5
            # the "other" code is fresh (not an observed category)
            observed = set(
                int(v)
                for v in table.categorical[:, j][table.categorical[:, j] != MISSING_CATEGORY]
            )
            assert cands[-1] not in observed

    def test_top_categories_are_most_frequent(self):
        table = dirty_table()
        space = RepairSpace(table, top_categories=2)
        for j in range(table.n_categorical):
            column = table.categorical[:, j]
            observed = column[column != MISSING_CATEGORY]
            values, counts = np.unique(observed, return_counts=True)
            best = values[np.argmax(counts)]
            assert space.categorical_candidates[j][0] == best

    def test_clean_row_has_single_repair(self):
        table = dirty_table()
        space = RepairSpace(table)
        clean_rows = [r for r in range(table.n_rows) if r not in set(table.dirty_rows())]
        repairs = space.row_repairs(clean_rows[0])
        assert len(repairs) == 1

    def test_dirty_row_repairs_are_complete_and_capped(self):
        table = dirty_table()
        space = RepairSpace(table, max_row_candidates=10)
        for row in table.dirty_rows():
            repairs = space.row_repairs(int(row))
            assert 1 < len(repairs) <= 10
            for num, cat in repairs:
                assert not np.isnan(num).any()
                assert (cat != MISSING_CATEGORY).all()

    def test_repairs_only_touch_missing_cells(self):
        table = dirty_table()
        space = RepairSpace(table)
        row = int(table.dirty_rows()[0])
        observed_mask = ~np.isnan(table.numeric[row])
        for num, _cat in space.row_repairs(row):
            assert np.array_equal(num[observed_mask], table.numeric[row][observed_mask])

    def test_single_missing_numeric_cell_has_five_or_fewer_repairs(self):
        numeric = np.array([[1.0], [2.0], [3.0], [4.0], [np.nan]])
        table = Table(numeric, np.zeros((5, 0), dtype=np.int64), [0, 1, 0, 1, 0])
        space = RepairSpace(table)
        assert 1 < len(space.row_repairs(4)) <= 5

    def test_apply_global_action(self):
        table = dirty_table()
        space = RepairSpace(table)
        for action in range(space.n_actions):
            cleaned = space.apply_global_action(action)
            assert cleaned.missing_rate() == 0.0

    def test_action_zero_uses_min_and_top1(self):
        table = dirty_table()
        space = RepairSpace(table)
        cleaned = space.apply_global_action(0)
        for j in range(table.n_numeric):
            mask = np.isnan(table.numeric[:, j])
            if mask.any():
                assert np.allclose(
                    cleaned.numeric[mask, j], space.numeric_candidates[j][0]
                )

    def test_action_out_of_range(self):
        space = RepairSpace(dirty_table())
        with pytest.raises(ValueError):
            space.apply_global_action(99)

    def test_cell_candidates_bad_kind(self):
        space = RepairSpace(dirty_table())
        with pytest.raises(ValueError, match="kind"):
            space.cell_candidates("text", 0)

    def test_constant_column_candidates_deduplicated(self):
        numeric = np.array([[2.0], [2.0], [2.0], [np.nan]])
        table = Table(numeric, np.zeros((4, 0), dtype=np.int64), [0, 1, 0, 1])
        space = RepairSpace(table)
        assert len(space.numeric_candidates[0]) == 1
