"""Unit tests for the missing-value injectors."""

import numpy as np
import pytest

from repro.data.missingness import inject_mar, inject_mcar, inject_mnar_by_importance
from repro.data.synth import SyntheticSpec, generate_table


def complete_table(n_rows=200, n_numeric=4, n_categorical=1, seed=0):
    spec = SyntheticSpec(n_rows=n_rows, n_numeric=n_numeric, n_categorical=n_categorical)
    return generate_table(spec, seed=seed)


class TestMCAR:
    def test_row_rate_is_respected(self):
        table = complete_table()
        dirty = inject_mcar(table, row_rate=0.25, seed=0)
        assert dirty.missing_rate() == pytest.approx(0.25, abs=0.01)

    def test_original_untouched(self):
        table = complete_table()
        inject_mcar(table, row_rate=0.5, seed=0)
        assert table.missing_rate() == 0.0

    def test_zero_rate(self):
        table = complete_table()
        assert inject_mcar(table, row_rate=0.0, seed=0).missing_rate() == 0.0

    def test_cells_per_row(self):
        table = complete_table()
        dirty = inject_mcar(table, row_rate=0.2, cells_per_row=2, seed=0)
        missing = dirty.numeric_missing_mask().sum(axis=1) + dirty.categorical_missing_mask().sum(axis=1)
        assert set(missing[missing > 0]) == {2}

    def test_deterministic(self):
        table = complete_table()
        a = inject_mcar(table, row_rate=0.3, seed=9)
        b = inject_mcar(table, row_rate=0.3, seed=9)
        assert np.array_equal(a.numeric_missing_mask(), b.numeric_missing_mask())


class TestMAR:
    def test_driver_column_never_missing(self):
        table = complete_table()
        dirty = inject_mar(table, row_rate=0.4, driver_attribute=0, seed=1)
        assert not np.isnan(dirty.numeric[:, 0]).any()

    def test_missingness_correlates_with_driver(self):
        table = complete_table(n_rows=600)
        dirty = inject_mar(table, row_rate=0.3, driver_attribute=0, seed=2)
        driver = table.numeric[:, 0]
        dirty_rows = np.zeros(table.n_rows, dtype=bool)
        dirty_rows[dirty.dirty_rows()] = True
        assert driver[dirty_rows].mean() > driver[~dirty_rows].mean()

    def test_invalid_driver(self):
        table = complete_table()
        with pytest.raises(ValueError, match="driver_attribute"):
            inject_mar(table, driver_attribute=99)


class TestMNARByImportance:
    def uniform_importances(self, table):
        return np.full(table.n_features, 1.0 / table.n_features)

    def test_row_rate(self):
        table = complete_table()
        imp = self.uniform_importances(table)
        dirty = inject_mnar_by_importance(table, imp, row_rate=0.2, seed=3)
        assert dirty.missing_rate() == pytest.approx(0.2, abs=0.01)

    def test_important_attribute_attracts_missingness(self):
        table = complete_table(n_rows=500)
        importances = np.zeros(table.n_features)
        importances[1] = 1.0  # all mass on attribute 1
        dirty = inject_mnar_by_importance(table, importances, row_rate=0.3, seed=4)
        assert np.isnan(dirty.numeric[:, 1]).sum() > 0
        assert np.isnan(dirty.numeric[:, 0]).sum() == 0

    def test_value_bias_targets_extremes(self):
        table = complete_table(n_rows=800, n_categorical=0)
        imp = self.uniform_importances(table)
        dirty = inject_mnar_by_importance(
            table, imp, row_rate=0.2, value_bias=3.0, value_mode="high", seed=5
        )
        for j in range(table.n_numeric):
            mask = np.isnan(dirty.numeric[:, j])
            if mask.sum() >= 10:
                column = table.numeric[:, j]
                assert column[mask].mean() > column.mean()

    def test_extreme_mode_targets_large_magnitudes(self):
        table = complete_table(n_rows=800, n_categorical=0)
        imp = self.uniform_importances(table)
        dirty = inject_mnar_by_importance(
            table, imp, row_rate=0.2, value_bias=3.0, value_mode="extreme", seed=6
        )
        for j in range(table.n_numeric):
            mask = np.isnan(dirty.numeric[:, j])
            if mask.sum() >= 10:
                column = table.numeric[:, j]
                z = np.abs((column - column.mean()) / column.std())
                assert z[mask].mean() > z.mean()

    def test_importance_shape_checked(self):
        table = complete_table()
        with pytest.raises(ValueError, match="shape"):
            inject_mnar_by_importance(table, np.ones(2), seed=0)

    def test_bad_value_mode(self):
        table = complete_table()
        with pytest.raises(ValueError, match="value_mode"):
            inject_mnar_by_importance(
                table, self.uniform_importances(table), value_mode="low", seed=0
            )

    def test_negative_bias_rejected(self):
        table = complete_table()
        with pytest.raises(ValueError, match="value_bias"):
            inject_mnar_by_importance(
                table, self.uniform_importances(table), value_bias=-1.0, seed=0
            )
