"""Property-based tests (hypothesis) for the data substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.missingness import inject_mcar, inject_mnar_by_importance
from repro.data.preprocess import TableEncoder
from repro.data.repairs import RepairSpace, default_clean
from repro.data.table import MISSING_CATEGORY, Table


@st.composite
def complete_tables(draw, max_rows=40):
    """Random complete mixed-type tables."""
    n = draw(st.integers(8, max_rows))
    d_num = draw(st.integers(1, 3))
    d_cat = draw(st.integers(0, 2))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    numeric = rng.normal(size=(n, d_num)) * draw(st.floats(0.5, 5.0))
    categorical = rng.integers(0, 4, size=(n, d_cat))
    labels = rng.integers(0, 2, size=n)
    return Table(numeric, categorical, labels)


@settings(max_examples=40, deadline=None)
@given(complete_tables(), st.floats(0.0, 0.6), st.integers(0, 2**16))
def test_mcar_row_rate_and_ground_truth_preserved(table, rate, seed):
    dirty = inject_mcar(table, row_rate=rate, seed=seed)
    assert abs(dirty.missing_rate() - rate) <= 1.5 / table.n_rows
    # observed cells equal the ground truth exactly
    mask = ~dirty.numeric_missing_mask()
    assert np.array_equal(dirty.numeric[mask], table.numeric[mask])
    cat_mask = ~dirty.categorical_missing_mask()
    assert np.array_equal(dirty.categorical[cat_mask], table.categorical[cat_mask])


@settings(max_examples=30, deadline=None)
@given(complete_tables(), st.integers(0, 2**16))
def test_mnar_respects_importance_support(table, seed):
    rng = np.random.default_rng(seed)
    importances = rng.dirichlet(np.ones(table.n_features))
    dirty = inject_mnar_by_importance(table, importances, row_rate=0.3, seed=seed)
    assert dirty.missing_rate() <= 0.35
    # labels never change
    assert np.array_equal(dirty.labels, table.labels)


@settings(max_examples=30, deadline=None)
@given(complete_tables(), st.integers(0, 2**16))
def test_default_clean_roundtrip_on_dirty_tables(table, seed):
    dirty = inject_mcar(table, row_rate=0.4, cells_per_row=2, seed=seed)
    cleaned = default_clean(dirty)
    assert cleaned.missing_rate() == 0.0
    # idempotent on complete tables
    again = default_clean(cleaned)
    assert np.array_equal(again.numeric, cleaned.numeric)
    assert np.array_equal(again.categorical, cleaned.categorical)


@settings(max_examples=30, deadline=None)
@given(complete_tables(), st.integers(0, 2**16))
def test_repair_space_candidates_contain_column_extremes(table, seed):
    dirty = inject_mcar(table, row_rate=0.4, seed=seed)
    space = RepairSpace(dirty)
    for j in range(dirty.n_numeric):
        observed = dirty.numeric[:, j]
        observed = observed[~np.isnan(observed)]
        candidates = space.numeric_candidates[j]
        assert abs(candidates.min() - observed.min()) < 1e-9
        assert abs(candidates.max() - observed.max()) < 1e-9


@settings(max_examples=30, deadline=None)
@given(complete_tables(), st.integers(0, 2**16))
def test_row_repairs_cover_every_dirty_row_completely(table, seed):
    dirty = inject_mcar(table, row_rate=0.3, cells_per_row=2, seed=seed)
    space = RepairSpace(dirty, max_row_candidates=30)
    for row in range(dirty.n_rows):
        repairs = space.row_repairs(row)
        assert 1 <= len(repairs) <= 30
        for num, cat in repairs:
            assert not np.isnan(num).any()
            assert (cat != MISSING_CATEGORY).all()


@settings(max_examples=30, deadline=None)
@given(complete_tables())
def test_encoder_output_is_finite_and_stable(table):
    encoder = TableEncoder().fit(table)
    X = encoder.encode_table(table)
    assert X.shape == (table.n_rows, encoder.n_output_features)
    assert np.all(np.isfinite(X))
    # encoding twice gives the same matrix
    assert np.array_equal(X, encoder.encode_table(table))
