"""CSV reading/writing: typing, missing tokens, encodings, round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import MISSING_TOKENS, CsvSchema, read_csv, write_csv
from repro.data.table import MISSING_CATEGORY, Table


def write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


@pytest.fixture
def dirty_csv(tmp_path):
    path = tmp_path / "products.csv"
    write_lines(
        path,
        [
            "weight,brand,price_band",
            "1.5,acme,high",
            ",globex,low",
            "2.25,,high",
            "0.75,initech,low",
            "NaN,acme,high",
        ],
    )
    return path


class TestReadCsv:
    def test_column_typing(self, dirty_csv) -> None:
        table, schema = read_csv(dirty_csv, label_column="price_band")
        assert schema.numeric_names == ["weight"]
        assert schema.categorical_names == ["brand"]
        assert table.n_rows == 5

    def test_missing_cells_detected(self, dirty_csv) -> None:
        table, _ = read_csv(dirty_csv, label_column="price_band")
        assert np.isnan(table.numeric[1, 0])
        assert np.isnan(table.numeric[4, 0])  # "NaN" token
        assert table.categorical[2, 0] == MISSING_CATEGORY
        assert sorted(table.dirty_rows().tolist()) == [1, 2, 4]

    def test_label_encoding_in_first_appearance_order(self, dirty_csv) -> None:
        table, schema = read_csv(dirty_csv, label_column="price_band")
        assert schema.label_encoding == ["high", "low"]
        assert table.labels.tolist() == [0, 1, 0, 1, 0]
        assert schema.decode_label(1) == "low"

    def test_category_encoding_and_decoding(self, dirty_csv) -> None:
        table, schema = read_csv(dirty_csv, label_column="price_band")
        assert schema.category_encodings["brand"] == ["acme", "globex", "initech"]
        assert schema.decode_category("brand", 0) == "acme"
        assert schema.decode_category("brand", MISSING_CATEGORY) == "<missing>"

    def test_all_missing_tokens_recognised(self, tmp_path) -> None:
        path = tmp_path / "tokens.csv"
        tokens = sorted(MISSING_TOKENS - {""})
        rows = [f"{tok},x" for tok in tokens] + ["1.0,x", ",x"]
        write_lines(path, ["value,cls"] + rows)
        table, _ = read_csv(path, label_column="cls")
        missing = np.isnan(table.numeric[:, 0])
        assert missing.tolist() == [True] * len(tokens) + [False, True]

    def test_mixed_column_is_categorical(self, tmp_path) -> None:
        path = tmp_path / "mixed.csv"
        write_lines(path, ["col,cls", "1.5,a", "two,a", "3,b"])
        table, schema = read_csv(path, label_column="cls")
        assert schema.categorical_names == ["col"]
        assert table.n_numeric == 0

    def test_all_missing_column_is_categorical(self, tmp_path) -> None:
        path = tmp_path / "void.csv"
        write_lines(path, ["col,cls", ",a", "NA,b"])
        table, schema = read_csv(path, label_column="cls")
        assert schema.categorical_names == ["col"]
        assert (table.categorical[:, 0] == MISSING_CATEGORY).all()

    def test_missing_label_rejected(self, tmp_path) -> None:
        path = tmp_path / "badlabel.csv"
        write_lines(path, ["x,cls", "1.0,a", "2.0,"])
        with pytest.raises(ValueError, match="certain labels"):
            read_csv(path, label_column="cls")

    def test_unknown_label_column_rejected(self, dirty_csv) -> None:
        with pytest.raises(ValueError, match="label column"):
            read_csv(dirty_csv, label_column="nope")

    def test_duplicate_header_rejected(self, tmp_path) -> None:
        path = tmp_path / "dup.csv"
        write_lines(path, ["a,a,cls", "1,2,x"])
        with pytest.raises(ValueError, match="duplicate"):
            read_csv(path, label_column="cls")

    def test_ragged_row_rejected(self, tmp_path) -> None:
        path = tmp_path / "ragged.csv"
        write_lines(path, ["a,cls", "1,x,extra"])
        with pytest.raises(ValueError, match="fields"):
            read_csv(path, label_column="cls")

    def test_empty_file_rejected(self, tmp_path) -> None:
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path, label_column="cls")

    def test_quoted_fields_with_commas(self, tmp_path) -> None:
        path = tmp_path / "quoted.csv"
        write_lines(
            path,
            [
                "desc,weight,cls",
                '"crib, grey",1.5,a',
                '"stroller, blue",,b',
            ],
        )
        table, schema = read_csv(path, label_column="cls")
        assert schema.category_encodings["desc"] == ["crib, grey", "stroller, blue"]
        assert np.isnan(table.numeric[1, 0])

    def test_quoted_roundtrip(self, tmp_path) -> None:
        path = tmp_path / "quoted.csv"
        write_lines(path, ["desc,cls", '"a, b",x', "plain,y"])
        table, schema = read_csv(path, label_column="cls")
        out = tmp_path / "out.csv"
        write_csv(table, out, schema=schema)
        table2, schema2 = read_csv(out, label_column="cls")
        assert schema2.category_encodings == schema.category_encodings
        np.testing.assert_array_equal(table.categorical, table2.categorical)

    def test_custom_delimiter(self, tmp_path) -> None:
        path = tmp_path / "semi.csv"
        write_lines(path, ["x;cls", "1.0;a", "2.0;b"])
        table, _ = read_csv(path, label_column="cls", delimiter=";")
        assert table.n_rows == 2
        assert table.numeric[1, 0] == 2.0


class TestWriteCsv:
    def test_roundtrip_preserves_everything(self, dirty_csv, tmp_path) -> None:
        table, schema = read_csv(dirty_csv, label_column="price_band")
        out = tmp_path / "roundtrip.csv"
        write_csv(table, out, schema=schema)
        table2, schema2 = read_csv(out, label_column="price_band")
        np.testing.assert_array_equal(
            np.isnan(table.numeric), np.isnan(table2.numeric)
        )
        np.testing.assert_allclose(
            np.nan_to_num(table.numeric), np.nan_to_num(table2.numeric)
        )
        np.testing.assert_array_equal(table.categorical, table2.categorical)
        np.testing.assert_array_equal(table.labels, table2.labels)
        assert schema2.label_encoding == schema.label_encoding
        assert schema2.category_encodings == schema.category_encodings

    def test_write_without_schema_uses_codes(self, tmp_path) -> None:
        table = Table(
            numeric=np.array([[1.0], [np.nan]]),
            categorical=np.array([[0], [MISSING_CATEGORY]]),
            labels=np.array([0, 1]),
            numeric_names=["x"],
            categorical_names=["c"],
        )
        out = tmp_path / "codes.csv"
        write_csv(table, out)
        lines = out.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0] == "x,c,label"
        assert lines[1] == "1.0,0,0"
        assert lines[2] == ",,1"

    def test_roundtrip_feeds_cleaning_pipeline(self, dirty_csv) -> None:
        # The loaded table plugs straight into the repair-space generator.
        from repro.data.repairs import RepairSpace

        table, _ = read_csv(dirty_csv, label_column="price_band")
        space = RepairSpace(table)
        assert len(space.numeric_candidates) == table.n_numeric
