"""Unit tests for the mixed-type Table container."""

import numpy as np
import pytest

from repro.data.table import MISSING_CATEGORY, Table


def sample_table() -> Table:
    numeric = np.array([[1.0, 2.0], [np.nan, 4.0], [5.0, 6.0]])
    categorical = np.array([[0], [1], [MISSING_CATEGORY]])
    return Table(numeric, categorical, labels=[0, 1, 0])


class TestConstruction:
    def test_shapes(self):
        table = sample_table()
        assert table.n_rows == 3
        assert table.n_numeric == 2
        assert table.n_categorical == 1
        assert table.n_features == 3
        assert table.n_labels == 2

    def test_default_names(self):
        table = sample_table()
        assert table.numeric_names == ["num_0", "num_1"]
        assert table.categorical_names == ["cat_0"]

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            Table(np.zeros((2, 1)), np.zeros((3, 1), dtype=int), labels=[0, 1])

    def test_name_length_mismatch(self):
        with pytest.raises(ValueError, match="numeric_names"):
            Table(np.zeros((1, 2)), np.zeros((1, 0), dtype=int), [0], numeric_names=["only_one"])


class TestMissingness:
    def test_masks(self):
        table = sample_table()
        assert table.numeric_missing_mask().tolist() == [
            [False, False],
            [True, False],
            [False, False],
        ]
        assert table.categorical_missing_mask().tolist() == [[False], [False], [True]]

    def test_dirty_rows(self):
        assert sample_table().dirty_rows().tolist() == [1, 2]

    def test_missing_rate_is_row_fraction(self):
        assert sample_table().missing_rate() == pytest.approx(2 / 3)

    def test_complete_table_rate_zero(self):
        table = Table(np.ones((4, 2)), np.zeros((4, 1), dtype=int), [0, 1, 0, 1])
        assert table.missing_rate() == 0.0
        assert table.dirty_rows().size == 0


class TestCopyAndTake:
    def test_copy_is_deep(self):
        table = sample_table()
        clone = table.copy()
        clone.numeric[0, 0] = 99.0
        assert table.numeric[0, 0] == 1.0

    def test_take_selects_rows(self):
        table = sample_table()
        subset = table.take(np.array([2, 0]))
        assert subset.n_rows == 2
        assert subset.numeric[0, 0] == 5.0
        assert subset.labels.tolist() == [0, 0]
