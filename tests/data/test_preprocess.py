"""Unit tests for the table encoder."""

import numpy as np
import pytest

from repro.data.missingness import inject_mcar
from repro.data.preprocess import TableEncoder
from repro.data.synth import SyntheticSpec, generate_table
from repro.data.table import MISSING_CATEGORY, Table


def make_table(seed=0):
    spec = SyntheticSpec(n_rows=100, n_numeric=3, n_categorical=2, categories_per_column=4)
    return generate_table(spec, seed=seed)


class TestFit:
    def test_output_width(self):
        table = make_table()
        encoder = TableEncoder().fit(table)
        cat_width = sum(encoder.category_widths)
        assert encoder.n_output_features == 3 + cat_width
        # each categorical column gets observed categories + 1 "other" slot
        for j in range(table.n_categorical):
            observed = len(np.unique(table.categorical[:, j]))
            assert encoder.category_widths[j] == observed + 1

    def test_fit_ignores_missing_cells(self):
        table = make_table()
        dirty = inject_mcar(table, row_rate=0.4, seed=1)
        encoder = TableEncoder().fit(dirty)
        for j in range(table.n_numeric):
            observed = dirty.numeric[:, j]
            observed = observed[~np.isnan(observed)]
            assert encoder.numeric_means[j] == pytest.approx(observed.mean())

    def test_unfitted_encoder_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            TableEncoder().encode_rows(np.zeros((1, 2)), np.zeros((1, 0), dtype=int))


class TestEncode:
    def test_numeric_standardisation(self):
        table = make_table()
        encoder = TableEncoder().fit(table)
        X = encoder.encode_table(table)
        numeric_part = X[:, :3]
        assert np.allclose(numeric_part.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(numeric_part.std(axis=0), 1.0, atol=1e-9)

    def test_one_hot_blocks_sum_to_one(self):
        table = make_table()
        encoder = TableEncoder().fit(table)
        X = encoder.encode_table(table)
        offset = 3
        for width in encoder.category_widths:
            block = X[:, offset : offset + width]
            assert np.allclose(block.sum(axis=1), 1.0)
            offset += width

    def test_unseen_category_goes_to_other_slot(self):
        table = make_table()
        encoder = TableEncoder().fit(table)
        numeric = table.numeric[:1]
        categorical = table.categorical[:1].copy()
        categorical[0, 0] = 999  # never observed
        X = encoder.encode_rows(numeric, categorical)
        first_width = encoder.category_widths[0]
        block = X[0, 3 : 3 + first_width]
        assert block[-1] == 1.0 and block.sum() == 1.0

    def test_missing_cells_rejected(self):
        table = make_table()
        encoder = TableEncoder().fit(table)
        bad_numeric = table.numeric[:1].copy()
        bad_numeric[0, 0] = np.nan
        with pytest.raises(ValueError, match="missing numeric"):
            encoder.encode_rows(bad_numeric, table.categorical[:1])
        bad_cat = table.categorical[:1].copy()
        bad_cat[0, 0] = MISSING_CATEGORY
        with pytest.raises(ValueError, match="missing categorical"):
            encoder.encode_rows(table.numeric[:1], bad_cat)

    def test_single_row_encoding_matches_batch(self):
        table = make_table()
        encoder = TableEncoder().fit(table)
        X = encoder.encode_table(table)
        row = encoder.encode_rows(table.numeric[5], table.categorical[5])
        assert np.allclose(row[0], X[5])

    def test_constant_column_does_not_divide_by_zero(self):
        numeric = np.full((5, 1), 3.0)
        table = Table(numeric, np.zeros((5, 0), dtype=np.int64), [0, 1, 0, 1, 0])
        encoder = TableEncoder().fit(table)
        X = encoder.encode_table(table)
        assert np.allclose(X, 0.0)
