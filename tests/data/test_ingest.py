"""CSV → CP-ready workload ingestion, plus the csv-screen CLI command."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.ingest import incomplete_from_dirty_table, load_csv_workload
from repro.data.io import read_csv


@pytest.fixture
def csv_file(tmp_path):
    rng = np.random.default_rng(1)
    lines = ["weight,brand,price"]
    brands = ["acme", "globex", "initech"]
    for i in range(40):
        weight = f"{rng.normal(2, 1):.2f}" if rng.random() > 0.2 else ""
        brand = brands[int(rng.integers(3))] if rng.random() > 0.15 else "NA"
        price = "high" if rng.random() > 0.5 else "low"
        lines.append(f"{weight},{brand},{price}")
    path = tmp_path / "products.csv"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestIncompleteFromTable:
    def test_clean_rows_are_singletons(self, csv_file) -> None:
        table, _ = read_csv(csv_file, label_column="price")
        incomplete, _, _ = incomplete_from_dirty_table(table)
        dirty = set(table.dirty_rows().tolist())
        for row in range(table.n_rows):
            count = incomplete.candidates(row).shape[0]
            if row in dirty:
                assert count > 1
            else:
                assert count == 1

    def test_labels_preserved(self, csv_file) -> None:
        table, _ = read_csv(csv_file, label_column="price")
        incomplete, _, _ = incomplete_from_dirty_table(table)
        assert incomplete.labels.tolist() == table.labels.tolist()

    def test_candidate_cap_respected(self, csv_file) -> None:
        table, _ = read_csv(csv_file, label_column="price")
        incomplete, _, _ = incomplete_from_dirty_table(table, max_row_candidates=3)
        assert int(incomplete.candidate_counts().max()) <= 3


class TestLoadCsvWorkload:
    def test_split_covers_all_rows_once(self, csv_file) -> None:
        workload = load_csv_workload(csv_file, "price", n_val=8, k=3)
        all_rows = sorted(workload.train_rows.tolist() + workload.val_rows.tolist())
        assert all_rows == list(range(workload.table.n_rows))

    def test_validation_rows_are_complete(self, csv_file) -> None:
        workload = load_csv_workload(csv_file, "price", n_val=8, k=3)
        dirty = set(workload.table.dirty_rows().tolist())
        assert not (set(workload.val_rows.tolist()) & dirty)

    def test_val_size_capped_by_clean_rows(self, csv_file) -> None:
        workload = load_csv_workload(csv_file, "price", n_val=10_000, k=3)
        n_clean = workload.table.n_rows - workload.table.dirty_rows().shape[0]
        assert workload.val_rows.shape[0] == n_clean

    def test_deterministic_given_seed(self, csv_file) -> None:
        a = load_csv_workload(csv_file, "price", n_val=8, seed=5)
        b = load_csv_workload(csv_file, "price", n_val=8, seed=5)
        np.testing.assert_array_equal(a.val_rows, b.val_rows)

    def test_all_dirty_file_rejected(self, tmp_path) -> None:
        path = tmp_path / "alldirty.csv"
        path.write_text("x,cls\n,a\n,b\n", encoding="utf-8")
        with pytest.raises(ValueError, match="no complete rows"):
            load_csv_workload(path, "cls")

    def test_too_few_training_rows_rejected(self, tmp_path) -> None:
        path = tmp_path / "tiny.csv"
        path.write_text("x,cls\n1,a\n2,b\n3,a\n", encoding="utf-8")
        with pytest.raises(ValueError, match="at least k"):
            load_csv_workload(path, "cls", n_val=2, k=3)

    def test_val_encoding_dimension_matches(self, csv_file) -> None:
        workload = load_csv_workload(csv_file, "price", n_val=8, k=3)
        assert workload.val_X.shape[1] == workload.incomplete.n_features


class TestCsvScreenCommand:
    def test_parser_flags(self) -> None:
        args = build_parser().parse_args(
            ["csv-screen", "--input", "f.csv", "--label", "y", "--top", "2"]
        )
        assert args.command == "csv-screen"
        assert args.top == 2

    def test_input_required(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["csv-screen", "--label", "y"])

    def test_end_to_end_screen(self, csv_file, capsys) -> None:
        code = main(
            [
                "csv-screen",
                "--input",
                str(csv_file),
                "--label",
                "price",
                "--n-val",
                "6",
                "--top",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "validation points certainly predicted" in out
        # either all-certain short-circuit or recommendations
        assert "cleaning cannot change" in out or "rows worth cleaning" in out
