"""Unit tests for the end-to-end cleaning-task builder."""

import numpy as np
import pytest

from repro.core.knn import KNNClassifier
from repro.data.task import build_cleaning_task


@pytest.fixture(scope="module")
def task():
    return build_cleaning_task("supreme", n_train=60, n_val=12, n_test=60, seed=0)


class TestTaskConstruction:
    def test_shapes(self, task):
        assert task.incomplete.n_rows == 60
        assert task.val_X.shape[0] == 12
        assert task.test_X.shape[0] == 60
        assert task.train_gt_X.shape == task.train_default_X.shape
        assert task.train_gt_X.shape[1] == task.incomplete.n_features

    def test_missing_rate_matches_recipe(self, task):
        assert task.dirty_train.missing_rate() == pytest.approx(0.2, abs=0.02)
        assert len(task.dirty_rows) == len(task.dirty_train.dirty_rows())

    def test_candidate_sets_for_dirty_rows_only(self, task):
        dirty = set(task.dirty_rows)
        for row in range(task.incomplete.n_rows):
            m = task.incomplete.candidates(row).shape[0]
            assert (m > 1) == (row in dirty)

    def test_gt_choice_is_closest_candidate(self, task):
        for row in task.dirty_rows:
            candidates = task.incomplete.candidates(row)
            distances = np.linalg.norm(candidates - task.train_gt_X[row], axis=1)
            assert distances[task.gt_choice[row]] == distances.min()

    def test_default_choice_is_closest_to_default(self, task):
        for row in task.dirty_rows:
            candidates = task.incomplete.candidates(row)
            distances = np.linalg.norm(candidates - task.train_default_X[row], axis=1)
            assert distances[task.default_choice[row]] == distances.min()

    def test_clean_rows_match_ground_truth_encoding(self, task):
        dirty = set(task.dirty_rows)
        for row in range(task.incomplete.n_rows):
            if row not in dirty:
                assert np.allclose(
                    task.incomplete.candidates(row)[0], task.train_gt_X[row]
                )

    def test_labels_consistent(self, task):
        assert np.array_equal(task.incomplete.labels, task.train_labels)
        assert np.array_equal(task.train_labels, task.dirty_train.labels)

    def test_ground_truth_world_close_to_truth(self, task):
        """The oracle world's accuracy must track the true world's accuracy."""
        gt_clf = KNNClassifier(k=task.k).fit(task.train_gt_X, task.train_labels)
        world_clf = KNNClassifier(k=task.k).fit(task.ground_truth_world(), task.train_labels)
        gt_acc = gt_clf.accuracy(task.test_X, task.test_y)
        world_acc = world_clf.accuracy(task.test_X, task.test_y)
        assert abs(gt_acc - world_acc) < 0.1

    def test_deterministic_from_seed(self):
        a = build_cleaning_task("bank", n_train=40, n_val=8, n_test=40, seed=3)
        b = build_cleaning_task("bank", n_train=40, n_val=8, n_test=40, seed=3)
        assert np.array_equal(a.train_gt_X, b.train_gt_X)
        assert np.array_equal(a.gt_choice, b.gt_choice)
        assert a.dirty_rows == b.dirty_rows

    def test_missing_rate_override(self):
        task = build_cleaning_task(
            "supreme", n_train=50, n_val=8, n_test=40, missing_rate=0.4, seed=1
        )
        assert task.dirty_train.missing_rate() == pytest.approx(0.4, abs=0.02)

    def test_mixed_type_recipe_builds(self):
        task = build_cleaning_task("babyproduct", n_train=50, n_val=8, n_test=40, seed=1)
        assert task.incomplete.n_features > task.dirty_train.n_features  # one-hot expansion
        assert len(task.dirty_rows) > 0
