"""Unit tests for splitting, feature importance, and the dataset recipes."""

import numpy as np
import pytest

from repro.data.importance import feature_importances
from repro.data.recipes import RECIPES, make_table, recipe_names
from repro.data.splits import train_val_test_split
from repro.data.synth import SyntheticSpec, generate_table


class TestSplits:
    def test_sizes(self):
        table = generate_table(SyntheticSpec(n_rows=100, n_numeric=2, n_categorical=0), seed=0)
        splits = train_val_test_split(table, n_val=10, n_test=20, seed=0)
        assert splits.val.n_rows == 10
        assert splits.test.n_rows == 20
        assert splits.train.n_rows == 70

    def test_explicit_train_size(self):
        table = generate_table(SyntheticSpec(n_rows=100, n_numeric=2, n_categorical=0), seed=0)
        splits = train_val_test_split(table, n_val=10, n_test=20, n_train=30, seed=0)
        assert splits.train.n_rows == 30

    def test_disjoint_rows(self):
        table = generate_table(SyntheticSpec(n_rows=60, n_numeric=1, n_categorical=0), seed=1)
        # tag rows by their (unique with prob 1) numeric value
        splits = train_val_test_split(table, n_val=10, n_test=10, seed=1)
        values = np.concatenate(
            [splits.train.numeric[:, 0], splits.val.numeric[:, 0], splits.test.numeric[:, 0]]
        )
        assert len(np.unique(values)) == 60

    def test_oversized_split_rejected(self):
        table = generate_table(SyntheticSpec(n_rows=20, n_numeric=1, n_categorical=0), seed=0)
        with pytest.raises(ValueError, match="cannot split"):
            train_val_test_split(table, n_val=10, n_test=10, n_train=10)

    def test_deterministic(self):
        table = generate_table(SyntheticSpec(n_rows=50, n_numeric=1, n_categorical=0), seed=0)
        a = train_val_test_split(table, n_val=5, n_test=5, seed=3)
        b = train_val_test_split(table, n_val=5, n_test=5, seed=3)
        assert np.array_equal(a.train.numeric, b.train.numeric)


class TestFeatureImportances:
    def test_returns_probability_vector(self):
        table = generate_table(SyntheticSpec(n_rows=150, n_numeric=3, n_categorical=1), seed=0)
        imp = feature_importances(table, seed=0)
        assert imp.shape == (4,)
        assert np.all(imp > 0)
        assert imp.sum() == pytest.approx(1.0)

    def test_informative_attribute_dominates(self):
        # One highly separating attribute, rest pure noise.
        rng = np.random.default_rng(0)
        n = 300
        labels = rng.integers(0, 2, size=n)
        informative = labels * 8.0 + rng.normal(size=n) * 0.3
        noise = rng.normal(size=(n, 3))
        from repro.data.table import Table

        table = Table(
            np.column_stack([informative, noise]), np.zeros((n, 0), dtype=np.int64), labels
        )
        imp = feature_importances(table, seed=0)
        assert imp[0] == imp.max()
        assert imp[0] > 0.4

    def test_dirty_table_rejected(self):
        from repro.data.missingness import inject_mcar

        table = generate_table(SyntheticSpec(n_rows=80, n_numeric=2, n_categorical=0), seed=0)
        dirty = inject_mcar(table, row_rate=0.3, seed=0)
        with pytest.raises(ValueError, match="complete"):
            feature_importances(dirty)


class TestRecipes:
    def test_recipe_names_cover_table1(self):
        assert set(recipe_names()) == {"babyproduct", "supreme", "bank", "puma"}

    @pytest.mark.parametrize("recipe", list(RECIPES))
    def test_generated_table_matches_info(self, recipe):
        table, info = make_table(recipe, n_rows=80, seed=0)
        assert table.n_rows == 80
        assert table.n_numeric == info.n_numeric
        assert table.n_categorical == info.n_categorical
        assert table.n_features == info.n_features
        assert table.missing_rate() == 0.0

    def test_scale_controls_row_count(self):
        table, info = make_table("supreme", scale=0.05, seed=0)
        assert table.n_rows == round(0.05 * info.paper_rows)

    def test_unknown_recipe(self):
        with pytest.raises(ValueError, match="unknown recipe"):
            make_table("imagenet")

    def test_paper_row_counts_match_table1(self):
        assert RECIPES["babyproduct"].paper_rows == 3042
        assert RECIPES["supreme"].paper_rows == 3052
        assert RECIPES["bank"].paper_rows == 3192
        assert RECIPES["puma"].paper_rows == 8192

    def test_paper_missing_rates(self):
        assert RECIPES["babyproduct"].paper_missing_rate == pytest.approx(0.118)
        for name in ("supreme", "bank", "puma"):
            assert RECIPES[name].paper_missing_rate == pytest.approx(0.20)
