"""repro.obs.tracing: span trees, propagation, adoption, the ring buffer."""

from __future__ import annotations

import io
import json
import threading

from repro.obs import (
    NULL_SPAN,
    Observability,
    TraceBuffer,
    Tracer,
    current_span,
    trace_span,
)


# ---------------------------------------------------------------------------
# Span basics
# ---------------------------------------------------------------------------


def test_disabled_tracer_yields_null_span_for_free():
    tracer = Tracer(enabled=False)
    with trace_span("op", tracer=tracer) as span:
        assert span is NULL_SPAN
        assert not span
        span.set(anything="goes")
        span.adopt({"name": "ignored"})
    assert span.record() is None
    assert len(tracer.buffer) == 0


def test_no_tracer_no_parent_is_null():
    assert trace_span("orphan") is NULL_SPAN
    assert current_span() is NULL_SPAN


def test_root_span_publishes_to_buffer():
    tracer = Tracer()
    with trace_span("root", tracer=tracer, flavor="q2") as span:
        span.set(n_points=4)
    assert tracer.stats()["published"] == 1
    (record,) = tracer.buffer.list()
    assert record["name"] == "root"
    assert record["trace_id"] == span.trace_id
    assert record["attributes"] == {"flavor": "q2", "n_points": 4}
    assert record["duration_ms"] >= 0.0
    assert record["status"] == "ok"
    assert record["parent_id"] is None


def test_nesting_builds_a_tree_with_one_trace_id():
    tracer = Tracer()
    with trace_span("a", tracer=tracer) as a:
        assert current_span() is a
        with trace_span("b") as b:
            with trace_span("c") as c:
                assert c.trace_id == b.trace_id == a.trace_id
        assert current_span() is a
    record = tracer.buffer.get(a.trace_id)
    assert [child["name"] for child in record["children"]] == ["b"]
    assert [g["name"] for g in record["children"][0]["children"]] == ["c"]
    assert record["children"][0]["parent_id"] == record["span_id"]


def test_exception_marks_error_status():
    tracer = Tracer()
    try:
        with trace_span("boom", tracer=tracer):
            raise RuntimeError("kaput")
    except RuntimeError:
        pass
    (record,) = tracer.buffer.list()
    assert record["status"] == "error"
    assert record["attributes"]["error"] == "RuntimeError"


def test_detached_span_starts_a_fresh_root():
    tracer = Tracer()
    with trace_span("outer", tracer=tracer) as outer:
        with trace_span("batch", tracer=tracer, detached=True) as batch:
            assert batch.trace_id != outer.trace_id
            assert batch.parent is None
    assert {r["name"] for r in tracer.buffer.list()} == {"outer", "batch"}


def test_explicit_parent_wins_across_threads():
    tracer = Tracer()
    with trace_span("scatter", tracer=tracer) as scatter:
        seen = {}

        def gather():
            with trace_span("gather", parent=scatter) as g:
                seen["trace_id"] = g.trace_id

        t = threading.Thread(target=gather)
        t.start()
        t.join()
    assert seen["trace_id"] == scatter.trace_id
    record = tracer.buffer.get(scatter.trace_id)
    assert [c["name"] for c in record["children"]] == ["gather"]


def test_adopt_restamps_foreign_records():
    tracer = Tracer()
    foreign = {
        "name": "executor.partition",
        "start_time": 1.0,
        "duration_ms": 2.5,
        "status": "ok",
        "attributes": {"partition": 3},
        "children": [
            {"name": "leaf", "duration_ms": 0.5, "children": []},
        ],
    }
    with trace_span("gather", tracer=tracer) as span:
        span.adopt(foreign)
        span.adopt(None)  # a no-op, never raises
    record = tracer.buffer.get(span.trace_id)
    (child,) = record["children"]
    assert child["name"] == "executor.partition"
    assert child["trace_id"] == span.trace_id
    assert child["parent_id"] == record["span_id"]
    assert child["span_id"]
    (leaf,) = child["children"]
    assert leaf["trace_id"] == span.trace_id
    assert leaf["parent_id"] == child["span_id"]


def test_live_record_marks_in_flight():
    tracer = Tracer()
    with trace_span("open", tracer=tracer) as span:
        live = span.record()
        assert live["in_flight"] is True
        assert live["duration_ms"] >= 0.0
    done = tracer.buffer.get(span.trace_id)
    assert "in_flight" not in done


# ---------------------------------------------------------------------------
# Tracer: slow log + stats
# ---------------------------------------------------------------------------


def test_slow_query_log_emits_one_json_line():
    sink = io.StringIO()
    tracer = Tracer(slow_s=0.0, slow_sink=sink)
    with trace_span("slowpoke", tracer=tracer, dataset="d") as span:
        span.set(unserializable=object())  # dropped from the log line
    line = sink.getvalue().strip()
    payload = json.loads(line)
    assert payload["slow_query"] is True
    assert payload["name"] == "slowpoke"
    assert payload["trace_id"] == span.trace_id
    assert payload["attributes"] == {"dataset": "d"}
    assert tracer.stats()["slow_queries"] == 1


def test_fast_queries_skip_the_slow_log():
    sink = io.StringIO()
    tracer = Tracer(slow_s=3600.0, slow_sink=sink)
    with trace_span("quick", tracer=tracer):
        pass
    assert sink.getvalue() == ""
    assert tracer.stats()["slow_queries"] == 0


def test_closed_sink_never_raises():
    sink = io.StringIO()
    sink.close()
    tracer = Tracer(slow_s=0.0, slow_sink=sink)
    with trace_span("doomed", tracer=tracer):
        pass
    assert tracer.stats()["published"] == 1


# ---------------------------------------------------------------------------
# TraceBuffer
# ---------------------------------------------------------------------------


def test_buffer_is_a_bounded_ring():
    buffer = TraceBuffer(maxlen=3)
    for i in range(5):
        buffer.add({"trace_id": f"t{i}"})
    assert len(buffer) == 3
    assert [r["trace_id"] for r in buffer.list()] == ["t2", "t3", "t4"]
    assert [r["trace_id"] for r in buffer.list(limit=2)] == ["t3", "t4"]
    assert buffer.get("t4") == {"trace_id": "t4"}
    assert buffer.get("t0") is None


def test_buffer_concurrent_hammer():
    buffer = TraceBuffer(maxlen=64)
    n_threads, n_iter = 8, 500
    barrier = threading.Barrier(n_threads)

    def work(tid):
        barrier.wait()
        for i in range(n_iter):
            buffer.add({"trace_id": f"{tid}-{i}"})
            buffer.list(limit=5)
            buffer.get(f"{tid}-{i}")

    threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(buffer) == 64


def test_concurrent_spans_on_one_parent():
    tracer = Tracer()
    with trace_span("parent", tracer=tracer) as parent:
        barrier = threading.Barrier(8)

        def child(i):
            barrier.wait()
            with trace_span(f"child-{i}", parent=parent):
                pass

        threads = [threading.Thread(target=child, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    record = tracer.buffer.get(parent.trace_id)
    assert len(record["children"]) == 8
    assert {c["trace_id"] for c in record["children"]} == {parent.trace_id}


# ---------------------------------------------------------------------------
# Observability bundle
# ---------------------------------------------------------------------------


def test_observability_snapshot_combines_metrics_and_tracing():
    obs = Observability(trace_buffer_size=4)
    obs.metrics.counter("x_total").inc()
    with obs.tracer.span("op"):
        pass
    snap = obs.snapshot()
    assert snap["counters"] == {"x_total": 1}
    assert snap["tracing"]["published"] == 1
    assert snap["tracing"]["enabled"] is True


def test_observability_disabled_keeps_metrics_on():
    obs = Observability(enabled=False)
    assert not obs.enabled
    obs.metrics.counter("still_counts_total").inc()
    with obs.tracer.span("op") as span:
        assert span is NULL_SPAN
    snap = obs.snapshot()
    assert snap["counters"]["still_counts_total"] == 1
    assert snap["tracing"]["published"] == 0
