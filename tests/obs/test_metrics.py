"""repro.obs.metrics: typed instruments, exposition, quantiles, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
    quantile_from_buckets,
    validate_prometheus,
)


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------


def test_counter_monotone():
    m = MetricsRegistry()
    c = m.counter("requests_total")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_gauge_levels_and_high_watermark():
    m = MetricsRegistry()
    g = m.gauge("inflight")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2
    g.set_max(10)
    g.set_max(4)  # lower than current max: ignored
    assert g.value == 10


def test_instruments_are_idempotent_by_name_and_labels():
    m = MetricsRegistry()
    assert m.counter("x_total") is m.counter("x_total")
    assert m.counter("x_total", op="a") is m.counter("x_total", op="a")
    assert m.counter("x_total", op="a") is not m.counter("x_total", op="b")


def test_type_conflict_raises():
    m = MetricsRegistry()
    m.counter("thing")
    with pytest.raises(ValueError, match="already registered"):
        m.gauge("thing")


def test_bad_metric_name_rejected():
    m = MetricsRegistry()
    with pytest.raises(ValueError):
        m.counter("bad name")
    with pytest.raises(ValueError):
        m.counter("x", **{"0label": "v"})


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


def test_histogram_buckets_and_snapshot():
    m = MetricsRegistry()
    h = m.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.01, 0.05, 0.5, 5.0):
        h.observe(value)
    snap = h.snapshot()
    assert snap["le"] == [0.01, 0.1, 1.0, "+Inf"]
    # 0.005 and 0.01 land in the first bucket (inclusive upper bound).
    assert snap["counts"] == [2, 1, 1, 1]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(5.565)


def test_histogram_bad_buckets_rejected():
    m = MetricsRegistry()
    with pytest.raises(ValueError):
        m.histogram("a", buckets=())
    with pytest.raises(ValueError):
        m.histogram("b", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        m.histogram("c", buckets=(1.0, float("inf")))


def test_histogram_timer_observes_nonnegative():
    m = MetricsRegistry()
    h = m.histogram("t_seconds")
    with h.time():
        pass
    assert h.count == 1
    assert h.sum >= 0.0


def test_default_latency_buckets_strictly_increase():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


# ---------------------------------------------------------------------------
# Quantiles
# ---------------------------------------------------------------------------


def test_quantile_interpolates_inside_bucket():
    m = MetricsRegistry()
    h = m.histogram("q_seconds", buckets=(1.0, 2.0, 4.0))
    for _ in range(100):
        h.observe(1.5)  # all in the (1, 2] bucket
    snap = h.snapshot()
    p50 = quantile_from_buckets(snap, 0.5)
    assert 1.0 < p50 <= 2.0
    assert quantile_from_buckets(snap, 1.0) == pytest.approx(2.0)


def test_quantile_empty_and_overflow():
    m = MetricsRegistry()
    h = m.histogram("q2_seconds", buckets=(1.0, 2.0))
    assert quantile_from_buckets(h.snapshot(), 0.5) is None
    h.observe(100.0)  # overflow bucket: reports the largest finite bound
    assert quantile_from_buckets(h.snapshot(), 0.5) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        quantile_from_buckets(h.snapshot(), 1.5)


# ---------------------------------------------------------------------------
# Snapshot, collectors, Prometheus exposition
# ---------------------------------------------------------------------------


def test_snapshot_shape_and_display_names():
    m = MetricsRegistry()
    m.counter("hits_total", route="/query").inc(3)
    m.gauge("level").set(7)
    m.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
    snap = m.snapshot()
    assert snap["counters"] == {'hits_total{route="/query"}': 3}
    assert snap["gauges"] == {"level": 7.0}
    assert snap["histograms"]["lat_seconds"]["count"] == 1


def test_collectors_refresh_gauges_at_snapshot_time():
    m = MetricsRegistry()
    state = {"level": 1}
    m.add_collector(lambda metrics: metrics.gauge("live").set(state["level"]))
    assert m.snapshot()["gauges"]["live"] == 1.0
    state["level"] = 9
    assert m.snapshot()["gauges"]["live"] == 9.0
    # collectors also run before a Prometheus render
    state["level"] = 12
    assert parse_prometheus(m.render_prometheus())["repro_live"] == 12.0


def test_prometheus_render_parses_and_validates():
    m = MetricsRegistry()
    m.counter("requests_total", help="served requests", route="/query").inc(2)
    m.counter("requests_total", route="/sql").inc(1)
    m.gauge("inflight").set(3)
    h = m.histogram("lat_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(50.0)
    text = m.render_prometheus()
    assert "# TYPE repro_requests_total counter" in text
    assert "# HELP repro_requests_total served requests" in text
    samples = parse_prometheus(text)
    assert samples['repro_requests_total{route="/query"}'] == 2.0
    assert samples['repro_lat_seconds_bucket{le="0.1"}'] == 1.0
    assert samples['repro_lat_seconds_bucket{le="1"}'] == 2.0
    assert samples['repro_lat_seconds_bucket{le="+Inf"}'] == 3.0
    assert samples["repro_lat_seconds_count"] == 3.0
    assert validate_prometheus(text) == len(samples)


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError, match="malformed"):
        parse_prometheus("this is not a sample line\n")


def test_validate_prometheus_rejects_broken_histograms():
    # cumulative counts that decrease must fail validation
    bad = (
        'x_bucket{le="1"} 5\n'
        'x_bucket{le="+Inf"} 3\n'
        "x_count 3\n"
        "x_sum 1\n"
    )
    with pytest.raises(ValueError, match="not cumulative"):
        validate_prometheus(bad)
    # a histogram without a +Inf bucket must fail
    with pytest.raises(ValueError, match=r"\+Inf"):
        validate_prometheus('y_bucket{le="1"} 1\ny_count 1\ny_sum 1\n')


# ---------------------------------------------------------------------------
# Concurrency hammer
# ---------------------------------------------------------------------------


def test_concurrent_increments_are_not_lost():
    m = MetricsRegistry()
    c = m.counter("hammer_total")
    g = m.gauge("hammer_gauge")
    h = m.histogram("hammer_seconds", buckets=(0.5,))
    n_threads, n_iter = 8, 2000
    barrier = threading.Barrier(n_threads)

    def work():
        barrier.wait()
        for _ in range(n_iter):
            c.inc()
            g.inc()
            h.observe(0.25)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = n_threads * n_iter
    assert c.value == expected
    assert g.value == expected
    snap = h.snapshot()
    assert snap["count"] == expected
    assert snap["counts"][0] == expected
    validate_prometheus(m.render_prometheus())


def test_concurrent_instrument_creation_yields_one_instrument():
    m = MetricsRegistry()
    results = []
    barrier = threading.Barrier(8)

    def create():
        barrier.wait()
        results.append(m.counter("race_total"))

    threads = [threading.Thread(target=create) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(c is results[0] for c in results)
