"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_parses(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"

    def test_screen_defaults(self):
        args = build_parser().parse_args(["screen"])
        assert args.recipe == "supreme"
        assert args.n_val == 24
        assert args.seed == 0

    def test_clean_budget_flag(self):
        args = build_parser().parse_args(["clean", "--budget", "5", "--recipe", "bank"])
        assert args.budget == 5
        assert args.recipe == "bank"

    def test_unknown_recipe_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", "--recipe", "imagenet"])

    def test_executor_flags_default_off(self):
        for command in ("screen", "clean"):
            args = build_parser().parse_args([command])
            assert args.n_jobs == 1
            assert args.no_cache is False
            assert args.backend == "auto"

    def test_executor_flags_parse(self):
        args = build_parser().parse_args(["clean", "--n-jobs", "4", "--no-cache"])
        assert args.n_jobs == 4
        assert args.no_cache is True
        args = build_parser().parse_args(
            ["csv-screen", "--input", "x.csv", "--label", "y", "--n-jobs", "-1"]
        )
        assert args.n_jobs == -1

    def test_backend_flag_parses(self):
        for backend in ("auto", "sequential", "batch", "incremental", "sharded"):
            args = build_parser().parse_args(["screen", "--backend", backend])
            assert args.backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", "--backend", "gpu"])

    def test_tile_flags_parse(self):
        args = build_parser().parse_args(
            ["screen", "--tile-rows", "16", "--tile-candidates", "1024"]
        )
        assert args.tile_rows == 16
        assert args.tile_candidates == 1024
        defaults = build_parser().parse_args(["screen"])
        assert defaults.tile_rows is None
        assert defaults.tile_candidates is None


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8970
        assert args.recipe is None
        assert args.window_ms == 10.0
        assert args.max_batch == 16
        assert args.max_pending == 256
        assert args.ttl == 30.0
        assert args.backend == "auto"

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--recipe", "bank",
                "--dataset-name", "mine", "--window-ms", "2.5",
                "--max-batch", "64", "--max-pending", "8",
                "--backend", "incremental", "--n-jobs", "-1", "--no-cache",
            ]
        )
        assert args.port == 0 and args.recipe == "bank"
        assert args.dataset_name == "mine"
        assert args.window_ms == 2.5 and args.max_batch == 64
        assert args.max_pending == 8 and args.backend == "incremental"
        assert args.n_jobs == -1 and args.no_cache is True

    @pytest.mark.parametrize("flag", ["--max-batch", "--max-pending"])
    def test_serve_knobs_must_be_positive(self, flag, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", flag, "0"])
        assert f"{flag} must be a positive integer" in capsys.readouterr().err

    def test_serve_window_rejects_negative_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--window-ms", "-5"])
        assert "--window-ms must be >= 0" in capsys.readouterr().err
        assert build_parser().parse_args(["serve", "--window-ms", "0"]).window_ms == 0.0

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_serve_ttl_must_be_positive_at_parse_time(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--ttl", value])
        assert "--ttl must be > 0" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--window-ms", "--ttl"])
    @pytest.mark.parametrize("value", ["soon", "nan", "NaN"])
    def test_serve_float_flags_reject_non_numbers(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", flag, value])
        assert f"{flag} must be a number" in capsys.readouterr().err

    def test_serve_rejects_unknown_recipe(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--recipe", "imagenet"])

    def test_serve_command_boots_and_answers(self):
        """`repro serve` end to end: boot on an ephemeral port as a
        subprocess, register nothing, hit /healthz, shut down."""
        import os
        import re
        import signal
        import subprocess
        import sys

        from repro.service import ServiceClient

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            match = re.search(r"listening on (http://\S+)", line)
            assert match, f"no listen line in {line!r}"
            client = ServiceClient(match.group(1))
            assert client.wait_until_ready(timeout=15)["status"] == "ok"
            assert client.datasets() == []
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                raise


class TestSqlCommand:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text(
            "age,height,cls\n"
            "32,170,1\n"
            "29,,0\n"
            ",180,1\n",
            encoding="utf-8",
        )
        return str(path)

    def test_sql_parser_defaults(self):
        args = build_parser().parse_args(
            ["sql", "--input", "x.csv", "--label", "cls", "--query", "SELECT * FROM T"]
        )
        assert args.engine == "auto"
        assert args.url is None
        assert args.limit == 20

    def test_sql_engine_choices(self):
        for engine in ("auto", "vectorized", "rowwise", "naive"):
            args = build_parser().parse_args(
                ["sql", "--input", "x.csv", "--label", "cls",
                 "--query", "SELECT * FROM T", "--engine", engine]
            )
            assert args.engine == engine
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sql", "--input", "x.csv", "--label", "cls",
                 "--query", "SELECT * FROM T", "--engine", "gpu"]
            )

    def test_sql_runs_and_reports_engine(self, csv_path, capsys):
        code = main(
            ["sql", "--input", csv_path, "--label", "cls",
             "--query", "SELECT age FROM people WHERE age < 30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine: vectorized" in out
        assert "certain answers" in out

    def test_sql_engines_agree_on_output(self, csv_path, capsys):
        base = ["sql", "--input", csv_path, "--label", "cls",
                "--query", "SELECT age FROM t WHERE age < 30"]
        outputs = []
        for engine in ("vectorized", "rowwise", "naive"):
            assert main([*base, "--engine", engine]) == 0
            out = capsys.readouterr().out
            outputs.append(out[out.index("certain answers"):])
        assert outputs[0] == outputs[1] == outputs[2]

    def test_sql_bad_query_is_exit_2(self, csv_path, capsys):
        code = main(
            ["sql", "--input", csv_path, "--label", "cls", "--query", "DELETE FROM t"]
        )
        assert code == 2
        assert "SQL error" in capsys.readouterr().err

    def test_sql_against_a_running_service(self, csv_path, capsys):
        from repro.service import DatasetRegistry, make_service

        server = make_service(DatasetRegistry())
        try:
            local = ["sql", "--input", csv_path, "--label", "cls",
                     "--query", "SELECT age FROM people WHERE age < 30"]
            assert main(local) == 0
            reference = capsys.readouterr().out
            assert main([*local, "--url", server.url]) == 0
            served = capsys.readouterr().out
            assert f"served by {server.url}" in served
            # Same certain/possible sections either way.
            assert served[served.index("certain answers"):] == (
                reference[reference.index("certain answers"):]
            )
        finally:
            server.close()


class TestFlagValidation:
    """Non-positive executor knobs must be rejected at parse time."""

    @pytest.mark.parametrize("value", ["0", "-2", "-100"])
    def test_n_jobs_rejects_zero_and_other_negatives(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", "--n-jobs", value])
        assert "--n-jobs must be a positive integer or -1" in capsys.readouterr().err

    def test_n_jobs_keeps_the_all_cpus_sentinel(self):
        args = build_parser().parse_args(["screen", "--n-jobs", "-1"])
        assert args.n_jobs == -1

    def test_n_jobs_rejects_non_integers(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", "--n-jobs", "two"])
        assert "--n-jobs must be an integer" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--tile-rows", "--tile-candidates"])
    @pytest.mark.parametrize("value", ["0", "-1", "-64"])
    def test_tile_flags_reject_non_positive(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", flag, value])
        assert f"{flag} must be a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--tile-rows", "--tile-candidates"])
    def test_tile_flags_reject_non_integers(self, flag, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", flag, "many"])
        assert f"{flag} must be an integer" in capsys.readouterr().err


class TestCommands:
    def test_demo_prints_figure6(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "[6, 2]" in out
        assert "None" in out

    def test_screen_reports_fraction(self, capsys):
        code = main(
            ["screen", "--n-train", "40", "--n-val", "8", "--n-test", "20", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "validation points certainly predicted" in out

    def test_clean_with_zero_budget(self, capsys):
        code = main(
            [
                "clean",
                "--n-train", "40",
                "--n-val", "8",
                "--n-test", "20",
                "--budget", "0",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CPClean: cleaned 0 rows" in out
        assert "RandomClean" in out

    def test_clean_small_run_end_to_end(self, capsys):
        code = main(
            ["clean", "--n-train", "40", "--n-val", "6", "--n-test", "20", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "val CP'ed 100%" in out

    def test_executor_flags_do_not_change_results(self, capsys):
        base_args = ["--n-train", "40", "--n-val", "8", "--n-test", "20", "--seed", "1"]
        assert main(["screen", *base_args]) == 0
        reference = capsys.readouterr().out
        assert main(["screen", *base_args, "--n-jobs", "2", "--no-cache"]) == 0
        assert capsys.readouterr().out == reference

    def test_backend_choice_does_not_change_results(self, capsys):
        base_args = ["--n-train", "40", "--n-val", "8", "--n-test", "20", "--seed", "1"]
        assert main(["screen", *base_args]) == 0
        reference = capsys.readouterr().out
        for backend in ("sequential", "batch", "incremental", "sharded"):
            assert main(["screen", *base_args, "--backend", backend]) == 0
            assert capsys.readouterr().out == reference, backend

    def test_clean_backend_choice_does_not_change_results(self, capsys):
        base_args = [
            "--n-train", "40", "--n-val", "6", "--n-test", "20",
            "--seed", "1", "--budget", "3",
        ]
        assert main(["clean", *base_args]) == 0
        reference = capsys.readouterr().out
        assert main(["clean", *base_args, "--backend", "incremental"]) == 0
        assert capsys.readouterr().out == reference

    def test_sharded_tiling_does_not_change_results(self, capsys):
        base_args = ["--n-train", "40", "--n-val", "8", "--n-test", "20", "--seed", "1"]
        assert main(["screen", *base_args]) == 0
        reference = capsys.readouterr().out
        sharded = [
            "--backend", "sharded", "--tile-rows", "3", "--tile-candidates", "17",
        ]
        assert main(["screen", *base_args, *sharded]) == 0
        assert capsys.readouterr().out == reference
        assert main(["screen", *base_args, *sharded, "--n-jobs", "2"]) == 0
        assert capsys.readouterr().out == reference
