"""Unit tests for Codd tables and their possible-world semantics."""

from __future__ import annotations

import pytest

from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation


@pytest.fixture
def figure1() -> CoddTable:
    """The paper's Figure 1: Kevin's age is NULL over a small domain."""
    return CoddTable(
        ("name", "age"),
        [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
    )


class TestNull:
    def test_domain_deduplicated_in_order(self) -> None:
        assert Null([3, 1, 3, 2]).domain == (3, 1, 2)

    def test_empty_domain_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-empty"):
            Null([])

    def test_nulls_are_distinct_variables(self) -> None:
        a, b = Null([1]), Null([1])
        assert a != b  # identity semantics: no sharing between cells

    def test_repr_previews_domain(self) -> None:
        assert "Null(" in repr(Null(range(100)))


class TestCoddTable:
    def test_variable_inventory(self, figure1: CoddTable) -> None:
        assert figure1.n_variables == 1
        (r, c, null) = figure1.variables[0]
        assert (r, c) == (2, 1)
        assert null.domain == (1, 2, 30)

    def test_world_count(self, figure1: CoddTable) -> None:
        assert figure1.n_worlds() == 3

    def test_world_count_multiplies_domains(self) -> None:
        table = CoddTable(
            ("a", "b"), [(Null([1, 2]), Null([1, 2, 3])), (Null([4, 5]), 0)]
        )
        assert table.n_worlds() == 12

    def test_complete_table_has_one_world(self) -> None:
        table = CoddTable(("a",), [(1,), (2,)])
        assert table.is_complete()
        worlds = list(table.possible_worlds())
        assert worlds == [Relation(("a",), [(1,), (2,)])]

    def test_arity_checked(self) -> None:
        with pytest.raises(ValueError, match="arity"):
            CoddTable(("a", "b"), [(1,)])

    def test_world_materialisation(self, figure1: CoddTable) -> None:
        world = figure1.world({(2, 1): 30})
        assert world == Relation(
            ("name", "age"), [("John", 32), ("Anna", 29), ("Kevin", 30)]
        )

    def test_world_value_outside_domain_rejected(self, figure1: CoddTable) -> None:
        with pytest.raises(ValueError, match="domain"):
            figure1.world({(2, 1): 99})

    def test_world_missing_assignment_rejected(self, figure1: CoddTable) -> None:
        with pytest.raises(KeyError, match="missing"):
            figure1.world({})

    def test_world_extra_assignment_rejected(self, figure1: CoddTable) -> None:
        with pytest.raises(KeyError, match="non-NULL"):
            figure1.world({(2, 1): 30, (0, 1): 32})

    def test_possible_worlds_enumerates_each_domain_value(self, figure1: CoddTable) -> None:
        ages = sorted(
            next(iter(w.rows - {("John", 32), ("Anna", 29)}))[1]
            for w in figure1.possible_worlds()
        )
        assert ages == [1, 2, 30]

    def test_duplicate_looking_rows_are_kept(self) -> None:
        # Two NULL rows that could collapse in some worlds must both be kept.
        table = CoddTable(("a",), [(Null([1, 2]),), (Null([1, 2]),)])
        assert len(table) == 2
        sizes = sorted(len(w) for w in table.possible_worlds())
        assert sizes == [1, 1, 2, 2]  # set semantics collapses equal completions

    def test_with_cell_fixed(self, figure1: CoddTable) -> None:
        fixed = figure1.with_cell_fixed(2, 1, 30)
        assert fixed.is_complete()
        assert figure1.n_variables == 1  # original untouched

    def test_with_cell_fixed_rejects_constant_cell(self, figure1: CoddTable) -> None:
        with pytest.raises(ValueError, match="not NULL"):
            figure1.with_cell_fixed(0, 1, 32)

    def test_with_cell_fixed_rejects_foreign_value(self, figure1: CoddTable) -> None:
        with pytest.raises(ValueError, match="domain"):
            figure1.with_cell_fixed(2, 1, 99)

    def test_from_relation_roundtrip(self) -> None:
        rel = Relation(("a", "b"), [(1, "x"), (2, "y")])
        table = CoddTable.from_relation(rel)
        assert table.is_complete()
        assert next(iter(table.possible_worlds())) == rel
