"""Certain answers over multi-table databases (joins across Codd tables)."""

from __future__ import annotations

import pytest

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Join,
    Literal,
    Negation,
    Project,
    Scan,
    Select,
)
from repro.codd.certain import (
    certain_answers_database,
    certain_answers_naive,
    possible_answers_database,
    prune_database,
)
from repro.codd.codd_table import CoddTable, Null


@pytest.fixture
def database() -> dict[str, CoddTable]:
    person = CoddTable(
        ("name", "age"),
        [("John", 32), ("Anna", 29), ("Kevin", Null([28, 31]))],
    )
    city = CoddTable(
        ("name", "city"),
        [("John", "Rome"), ("Anna", Null(["Paris", "Lyon"])), ("Kevin", "Rome")],
    )
    return {"person": person, "city": city}


def young_city_query() -> Project:
    """SELECT city FROM person ⋈ city WHERE age < 30."""
    return Project(
        Select(
            Join(Scan("person"), Scan("city")),
            Comparison(Attribute("age"), "<", Literal(30)),
        ),
        ("city",),
    )


class TestJoinAcrossTables:
    def test_certain_join_answers(self, database) -> None:
        # Anna is certainly < 30 but her city is uncertain; Kevin's city is
        # certain but his age may be 31 — so no city is certain.
        result = certain_answers_database(young_city_query(), database)
        assert result.rows == set()

    def test_possible_join_answers(self, database) -> None:
        result = possible_answers_database(young_city_query(), database)
        assert result.rows == {("Paris",), ("Lyon",), ("Rome",)}

    def test_cleaning_one_table_creates_certainty(self, database) -> None:
        # Fix Anna's city: Paris becomes a certain answer of the join.
        cleaned = dict(database)
        cleaned["city"] = database["city"].with_cell_fixed(1, 1, "Paris")
        result = certain_answers_database(young_city_query(), cleaned)
        assert result.rows == {("Paris",)}

    def test_join_on_fully_certain_tables(self) -> None:
        a = CoddTable(("id", "x"), [(1, "u"), (2, "v")])
        b = CoddTable(("id", "y"), [(1, "w")])
        result = certain_answers_database(Join(Scan("a"), Scan("b")), {"a": a, "b": b})
        assert result.rows == {(1, "u", "w")}

    def test_single_table_database_matches_naive(self, database) -> None:
        query = Project(
            Select(Scan("person"), Comparison(Attribute("age"), "<", Literal(30))),
            ("name",),
        )
        single = {"person": database["person"]}
        assert certain_answers_database(query, single) == certain_answers_naive(
            query, database["person"], name="person"
        )

    def test_world_cap_enforced(self) -> None:
        big = CoddTable(("a",), [(Null(range(100)),)] * 4)
        database = {"x": big, "y": big}
        with pytest.raises(ValueError, match="cap"):
            certain_answers_database(Scan("x"), database)


class TestPruneDatabase:
    """The smarter multi-table path: shrink the world product soundly."""

    def test_unreferenced_table_collapses_to_one_world(self) -> None:
        used = CoddTable(("a",), [(1,)])
        unused = CoddTable(("z",), [(Null([5, 6, 7]),), (Null([1, 2]),)])
        pruned = prune_database(Scan("t"), {"t": used, "spare": unused})
        assert pruned["t"] is used
        assert pruned["spare"].n_worlds() == 1
        assert len(pruned["spare"]) == 2  # rows survive, variables do not

    def test_filtered_scan_drops_impossible_rows(self) -> None:
        table = CoddTable(
            ("age",),
            [(50,), (Null([40, 45]),), (Null([10, 45]),), (20,)],
        )
        query = Select(Scan("t"), Comparison(Attribute("age"), "<", Literal(30)))
        pruned = prune_database(query, {"t": table})
        # Rows 0 and 1 can never satisfy age < 30 in any completion.
        assert len(pruned["t"]) == 2
        assert pruned["t"].n_worlds() == 2  # only the {10, 45} NULL remains

    def test_bare_scan_occurrence_blocks_pruning(self) -> None:
        table = CoddTable(("age",), [(50,), (Null([40, 45]),)])
        query = Join(
            Select(Scan("t"), Comparison(Attribute("age"), "<", Literal(30))),
            Scan("t"),  # the unfiltered occurrence needs every row
        )
        pruned = prune_database(query, {"t": table})
        assert pruned["t"] is table

    def test_project_only_chain_keeps_every_row(self) -> None:
        table = CoddTable(("a", "b"), [(1, Null([2, 3]))])
        pruned = prune_database(Project(Scan("t"), ("a",)), {"t": table})
        assert pruned["t"] is table

    def test_pruning_shrinks_an_otherwise_uncountable_product(self) -> None:
        # Unpruned: 4^10 * 3^5 worlds — far beyond the naive cap. Every row
        # of `huge` fails the filter, and `spare` is never scanned, so the
        # pruned product is exactly 1 and the query answers instantly.
        huge = CoddTable(("v",), [(Null([1, 2, 3, 4]),)] * 10)
        spare = CoddTable(("w",), [(Null([0, 1, 2]),)] * 5)
        query = Select(Scan("huge"), Comparison(Attribute("v"), ">", Literal(9)))
        database = {"huge": huge, "spare": spare}
        with pytest.raises(ValueError, match="cap"):
            certain_answers_database(query, database, prune=False)
        assert certain_answers_database(query, database).rows == set()
        assert possible_answers_database(query, database).rows == set()

    def test_pruned_results_match_unpruned(self, database) -> None:
        query = young_city_query()
        assert certain_answers_database(query, database) == certain_answers_database(
            query, database, prune=False
        )
        assert possible_answers_database(query, database) == possible_answers_database(
            query, database, prune=False
        )

    def test_negation_inside_a_filter_is_still_sound(self) -> None:
        table = CoddTable(("a",), [(Null([1, 2]),), (3,)])
        query = Select(
            Scan("t"),
            Negation(Comparison(Attribute("a"), "<", Literal(10))),  # nothing passes
        )
        pruned = prune_database(query, {"t": table})
        assert len(pruned["t"]) == 0
        assert certain_answers_database(query, {"t": table}).rows == set()
