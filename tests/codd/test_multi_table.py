"""Certain answers over multi-table databases (joins across Codd tables)."""

from __future__ import annotations

import pytest

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Join,
    Literal,
    Project,
    Scan,
    Select,
)
from repro.codd.certain import (
    certain_answers_database,
    certain_answers_naive,
    possible_answers_database,
)
from repro.codd.codd_table import CoddTable, Null


@pytest.fixture
def database() -> dict[str, CoddTable]:
    person = CoddTable(
        ("name", "age"),
        [("John", 32), ("Anna", 29), ("Kevin", Null([28, 31]))],
    )
    city = CoddTable(
        ("name", "city"),
        [("John", "Rome"), ("Anna", Null(["Paris", "Lyon"])), ("Kevin", "Rome")],
    )
    return {"person": person, "city": city}


def young_city_query() -> Project:
    """SELECT city FROM person ⋈ city WHERE age < 30."""
    return Project(
        Select(
            Join(Scan("person"), Scan("city")),
            Comparison(Attribute("age"), "<", Literal(30)),
        ),
        ("city",),
    )


class TestJoinAcrossTables:
    def test_certain_join_answers(self, database) -> None:
        # Anna is certainly < 30 but her city is uncertain; Kevin's city is
        # certain but his age may be 31 — so no city is certain.
        result = certain_answers_database(young_city_query(), database)
        assert result.rows == set()

    def test_possible_join_answers(self, database) -> None:
        result = possible_answers_database(young_city_query(), database)
        assert result.rows == {("Paris",), ("Lyon",), ("Rome",)}

    def test_cleaning_one_table_creates_certainty(self, database) -> None:
        # Fix Anna's city: Paris becomes a certain answer of the join.
        cleaned = dict(database)
        cleaned["city"] = database["city"].with_cell_fixed(1, 1, "Paris")
        result = certain_answers_database(young_city_query(), cleaned)
        assert result.rows == {("Paris",)}

    def test_join_on_fully_certain_tables(self) -> None:
        a = CoddTable(("id", "x"), [(1, "u"), (2, "v")])
        b = CoddTable(("id", "y"), [(1, "w")])
        result = certain_answers_database(Join(Scan("a"), Scan("b")), {"a": a, "b": b})
        assert result.rows == {(1, "u", "w")}

    def test_single_table_database_matches_naive(self, database) -> None:
        query = Project(
            Select(Scan("person"), Comparison(Attribute("age"), "<", Literal(30))),
            ("name",),
        )
        single = {"person": database["person"]}
        assert certain_answers_database(query, single) == certain_answers_naive(
            query, database["person"], name="person"
        )

    def test_world_cap_enforced(self) -> None:
        big = CoddTable(("a",), [(Null(range(100)),)] * 4)
        database = {"x": big, "y": big}
        with pytest.raises(ValueError, match="cap"):
            certain_answers_database(Scan("x"), database)
