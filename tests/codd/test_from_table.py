"""Dirty Table → Codd table conversion, Codd → c-table lifting, sql CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.codd.certain import certain_answers, certain_answers_naive, possible_answers
from repro.codd.codd_table import CoddTable, Null
from repro.codd.ctable import CTable, ctable_certain_answers, ctable_possible_answers
from repro.codd.from_table import codd_table_from_dirty_table
from repro.codd.sql import parse_sql
from repro.data.io import read_csv
from repro.data.table import MISSING_CATEGORY, Table


@pytest.fixture
def dirty_table() -> Table:
    return Table(
        numeric=np.array([[1.0], [np.nan], [3.0]]),
        categorical=np.array([[0], [1], [MISSING_CATEGORY]]),
        labels=np.array([0, 1, 0]),
        numeric_names=["weight"],
        categorical_names=["brand"],
    )


class TestCoddFromTable:
    def test_schema_and_shape(self, dirty_table: Table) -> None:
        codd = codd_table_from_dirty_table(dirty_table)
        assert codd.schema == ("weight", "brand", "label")
        assert len(codd) == 3
        assert codd.n_variables == 2

    def test_numeric_null_domain_is_repair_candidates(self, dirty_table: Table) -> None:
        codd = codd_table_from_dirty_table(dirty_table)
        (r, c, null) = next(v for v in codd.variables if v[1] == 0)
        assert r == 1
        # observed weights are {1, 3}: min/p25/mean/p75/max collapse to a few
        assert set(null.domain) <= {1.0, 1.5, 2.0, 2.5, 3.0}
        assert len(null.domain) >= 2

    def test_categorical_null_domain_includes_other(self, dirty_table: Table) -> None:
        codd = codd_table_from_dirty_table(dirty_table)
        (_, _, null) = next(v for v in codd.variables if v[1] == 1)
        # codes 0, 1 observed; the repair space adds a fresh "other" code 2
        assert set(null.domain) == {0, 1, 2}

    def test_labels_always_complete(self, dirty_table: Table) -> None:
        codd = codd_table_from_dirty_table(dirty_table)
        label_col = codd.schema.index("label")
        assert all(not isinstance(row[label_col], Null) for row in codd.rows)

    def test_schema_decodes_strings(self, tmp_path) -> None:
        path = tmp_path / "f.csv"
        path.write_text(
            "weight,brand,price\n1.0,acme,high\n,globex,low\n2.0,,high\n",
            encoding="utf-8",
        )
        table, schema = read_csv(path, label_column="price")
        codd = codd_table_from_dirty_table(table, schema=schema)
        brand_col = codd.schema.index("brand")
        constants = {
            row[brand_col] for row in codd.rows if not isinstance(row[brand_col], Null)
        }
        assert constants == {"acme", "globex"}
        (_, _, null) = next(v for v in codd.variables if v[1] == brand_col)
        assert "acme" in null.domain and "globex" in null.domain
        assert any(str(v).startswith("<other:") for v in null.domain)

    def test_sql_query_over_converted_table(self, dirty_table: Table) -> None:
        codd = codd_table_from_dirty_table(dirty_table)
        query = parse_sql("SELECT label FROM T WHERE weight <= 3")
        # row 0 (weight 1) and row 2 (weight 3) are certain; row 1's weight
        # is NULL but every repair candidate is <= 3, so label 1 is certain too
        assert certain_answers(query, codd).rows == {(0,), (1,)}


class TestCTableFromCodd:
    @pytest.fixture
    def codd(self) -> CoddTable:
        return CoddTable(
            ("a", "b"),
            [(1, "x"), (Null([1, 2]), "y"), (3, Null(["x", "z"]))],
        )

    def test_variables_are_fresh_per_cell(self, codd: CoddTable) -> None:
        ctable = CTable.from_codd_table(codd)
        assert set(ctable.variables) == {"v1_0", "v2_1"}
        assert ctable.n_valuations() == codd.n_worlds() == 4

    def test_certain_answers_agree(self, codd: CoddTable) -> None:
        from repro.codd.algebra import Scan

        via_codd = certain_answers_naive(Scan("T"), codd)
        via_ctable = ctable_certain_answers(CTable.from_codd_table(codd))
        assert via_codd == via_ctable

    def test_possible_answers_agree(self, codd: CoddTable) -> None:
        from repro.codd.algebra import Scan

        via_codd = possible_answers(Scan("T"), codd)
        via_ctable = ctable_possible_answers(CTable.from_codd_table(codd))
        assert via_codd == via_ctable

    def test_rejects_non_codd_input(self) -> None:
        with pytest.raises(TypeError, match="CoddTable"):
            CTable.from_codd_table("not a table")


class TestSqlCommand:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "products.csv"
        path.write_text(
            "weight,brand,price\n"
            "1.0,acme,high\n"
            ",globex,low\n"
            "2.0,acme,high\n"
            "3.5,,low\n",
            encoding="utf-8",
        )
        return path

    def test_certain_and_possible_sections(self, csv_path, capsys) -> None:
        code = main(
            [
                "sql",
                "--input",
                str(csv_path),
                "--label",
                "price",
                "--query",
                "SELECT brand FROM T WHERE weight >= 1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certain answers" in out
        assert "possible-but-not-certain" in out
        assert "acme" in out

    def test_bad_sql_returns_error_code(self, csv_path, capsys) -> None:
        code = main(
            ["sql", "--input", str(csv_path), "--label", "price", "--query", "DROP TABLE T"]
        )
        assert code == 2
        assert "SQL error" in capsys.readouterr().err

    def test_limit_truncates_output(self, csv_path, capsys) -> None:
        code = main(
            [
                "sql",
                "--input",
                str(csv_path),
                "--label",
                "price",
                "--query",
                "SELECT weight, brand FROM T",
                "--limit",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "more" in out
