"""Unit tests for the logical-plan IR and the rule-based optimizer.

The fuzz harness (``test_codd_differential.TestOptimizerDifferential``)
certifies that rewrites never change answers; these tests pin the
*mechanics* — lowering round trips, schema inference, each rule's exact
output shape, the rewrite trace, and the render/plan_dict explain
surfaces the CLI and wire expose.
"""

from __future__ import annotations

import pytest

from repro.codd.algebra import (
    Aggregate,
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Difference,
    Join,
    Literal,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.optimizer import (
    MAX_OPTIMIZER_PASSES,
    optimize,
    optimize_query,
    prune_rewrite,
)
from repro.codd.plan import (
    LogicalPlan,
    ProjectNode,
    RenameNode,
    ScanNode,
    SelectNode,
    lower,
    plan_dict,
    render,
    to_query,
)

CATALOG = {
    "fact": ("key", "amount"),
    "dim": ("key", "label"),
    "t": ("a", "b", "c"),
}


def _lt(attr: str, value: object) -> Comparison:
    return Comparison(Attribute(attr), "<", Literal(value))


class TestLowering:
    def test_round_trip_is_identity(self) -> None:
        queries = [
            Scan("t"),
            Select(Scan("t"), _lt("a", 3)),
            Project(Select(Scan("t"), _lt("a", 3)), ("b",)),
            Rename(Scan("t"), {"a": "x"}),
            Join(Scan("fact"), Scan("dim")),
            Union(Scan("t"), Scan("t")),
            Difference(Scan("t"), Scan("t")),
            Aggregate(Scan("t"), ("a",), (AggregateSpec("sum", "b", "total"),)),
        ]
        for query in queries:
            assert to_query(lower(query, CATALOG)) == query

    def test_schemas_are_inferred(self) -> None:
        node = lower(Project(Rename(Scan("t"), {"a": "x"}), ("x", "c")), CATALOG)
        assert node.schema == ("x", "c")
        join = lower(Join(Scan("fact"), Scan("dim")), CATALOG)
        assert join.schema == ("key", "amount", "label")
        agg = lower(
            Aggregate(Scan("t"), ("a",), (AggregateSpec("count", None, "n"),)),
            CATALOG,
        )
        assert agg.schema == ("a", "n")

    def test_unknown_relation_raises_key_error(self) -> None:
        with pytest.raises(KeyError, match="'nope' not in database"):
            lower(Scan("nope"), CATALOG)

    def test_bad_projection_raises_key_error(self) -> None:
        with pytest.raises(KeyError, match="'zz' not in schema"):
            lower(Project(Scan("t"), ("zz",)), CATALOG)

    def test_incompatible_union_raises(self) -> None:
        with pytest.raises(ValueError, match="identical schemas"):
            lower(Union(Scan("t"), Scan("dim")), CATALOG)

    def test_logical_plan_catalog_of_database(self) -> None:
        database = {"t": CoddTable(("a", "b"), [(1, 2)])}
        plan = LogicalPlan.from_query(Scan("t"), LogicalPlan.catalog_of(database))
        assert plan.schema == ("a", "b")
        assert plan.catalog == (("t", ("a", "b")),)


class TestExplainSurfaces:
    def test_render_is_an_indented_tree(self) -> None:
        plan = LogicalPlan.from_query(
            Project(Select(Scan("t"), _lt("a", 3)), ("b",)), CATALOG
        )
        assert plan.render() == (
            "Project [b]\n"
            "  Select a < 3\n"
            "    Scan t :: a, b, c"
        )

    def test_plan_dict_is_json_shaped(self) -> None:
        node = lower(Select(Join(Scan("fact"), Scan("dim")), _lt("amount", 5)), CATALOG)
        tree = plan_dict(node)
        assert tree["op"] == "select"
        assert tree["predicate"] == "amount < 5"
        join = tree["input"]
        assert join["op"] == "join"
        assert [c["relation"] for c in join["inputs"]] == ["fact", "dim"]
        assert join["schema"] == ["key", "amount", "label"]


class TestRules:
    def _opt(self, query):
        return optimize(LogicalPlan.from_query(query, CATALOG))

    def test_merge_selects(self) -> None:
        result = self._opt(Select(Select(Scan("t"), _lt("a", 3)), _lt("b", 4)))
        assert "merge-selects" in result.rewrites
        root = result.root
        assert isinstance(root, SelectNode)
        assert isinstance(root.child, ScanNode)
        assert result.query() == Select(
            Scan("t"), Conjunction(_lt("b", 4), _lt("a", 3))
        )

    def test_push_select_below_project(self) -> None:
        result = self._opt(Select(Project(Scan("t"), ("a", "b")), _lt("a", 3)))
        assert "push-select-below-project" in result.rewrites
        assert result.query() == Project(Select(Scan("t"), _lt("a", 3)), ("a", "b"))

    def test_select_over_hidden_attribute_stays_put(self) -> None:
        # π dropped `c`; a filter on `c` cannot move below the projection.
        query = Select(Project(Scan("t"), ("a",)), _lt("c", 3))
        assert self._opt(query).query() == query

    def test_canonical_scan_shape_is_preserved(self) -> None:
        # σ(ρ(Scan)) is the tractable single-scan shape — leave it alone.
        query = Select(Rename(Scan("t"), {"a": "x"}), _lt("x", 3))
        result = self._opt(query)
        assert result.query() == query
        assert "push-select-below-rename" not in result.rewrites

    def test_push_select_below_rename_above_deeper_trees(self) -> None:
        query = Select(
            Rename(Project(Scan("t"), ("a", "b")), {"a": "x"}), _lt("x", 3)
        )
        result = self._opt(query)
        assert "push-select-below-rename" in result.rewrites
        # The predicate is rewritten through the inverse renaming, then
        # keeps sinking below the projection too.
        assert result.query() == Rename(
            Project(Select(Scan("t"), _lt("a", 3)), ("a", "b")), {"a": "x"}
        )

    def test_rename_distributes_over_union_then_select_follows(self) -> None:
        query = Select(
            Rename(Union(Scan("t"), Scan("t")), {"a": "x"}), _lt("x", 3)
        )
        result = self._opt(query)
        assert "push-rename-below-union" in result.rewrites
        assert "push-select-below-union" in result.rewrites
        # Each branch ends in the canonical σ(ρ(Scan)) shape the guard keeps.
        branch = Select(Rename(Scan("t"), {"a": "x"}), _lt("x", 3))
        assert result.query() == Union(branch, branch)

    def test_push_select_below_join_splits_conjuncts(self) -> None:
        predicate = Conjunction(_lt("amount", 5), _lt("label", "c"))
        result = self._opt(Select(Join(Scan("fact"), Scan("dim")), predicate))
        assert "push-select-below-join" in result.rewrites
        assert result.query() == Join(
            Select(Scan("fact"), _lt("amount", 5)),
            Select(Scan("dim"), _lt("label", "c")),
        )

    def test_shared_attribute_conjunct_goes_to_both_sides(self) -> None:
        result = self._opt(Select(Join(Scan("fact"), Scan("dim")), _lt("key", 2)))
        assert result.query() == Join(
            Select(Scan("fact"), _lt("key", 2)),
            Select(Scan("dim"), _lt("key", 2)),
        )

    def test_cross_side_conjunct_stays_above_the_join(self) -> None:
        predicate = Comparison(Attribute("amount"), "==", Attribute("label"))
        query = Select(Join(Scan("fact"), Scan("dim")), predicate)
        assert self._opt(query).query() == query

    def test_push_select_below_difference(self) -> None:
        result = self._opt(Select(Difference(Scan("t"), Scan("t")), _lt("a", 3)))
        assert "push-select-below-difference" in result.rewrites
        assert result.query() == Difference(
            Select(Scan("t"), _lt("a", 3)), Select(Scan("t"), _lt("a", 3))
        )

    def test_push_select_below_aggregate_on_group_keys(self) -> None:
        agg = Aggregate(Scan("t"), ("a",), (AggregateSpec("count", None, "n"),))
        result = self._opt(Select(agg, _lt("a", 3)))
        assert "push-select-below-aggregate" in result.rewrites
        assert result.query() == Aggregate(
            Select(Scan("t"), _lt("a", 3)), ("a",), (AggregateSpec("count", None, "n"),)
        )

    def test_select_on_aggregate_output_stays_above(self) -> None:
        agg = Aggregate(Scan("t"), ("a",), (AggregateSpec("count", None, "n"),))
        query = Select(agg, _lt("n", 3))
        assert self._opt(query).query() == query

    def test_merge_projects_and_drop_identity(self) -> None:
        result = self._opt(Project(Project(Scan("t"), ("a", "b")), ("a",)))
        assert "merge-projects" in result.rewrites
        assert result.query() == Project(Scan("t"), ("a",))
        identity = self._opt(Project(Scan("t"), ("a", "b", "c")))
        assert "drop-identity-project" in identity.rewrites
        assert identity.query() == Scan("t")

    def test_push_project_below_join_keeps_join_keys(self) -> None:
        result = self._opt(Project(Join(Scan("fact"), Scan("dim")), ("label",)))
        assert "push-project-below-join" in result.rewrites
        # `key` is shared, so both inputs must keep it even though the
        # final projection drops it.
        assert result.query() == Project(
            Join(Project(Scan("fact"), ("key",)), Scan("dim")), ("label",)
        )

    def test_compose_and_drop_renames(self) -> None:
        result = self._opt(Rename(Rename(Scan("t"), {"a": "x"}), {"x": "y"}))
        assert "compose-renames" in result.rewrites
        assert result.query() == Rename(Scan("t"), {"a": "y"})
        undone = self._opt(Rename(Rename(Scan("t"), {"a": "x"}), {"x": "a"}))
        assert "drop-identity-rename" in undone.rewrites
        assert undone.query() == Scan("t")

    def test_optimize_reaches_a_fixpoint(self) -> None:
        query = Select(Scan("t"), _lt("a", 3))
        for _ in range(4):
            query = Select(query, _lt("b", 4))
        result = self._opt(query)
        assert len(result.rewrites) <= MAX_OPTIMIZER_PASSES
        again = optimize(result.plan)
        assert again.rewrites == ()
        assert again.root == result.root


class TestPruneRewrite:
    def test_records_describe_what_shrank(self) -> None:
        database = {
            "orders": CoddTable(
                ("status",),
                [("open",), (Null(["open", "held"]),), ("closed",)],
            ),
        }
        query = Select(
            Scan("orders"), Comparison(Attribute("status"), "==", Literal("closed"))
        )
        pruned, records = prune_rewrite(query, database)
        assert len(pruned["orders"].rows) < 3
        assert records
        assert records[0].startswith("prune-database[orders: ")
        assert "rows" in records[0] and "nulls" in records[0]

    def test_no_change_yields_no_records(self) -> None:
        database = {"t": CoddTable(("a",), [(1,), (2,)])}
        pruned, records = prune_rewrite(Scan("t"), database)
        assert records == ()
        assert pruned["t"].rows == database["t"].rows


class TestOptimizeQuery:
    def test_convenience_wrapper_uses_table_schemas(self) -> None:
        database = {"t": CoddTable(("a", "b"), [(1, 2)])}
        result = optimize_query(
            Select(Project(Scan("t"), ("a",)), _lt("a", 3)), database
        )
        assert result.query() == Project(Select(Scan("t"), _lt("a", 3)), ("a",))
        assert result.rewrites == ("push-select-below-project",)
