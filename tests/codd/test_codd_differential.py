"""The differential property-test harness for the certain-answer engine.

Seeded random Codd tables (fuzzed schemas and column types — small ints,
floats, strings, ints beyond float64 exactness — with random NULL domains)
and random select-project(-rename) queries, cross-checked across the
``vectorized``, ``rowwise`` and ``naive`` backends. The naive
world-enumeration oracle is the ground truth, exactly as
``tests/core/test_backend_differential.py`` holds the planner backends to
the brute-force counting oracle: any divergence anywhere is a bug in a
certification system, so the harness asserts **bit-identical**
:class:`~repro.codd.relation.Relation` values.

A second generator fuzzes two-table databases with join queries and
asserts the pruned multi-table path agrees with unpruned enumeration.

The seeded case generators live in :mod:`fuzz.codd_cases`
(``tests/fuzz/codd_cases.py``), shared with the update-sequence harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from fuzz.codd_cases import (
    SEEDS,
    TYPE_POOLS as _TYPE_POOLS,
    random_case,
    random_database_case,
)
from repro.codd.algebra import Project, Rename, Select
from repro.codd.certain import (
    certain_answers,
    certain_answers_database,
    certain_answers_naive,
    possible_answers,
    possible_answers_database,
    possible_answers_naive,
)
from repro.codd.engine import answer_query


class TestSingleTableDifferential:
    """All three backends must agree bit for bit with the naive oracle."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_certain_answers_match_oracle(self, seed):
        query, table, name, description = random_case(seed)
        oracle = certain_answers_naive(query, table, name=name)
        for backend in ("vectorized", "rowwise", "naive"):
            result = answer_query(
                query, {name: table}, mode="certain", backend=backend
            ).relation
            assert result == oracle, f"{backend} diverged: {description}"
        assert certain_answers(query, table, name=name) == oracle, description

    @pytest.mark.parametrize("seed", SEEDS)
    def test_possible_answers_match_oracle(self, seed):
        query, table, name, description = random_case(seed)
        oracle = possible_answers_naive(query, table, name=name)
        for backend in ("vectorized", "rowwise", "naive"):
            result = answer_query(
                query, {name: table}, mode="possible", backend=backend
            ).relation
            assert result == oracle, f"{backend} diverged: {description}"
        assert possible_answers(query, table, name=name) == oracle, description

    def test_generator_actually_covers_the_space(self):
        """The seed range must exercise NULLs, every column type, renames
        and projections — otherwise the harness proves nothing."""
        types_seen: set[str] = set()
        with_nulls = renamed = projected = selected = 0
        for seed in SEEDS:
            query, table, name, _ = random_case(seed)
            with_nulls += table.n_variables > 0
            node = query
            if isinstance(node, Project):
                projected += 1
                node = node.child
            if isinstance(node, Select):
                selected += 1
                node = node.child
            if isinstance(node, Rename):
                renamed += 1
            rng = np.random.default_rng(seed)
            arity = int(rng.integers(1, 4))
            types_seen |= {
                str(rng.choice(list(_TYPE_POOLS))) for _ in range(arity)
            }
        assert types_seen == set(_TYPE_POOLS)
        assert with_nulls >= len(SEEDS) // 2
        assert renamed >= 3 and projected >= 10 and selected >= 15


class TestMultiTableDifferential:
    """Pruned enumeration must agree with the unpruned product."""

    @pytest.mark.parametrize("seed", SEEDS[:15])
    def test_pruned_matches_unpruned(self, seed):
        query, database, description = random_database_case(seed)
        for func in (certain_answers_database, possible_answers_database):
            pruned = func(query, database)
            unpruned = func(query, database, prune=False)
            assert pruned == unpruned, f"{func.__name__} diverged: {description}"
