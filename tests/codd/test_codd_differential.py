"""The differential property-test harness for the certain-answer engine.

Seeded random Codd tables (fuzzed schemas and column types — small ints,
floats, strings, ints beyond float64 exactness — with random NULL domains)
and random select-project(-rename) queries, cross-checked across the
``vectorized``, ``rowwise`` and ``naive`` backends. The naive
world-enumeration oracle is the ground truth, exactly as
``tests/core/test_backend_differential.py`` holds the planner backends to
the brute-force counting oracle: any divergence anywhere is a bug in a
certification system, so the harness asserts **bit-identical**
:class:`~repro.codd.relation.Relation` values.

A second generator fuzzes two-table databases with join queries and
asserts the pruned multi-table path agrees with unpruned enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Join,
    Literal,
    Negation,
    Project,
    Rename,
    Scan,
    Select,
)
from repro.codd.certain import (
    certain_answers,
    certain_answers_database,
    certain_answers_naive,
    possible_answers,
    possible_answers_database,
    possible_answers_naive,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.engine import answer_query

SEEDS = list(range(30))

#: Per-column value universes. Ordering comparisons only ever pair a column
#: with a literal (or column) of the same type class, mirroring what typed
#: SQL would allow; equality comparisons may cross classes.
_TYPE_POOLS = {
    "int": [0, 1, 2, 3, 4],
    "float": [-1.25, 0.0, 0.5, 2.0, 3.75],
    "str": ["a", "b", "c", "d"],
    "bigint": [2**60, 2**60 + 1, 2**60 + 2, 5],
}


def _random_table(
    rng: np.random.Generator, attrs: tuple[str, ...], types: list[str]
) -> CoddTable:
    n_rows = int(rng.integers(1, 5))
    rows = []
    for _ in range(n_rows):
        cells = []
        for col_type in types:
            pool = _TYPE_POOLS[col_type]
            if rng.random() < 0.45:
                size = int(rng.integers(1, 4))
                domain = list(rng.choice(len(pool), size=size, replace=False))
                cells.append(Null([pool[i] for i in domain]))
            else:
                cells.append(pool[int(rng.integers(0, len(pool)))])
        rows.append(cells)
    return CoddTable(attrs, rows)


def _random_comparison(
    rng: np.random.Generator, attrs: tuple[str, ...], types: list[str]
):
    i = int(rng.integers(0, len(attrs)))
    ops_ordered = ["==", "!=", "<", "<=", ">", ">="]
    same_type = [j for j in range(len(attrs)) if types[j] == types[i]]
    if rng.random() < 0.3 and len(same_type) > 1:
        j = int(rng.choice([j for j in same_type if j != i]))
        right: Attribute | Literal = Attribute(attrs[j])
    elif rng.random() < 0.15:
        # Cross-type literal: equality only (ordering would TypeError,
        # identically on every path, so nothing to differentiate).
        other = [t for t in _TYPE_POOLS if t != types[i]]
        pool = _TYPE_POOLS[str(rng.choice(other))]
        right = Literal(pool[int(rng.integers(0, len(pool)))])
        return Comparison(
            Attribute(attrs[i]), str(rng.choice(["==", "!="])), right
        )
    else:
        pool = _TYPE_POOLS[types[i]]
        right = Literal(pool[int(rng.integers(0, len(pool)))])
    return Comparison(Attribute(attrs[i]), str(rng.choice(ops_ordered)), right)


def _random_predicate(
    rng: np.random.Generator, attrs: tuple[str, ...], types: list[str], depth: int = 0
):
    roll = rng.random()
    if depth >= 2 or roll < 0.5:
        return _random_comparison(rng, attrs, types)
    parts = [
        _random_predicate(rng, attrs, types, depth + 1)
        for _ in range(int(rng.integers(2, 4)))
    ]
    if roll < 0.7:
        return Conjunction(*parts)
    if roll < 0.9:
        return Disjunction(*parts)
    return Negation(_random_predicate(rng, attrs, types, depth + 1))


def random_case(seed: int):
    """One seeded random (query, table, name, description) case."""
    rng = np.random.default_rng(seed)
    arity = int(rng.integers(1, 4))
    attrs = tuple(f"c{i}" for i in range(arity))
    types = [str(rng.choice(list(_TYPE_POOLS))) for _ in range(arity)]
    table = _random_table(rng, attrs, types)
    name = str(rng.choice(["T", "person", "orders"]))

    schema = attrs
    query = Scan(name)
    if rng.random() < 0.3:
        renamed = tuple(f"r_{a}" for a in attrs)
        query = Rename(query, dict(zip(attrs, renamed)))
        schema = renamed
    if rng.random() < 0.8:
        query = Select(query, _random_predicate(rng, schema, types))
    if rng.random() < 0.7:
        kept = sorted(
            rng.choice(len(schema), size=int(rng.integers(1, arity + 1)), replace=False)
        )
        query = Project(query, tuple(schema[i] for i in kept))
    description = f"seed={seed} types={types} n_rows={len(table)} name={name}"
    return query, table, name, description


class TestSingleTableDifferential:
    """All three backends must agree bit for bit with the naive oracle."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_certain_answers_match_oracle(self, seed):
        query, table, name, description = random_case(seed)
        oracle = certain_answers_naive(query, table, name=name)
        for backend in ("vectorized", "rowwise", "naive"):
            result = answer_query(
                query, {name: table}, mode="certain", backend=backend
            ).relation
            assert result == oracle, f"{backend} diverged: {description}"
        assert certain_answers(query, table, name=name) == oracle, description

    @pytest.mark.parametrize("seed", SEEDS)
    def test_possible_answers_match_oracle(self, seed):
        query, table, name, description = random_case(seed)
        oracle = possible_answers_naive(query, table, name=name)
        for backend in ("vectorized", "rowwise", "naive"):
            result = answer_query(
                query, {name: table}, mode="possible", backend=backend
            ).relation
            assert result == oracle, f"{backend} diverged: {description}"
        assert possible_answers(query, table, name=name) == oracle, description

    def test_generator_actually_covers_the_space(self):
        """The seed range must exercise NULLs, every column type, renames
        and projections — otherwise the harness proves nothing."""
        types_seen: set[str] = set()
        with_nulls = renamed = projected = selected = 0
        for seed in SEEDS:
            query, table, name, _ = random_case(seed)
            with_nulls += table.n_variables > 0
            node = query
            if isinstance(node, Project):
                projected += 1
                node = node.child
            if isinstance(node, Select):
                selected += 1
                node = node.child
            if isinstance(node, Rename):
                renamed += 1
            rng = np.random.default_rng(seed)
            arity = int(rng.integers(1, 4))
            types_seen |= {
                str(rng.choice(list(_TYPE_POOLS))) for _ in range(arity)
            }
        assert types_seen == set(_TYPE_POOLS)
        assert with_nulls >= len(SEEDS) // 2
        assert renamed >= 3 and projected >= 10 and selected >= 15


def random_database_case(seed: int):
    """A two-table database plus a filtered join query over it."""
    rng = np.random.default_rng(1000 + seed)
    left = _random_table(rng, ("key", "a"), ["int", "int"])
    right = _random_table(rng, ("key", "b"), ["int", "str"])
    query = Join(Scan("L"), Scan("R"))
    if rng.random() < 0.8:
        # Filter directly above one scan: exactly what pruning targets.
        query = Join(
            Select(Scan("L"), _random_comparison(rng, ("key", "a"), ["int", "int"])),
            Scan("R"),
        )
    if rng.random() < 0.5:
        query = Select(
            query, _random_comparison(rng, ("key", "a", "b"), ["int", "int", "str"])
        )
    if rng.random() < 0.7:
        query = Project(query, ("key",))
    database = {"L": left, "R": right}
    if rng.random() < 0.3:
        database["unused"] = _random_table(rng, ("z",), ["int"])
    return query, database, f"seed={seed}"


class TestMultiTableDifferential:
    """Pruned enumeration must agree with the unpruned product."""

    @pytest.mark.parametrize("seed", SEEDS[:15])
    def test_pruned_matches_unpruned(self, seed):
        query, database, description = random_database_case(seed)
        for func in (certain_answers_database, possible_answers_database):
            pruned = func(query, database)
            unpruned = func(query, database, prune=False)
            assert pruned == unpruned, f"{func.__name__} diverged: {description}"
