"""The differential property-test harness for the certain-answer engine.

Seeded random Codd tables (fuzzed schemas and column types — small ints,
floats, strings, ints beyond float64 exactness — with random NULL domains)
and random select-project(-rename) queries, cross-checked across the
``vectorized``, ``rowwise`` and ``naive`` backends. The naive
world-enumeration oracle is the ground truth, exactly as
``tests/core/test_backend_differential.py`` holds the planner backends to
the brute-force counting oracle: any divergence anywhere is a bug in a
certification system, so the harness asserts **bit-identical**
:class:`~repro.codd.relation.Relation` values.

A second generator fuzzes two-table databases with join queries and
asserts the pruned multi-table path agrees with unpruned enumeration.

The seeded case generators live in :mod:`fuzz.codd_cases`
(``tests/fuzz/codd_cases.py``), shared with the update-sequence harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from fuzz.codd_cases import (
    SEEDS,
    TYPE_POOLS as _TYPE_POOLS,
    random_aggregate_case,
    random_case,
    random_database_case,
    random_join_case,
)
from repro.codd.algebra import Project, Rename, Select
from repro.codd.certain import (
    certain_answers,
    certain_answers_database,
    certain_answers_naive,
    possible_answers,
    possible_answers_database,
    possible_answers_naive,
)
from repro.codd.engine import answer_query, plan_codd_query


class TestSingleTableDifferential:
    """All three backends must agree bit for bit with the naive oracle."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_certain_answers_match_oracle(self, seed):
        query, table, name, description = random_case(seed)
        oracle = certain_answers_naive(query, table, name=name)
        for backend in ("vectorized", "rowwise", "naive"):
            result = answer_query(
                query, {name: table}, mode="certain", backend=backend
            ).relation
            assert result == oracle, f"{backend} diverged: {description}"
        assert certain_answers(query, table, name=name) == oracle, description

    @pytest.mark.parametrize("seed", SEEDS)
    def test_possible_answers_match_oracle(self, seed):
        query, table, name, description = random_case(seed)
        oracle = possible_answers_naive(query, table, name=name)
        for backend in ("vectorized", "rowwise", "naive"):
            result = answer_query(
                query, {name: table}, mode="possible", backend=backend
            ).relation
            assert result == oracle, f"{backend} diverged: {description}"
        assert possible_answers(query, table, name=name) == oracle, description

    def test_generator_actually_covers_the_space(self):
        """The seed range must exercise NULLs, every column type, renames
        and projections — otherwise the harness proves nothing."""
        types_seen: set[str] = set()
        with_nulls = renamed = projected = selected = 0
        for seed in SEEDS:
            query, table, name, _ = random_case(seed)
            with_nulls += table.n_variables > 0
            node = query
            if isinstance(node, Project):
                projected += 1
                node = node.child
            if isinstance(node, Select):
                selected += 1
                node = node.child
            if isinstance(node, Rename):
                renamed += 1
            rng = np.random.default_rng(seed)
            arity = int(rng.integers(1, 4))
            types_seen |= {
                str(rng.choice(list(_TYPE_POOLS))) for _ in range(arity)
            }
        assert types_seen == set(_TYPE_POOLS)
        assert with_nulls >= len(SEEDS) // 2
        assert renamed >= 3 and projected >= 10 and selected >= 15


class TestMultiTableDifferential:
    """Pruned enumeration must agree with the unpruned product."""

    @pytest.mark.parametrize("seed", SEEDS[:15])
    def test_pruned_matches_unpruned(self, seed):
        query, database, description = random_database_case(seed)
        for func in (certain_answers_database, possible_answers_database):
            pruned = func(query, database)
            unpruned = func(query, database, prune=False)
            assert pruned == unpruned, f"{func.__name__} diverged: {description}"


def _oracle(query, database, mode):
    """Pure unpruned world enumeration — the ground truth for every path."""
    func = (
        certain_answers_database if mode == "certain" else possible_answers_database
    )
    return func(query, database, prune=False)


def _capable_backends(query, database):
    """``auto`` plus every explicit backend that can serve the query."""
    from repro.codd.engine import capable_codd_backends

    return ["auto"] + [b.name for b in capable_codd_backends(query, database)]


class TestJoinDifferential:
    """The pair-table hash join (and its declines) against the oracle."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", ["certain", "possible"])
    def test_joins_match_oracle(self, seed, mode):
        query, database, description = random_join_case(seed)
        oracle = _oracle(query, database, mode)
        for backend in _capable_backends(query, database):
            result = answer_query(
                query, database, mode=mode, backend=backend
            ).relation
            assert result == oracle, f"{backend}/{mode} diverged: {description}"

    def test_fast_path_actually_engages(self):
        """Enough seeds must plan off the naive backend, or the join work
        is untested; enough must fall back, or the declines are."""
        fast = slow = 0
        for seed in SEEDS:
            query, database, _ = random_join_case(seed)
            plan = plan_codd_query(query, database)
            fast += plan.backend != "naive"
            slow += plan.backend == "naive"
        assert fast >= 8, f"only {fast} join seeds took a fast path"
        assert slow >= 3, f"only {slow} join seeds exercised the fallback"


class TestAggregateDifferential:
    """The aggregation DP (and its declines) against the oracle."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", ["certain", "possible"])
    def test_aggregates_match_oracle(self, seed, mode):
        query, database, description = random_aggregate_case(seed)
        oracle = _oracle(query, database, mode)
        for backend in _capable_backends(query, database):
            result = answer_query(
                query, database, mode=mode, backend=backend
            ).relation
            assert result == oracle, f"{backend}/{mode} diverged: {description}"

    def test_fast_path_actually_engages(self):
        fast = 0
        for seed in SEEDS:
            query, database, _ = random_aggregate_case(seed)
            fast += plan_codd_query(query, database).backend != "naive"
        assert fast >= 8, f"only {fast} aggregate seeds took a fast path"


class TestOptimizerDifferential:
    """Optimized and unoptimized execution must be bit-identical — every
    rewrite is a per-world equivalence, certified here over fuzzed inputs."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "generator", [random_case, random_join_case, random_aggregate_case],
        ids=["single", "join", "aggregate"],
    )
    def test_optimized_matches_unoptimized(self, seed, generator):
        made = generator(seed)
        if generator is random_case:
            query, table, name, description = made
            database = {name: table}
        else:
            query, database, description = made
        for mode in ("certain", "possible"):
            plain = answer_query(query, database, mode=mode, optimize=False)
            optimized = answer_query(query, database, mode=mode, optimize=True)
            assert plain.relation == optimized.relation, (
                f"optimizer changed the {mode} answer: {description} "
                f"(rewrites: {optimized.rewrites})"
            )
