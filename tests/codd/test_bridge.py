"""The Codd-table → IncompleteDataset bridge (Figure 1, bottom half)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codd.bridge import codd_table_to_incomplete_dataset
from repro.codd.codd_table import CoddTable, Null
from repro.core.queries import certain_label, q2_counts


@pytest.fixture
def table() -> CoddTable:
    return CoddTable(
        ("x1", "x2", "cls"),
        [
            (1.0, 2.0, 0),
            (Null([0.0, 5.0]), 1.0, 1),
            (3.0, Null([0.5, 1.5, 2.5]), 0),
        ],
    )


class TestConversion:
    def test_row_and_world_counts(self, table: CoddTable) -> None:
        ds = codd_table_to_incomplete_dataset(table, ("x1", "x2"), "cls")
        assert ds.n_rows == 3
        assert ds.candidate_counts().tolist() == [1, 2, 3]
        assert ds.n_worlds() == table.n_worlds() == 6

    def test_labels_carried_over(self, table: CoddTable) -> None:
        ds = codd_table_to_incomplete_dataset(table, ("x1", "x2"), "cls")
        assert ds.labels.tolist() == [0, 1, 0]

    def test_feature_order_respected(self, table: CoddTable) -> None:
        ds = codd_table_to_incomplete_dataset(table, ("x2", "x1"), "cls")
        np.testing.assert_allclose(ds.candidates(0), [[2.0, 1.0]])

    def test_two_nulls_in_one_row_take_cartesian_product(self) -> None:
        table = CoddTable(
            ("x1", "x2", "cls"), [(Null([0.0, 1.0]), Null([2.0, 3.0]), 1)]
        )
        ds = codd_table_to_incomplete_dataset(table, ("x1", "x2"), "cls")
        got = {tuple(row) for row in ds.candidates(0)}
        assert got == {(0.0, 2.0), (0.0, 3.0), (1.0, 2.0), (1.0, 3.0)}

    def test_null_label_rejected(self) -> None:
        table = CoddTable(("x", "cls"), [(1.0, Null([0, 1]))])
        with pytest.raises(ValueError, match="label"):
            codd_table_to_incomplete_dataset(table, ("x",), "cls")

    def test_label_listed_as_feature_rejected(self, table: CoddTable) -> None:
        with pytest.raises(ValueError, match="also listed"):
            codd_table_to_incomplete_dataset(table, ("x1", "cls"), "cls")

    def test_candidate_blowup_guard(self) -> None:
        table = CoddTable(
            ("a", "b", "cls"), [(Null(range(200)), Null(range(200)), 0)]
        )
        with pytest.raises(ValueError, match="cap"):
            codd_table_to_incomplete_dataset(table, ("a", "b"), "cls", max_candidates_per_row=100)

    def test_non_integral_label_rejected_not_truncated(self) -> None:
        # int(1.5) would silently become class 1 — a wrong label, not an error.
        table = CoddTable(("x", "cls"), [(1.0, 0), (2.0, 1.5)])
        with pytest.raises(ValueError, match="not integral"):
            codd_table_to_incomplete_dataset(table, ("x",), "cls")

    def test_string_label_rejected(self) -> None:
        table = CoddTable(("x", "cls"), [(1.0, "spam")])
        with pytest.raises(ValueError, match="not an integer"):
            codd_table_to_incomplete_dataset(table, ("x",), "cls")

    def test_integral_float_label_accepted(self) -> None:
        table = CoddTable(("x", "cls"), [(1.0, 0.0), (2.0, 1.0)])
        ds = codd_table_to_incomplete_dataset(table, ("x",), "cls")
        assert ds.labels.tolist() == [0, 1]

    def test_empty_feature_list_rejected(self) -> None:
        # A () feature list used to build degenerate shape-(1, 0) candidates.
        table = CoddTable(("x", "cls"), [(1.0, 0)])
        with pytest.raises(ValueError, match="at least one attribute"):
            codd_table_to_incomplete_dataset(table, (), "cls")


class TestEndToEndFigure1:
    """The same incomplete table answers both a SQL query and a CP query."""

    def test_cp_queries_run_on_bridged_dataset(self, table: CoddTable) -> None:
        ds = codd_table_to_incomplete_dataset(table, ("x1", "x2"), "cls")
        t = np.array([0.0, 1.0])
        counts = q2_counts(ds, t, k=1)
        assert sum(counts) == ds.n_worlds()
        # certain_label is None or a valid label, and consistent with counts
        label = certain_label(ds, t, k=1)
        if label is not None:
            assert counts[label] == ds.n_worlds()
