"""Unit tests for the complete-relation substrate."""

from __future__ import annotations

import pytest

from repro.codd.relation import Relation


@pytest.fixture
def person() -> Relation:
    return Relation(("name", "age"), [("John", 32), ("Anna", 29), ("Kevin", 30)])


class TestConstruction:
    def test_schema_preserved_in_order(self, person: Relation) -> None:
        assert person.schema == ("name", "age")

    def test_duplicates_collapse(self) -> None:
        rel = Relation(("a",), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_empty_relation_allowed(self) -> None:
        rel = Relation(("a", "b"))
        assert len(rel) == 0

    def test_empty_schema_rejected(self) -> None:
        with pytest.raises(ValueError, match="at least one attribute"):
            Relation((), [()])

    def test_duplicate_attribute_rejected(self) -> None:
        with pytest.raises(ValueError, match="duplicate"):
            Relation(("a", "a"), [])

    def test_non_string_attribute_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-empty strings"):
            Relation(("a", 3), [])

    def test_arity_mismatch_rejected(self) -> None:
        with pytest.raises(ValueError, match="arity"):
            Relation(("a", "b"), [(1,)])


class TestAccessors:
    def test_membership(self, person: Relation) -> None:
        assert ("Anna", 29) in person
        assert ("Anna", 30) not in person

    def test_column_values(self, person: Relation) -> None:
        assert person.column("age") == {29, 30, 32}

    def test_unknown_attribute_raises_keyerror(self, person: Relation) -> None:
        with pytest.raises(KeyError, match="zip"):
            person.attribute_index("zip")

    def test_equality_is_schema_and_rows(self, person: Relation) -> None:
        same = Relation(("name", "age"), [("Kevin", 30), ("Anna", 29), ("John", 32)])
        assert person == same
        assert hash(person) == hash(same)

    def test_inequality_on_schema(self, person: Relation) -> None:
        other = Relation(("n", "age"), person.rows)
        assert person != other


class TestOperators:
    def test_project_removes_duplicates(self) -> None:
        rel = Relation(("a", "b"), [(1, "x"), (1, "y")])
        assert rel.project(("a",)) == Relation(("a",), [(1,)])

    def test_project_reorders(self, person: Relation) -> None:
        swapped = person.project(("age", "name"))
        assert swapped.schema == ("age", "name")
        assert (29, "Anna") in swapped

    def test_union_and_difference(self) -> None:
        a = Relation(("x",), [(1,), (2,)])
        b = Relation(("x",), [(2,), (3,)])
        assert a.union(b) == Relation(("x",), [(1,), (2,), (3,)])
        assert a.difference(b) == Relation(("x",), [(1,)])

    def test_union_schema_mismatch(self) -> None:
        a = Relation(("x",), [(1,)])
        b = Relation(("y",), [(1,)])
        with pytest.raises(ValueError, match="union"):
            a.union(b)

    def test_natural_join_on_shared_attribute(self) -> None:
        left = Relation(("id", "name"), [(1, "a"), (2, "b")])
        right = Relation(("id", "dept"), [(1, "x"), (1, "y"), (3, "z")])
        joined = left.natural_join(right)
        assert joined.schema == ("id", "name", "dept")
        assert joined.rows == {(1, "a", "x"), (1, "a", "y")}

    def test_join_without_shared_attributes_is_product(self) -> None:
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [("x",), ("y",)])
        assert len(left.natural_join(right)) == 4

    def test_renamed(self, person: Relation) -> None:
        renamed = person.renamed({"name": "who"})
        assert renamed.schema == ("who", "age")
        assert renamed.rows == person.rows
