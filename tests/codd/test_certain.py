"""Certain/possible answers: Figure-1 walkthrough, tractable-vs-naive equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Literal,
    Negation,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.codd.certain import (
    certain_answers,
    certain_answers_naive,
    certain_answers_select_project,
    possible_answers,
    possible_answers_naive,
    possible_answers_select_project,
)
from repro.codd.codd_table import CoddTable, Null


def age_query() -> Project:
    """SELECT name FROM T WHERE age < 30 — the paper's Figure 1 query."""
    return Project(
        Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(30))), ("name",)
    )


class TestFigure1:
    """The running example of the paper's introduction."""

    @pytest.fixture
    def table(self) -> CoddTable:
        return CoddTable(
            ("name", "age"),
            [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
        )

    def test_certain_answer_is_anna_only(self, table: CoddTable) -> None:
        # Kevin's age may be 30, which fails the predicate: not certain.
        assert certain_answers(age_query(), table).rows == {("Anna",)}

    def test_possible_answers_include_kevin(self, table: CoddTable) -> None:
        assert possible_answers(age_query(), table).rows == {("Anna",), ("Kevin",)}

    def test_kevin_certain_once_cleaned_young(self, table: CoddTable) -> None:
        cleaned = table.with_cell_fixed(2, 1, 2)
        assert certain_answers(age_query(), cleaned).rows == {("Anna",), ("Kevin",)}

    def test_kevin_out_once_cleaned_old(self, table: CoddTable) -> None:
        cleaned = table.with_cell_fixed(2, 1, 30)
        assert certain_answers(age_query(), cleaned).rows == {("Anna",)}


class TestTractablePath:
    def test_identity_query_certain_rows_are_constant_rows(self) -> None:
        table = CoddTable(("a",), [(1,), (Null([2, 3]),)])
        assert certain_answers_select_project(Scan("T"), table).rows == {(1,)}

    def test_null_with_singleton_domain_is_effectively_constant(self) -> None:
        table = CoddTable(("a",), [(Null([7]),)])
        assert certain_answers_select_project(Scan("T"), table).rows == {(7,)}

    def test_projection_hides_uncertain_attribute(self) -> None:
        table = CoddTable(("name", "age"), [("Kevin", Null([1, 2]))])
        q = Project(Scan("T"), ("name",))
        # Kevin appears regardless of the NULL: certain after projection.
        assert certain_answers_select_project(q, table).rows == {("Kevin",)}

    def test_predicate_must_hold_for_all_completions(self) -> None:
        table = CoddTable(("age",), [(Null([10, 20]),)])
        lt_30 = Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(30)))
        lt_15 = Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(15)))
        # age < 30 holds for both completions, but projecting age keeps the
        # value visible, so neither completion's tuple is certain.
        assert certain_answers_select_project(lt_30, table).rows == set()
        # hiding the value makes it certain:
        table2 = CoddTable(("name", "age"), [("p", Null([10, 20]))])
        q = Project(
            Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(30))), ("name",)
        )
        assert certain_answers_select_project(q, table2).rows == {("p",)}
        q_strict = Project(
            Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(15))), ("name",)
        )
        assert certain_answers_select_project(q_strict, table2).rows == set()
        del lt_15

    def test_rename_supported(self) -> None:
        table = CoddTable(("a",), [(1,)])
        q = Select(Rename(Scan("T"), {"a": "b"}), Comparison(Attribute("b"), "==", Literal(1)))
        assert certain_answers(q, table).rows == {(1,)}

    def test_non_select_project_shape_rejected(self) -> None:
        table = CoddTable(("a",), [(1,)])
        q = Union(Scan("T"), Scan("T"))
        with pytest.raises(ValueError, match="shape"):
            certain_answers_select_project(q, table)
        with pytest.raises(ValueError, match="shape"):
            possible_answers_select_project(q, table)

    def test_dispatcher_falls_back_to_naive_for_union(self) -> None:
        table = CoddTable(("a",), [(Null([1, 2]),)])
        q = Union(Scan("T"), Scan("T"))
        assert certain_answers(q, table).rows == set()
        assert possible_answers(q, table).rows == {(1,), (2,)}


def small_codd_tables() -> st.SearchStrategy[CoddTable]:
    """Random 1-3 row, 2-attribute tables over a tiny value universe."""
    cell = st.one_of(
        st.integers(min_value=0, max_value=3),
        st.builds(
            Null,
            st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3, unique=True),
        ),
    )
    row = st.tuples(cell, cell)
    return st.builds(
        CoddTable, st.just(("a", "b")), st.lists(row, min_size=1, max_size=3)
    )


def select_project_queries() -> st.SearchStrategy:
    comparison = st.builds(
        Comparison,
        st.sampled_from([Attribute("a"), Attribute("b")]),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        st.one_of(
            st.builds(Literal, st.integers(min_value=0, max_value=3)),
            st.sampled_from([Attribute("a"), Attribute("b")]),
        ),
    )
    predicate = st.one_of(
        comparison,
        st.builds(lambda p, q: Conjunction(p, q), comparison, comparison),
        st.builds(Negation, comparison),
    )
    selected = st.builds(Select, st.just(Scan("T")), predicate)
    return st.one_of(
        selected,
        st.builds(Project, selected, st.sampled_from([("a",), ("b",), ("a", "b")])),
        st.builds(Project, st.just(Scan("T")), st.sampled_from([("a",), ("b",)])),
    )


class TestTractableMatchesNaive:
    """The select-project fast path must agree with world enumeration."""

    @settings(max_examples=150, deadline=None)
    @given(table=small_codd_tables(), query=select_project_queries())
    def test_certain_answers_agree(self, table: CoddTable, query) -> None:
        fast = certain_answers_select_project(query, table)
        naive = certain_answers_naive(query, table)
        assert fast == naive

    @settings(max_examples=150, deadline=None)
    @given(table=small_codd_tables(), query=select_project_queries())
    def test_possible_answers_agree(self, table: CoddTable, query) -> None:
        fast = possible_answers_select_project(query, table)
        naive = possible_answers_naive(query, table)
        assert fast == naive


class TestCleaningMonotonicity:
    """Fixing a NULL can only grow certain answers and shrink possible ones."""

    @settings(max_examples=80, deadline=None)
    @given(table=small_codd_tables(), query=select_project_queries(), data=st.data())
    def test_monotone_under_cell_fix(self, table: CoddTable, query, data) -> None:
        if table.n_variables == 0:
            return
        r, c, null = table.variables[0]
        value = data.draw(st.sampled_from(null.domain), label="cleaned value")
        cleaned = table.with_cell_fixed(r, c, value)
        assert certain_answers(query, table).rows <= certain_answers(query, cleaned).rows
        assert possible_answers(query, cleaned).rows <= possible_answers(query, table).rows


class TestGuards:
    def test_naive_enumeration_cap(self) -> None:
        # 21 binary NULLs -> 2^21 worlds, above the 10^6 cap.
        rows = [(Null([0, 1]), 0)] * 21
        table = CoddTable(("a", "b"), rows)
        with pytest.raises(ValueError, match="cap"):
            certain_answers_naive(Union(Scan("T"), Scan("T")), table)
        # ... but the tractable path handles the same table instantly.
        assert certain_answers(Project(Scan("T"), ("b",)), table).rows == {(0,)}
