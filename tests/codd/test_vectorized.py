"""The vectorized certain-answer engine: grid layout, exactness, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.codd.certain import (
    certain_answers,
    certain_answers_naive,
    certain_select_project_rowwise,
    possible_answers,
    possible_answers_naive,
    possible_select_project_rowwise,
)
from repro.codd.codd_table import CoddTable, Null
from repro.codd.engine import (
    CoddPlanError,
    NaiveCoddBackend,
    VectorizedCoddBackend,
    answer_query,
    capable_codd_backends,
    codd_backend_names,
    get_codd_backend,
    plan_codd_query,
    register_codd_backend,
    scan_relations,
)
from repro.codd.vectorized import (
    StackedTable,
    certain_answers_vectorized,
    estimate_stacked_cells,
    possible_answers_vectorized,
)


class TestStackedTable:
    def test_grid_matches_rowwise_completion_order(self):
        table = CoddTable(
            ("a", "b"),
            [(Null([1, 2]), Null(["x", "y", "z"])), (7, "w")],
        )
        stacked = StackedTable(table)
        assert stacked.total == 7
        assert stacked.counts.tolist() == [6, 1]
        assert stacked.offsets.tolist() == [0, 6]
        # First NULL varies slowest (itertools.product order).
        assert stacked.columns[0].tolist() == [1, 1, 1, 2, 2, 2, 7]
        assert stacked.columns[1].tolist() == ["x", "y", "z", "x", "y", "z", "w"]

    def test_varying_flags(self):
        table = CoddTable(("a", "b"), [(1, Null([2, 3]))])
        stacked = StackedTable(table)
        assert stacked.varying == (False, True)

    def test_numeric_column_views(self):
        table = CoddTable(
            ("num", "text", "big"),
            [(1, "x", 2**60), (Null([2.5, 3]), "y", 1)],
        )
        stacked = StackedTable(table)
        numeric = stacked.numeric_column(0)
        assert numeric is not None and numeric.dtype == np.float64
        assert stacked.numeric_column(1) is None  # strings
        assert stacked.numeric_column(2) is None  # beyond float64 exactness

    def test_estimate_matches_grid(self):
        table = CoddTable(("a", "b"), [(Null([1, 2, 3]), Null([0, 1])), (5, 6)])
        assert estimate_stacked_cells(table) == StackedTable(table).total * 2

    def test_stacking_cap_enforced(self):
        rows = [(Null([0, 1]),)] * 1  # 2 completions, far below any cap
        table = CoddTable(("a",), rows)
        StackedTable(table)  # fine
        import repro.codd.vectorized as vec

        big = CoddTable(("a",), [(Null(range(2)),) for _ in range(30)])
        old = vec.MAX_STACKED_CELLS
        vec.MAX_STACKED_CELLS = 10
        try:
            with pytest.raises(ValueError, match="stacking cap"):
                StackedTable(big)
        finally:
            vec.MAX_STACKED_CELLS = old


class TestExactness:
    """The engine must be bit-exact where float64 would not be."""

    def test_big_integers_never_go_through_floats(self):
        table = CoddTable(
            ("a", "b"),
            [(2**60, Null([2**60, 2**60 + 1]))],
        )
        query = Select(Scan("T"), Comparison(Attribute("a"), "==", Attribute("b")))
        # 2**60 and 2**60 + 1 collapse as float64; exactly one completion
        # matches, so the answer is possible but not certain.
        assert certain_answers_vectorized(query, table).rows == set()
        assert possible_answers_vectorized(query, table).rows == {
            (2**60, 2**60)
        }
        assert certain_answers_naive(query, table).rows == set()

    def test_emitted_cells_are_original_objects(self):
        value = 2**70  # far outside float64
        table = CoddTable(("a",), [(value,), (Null([value, 1]),)])
        result = possible_answers_vectorized(Scan("T"), table)
        emitted = {row[0] for row in result.rows}
        assert emitted == {value, 1}
        assert all(isinstance(v, int) for v in emitted)

    def test_string_ordering_comparisons(self):
        table = CoddTable(("s",), [(Null(["apple", "pear"]),), ("fig",)])
        query = Select(Scan("T"), Comparison(Attribute("s"), "<", Literal("melon")))
        assert certain_answers_vectorized(query, table) == certain_answers_naive(
            query, table
        )
        assert possible_answers_vectorized(query, table).rows == {
            ("apple",),
            ("fig",),
        }

    def test_mixed_type_ordering_raises_like_python(self):
        table = CoddTable(("a",), [(1,), ("x",)])
        query = Select(Scan("T"), Comparison(Attribute("a"), "<", Literal(5)))
        with pytest.raises(TypeError):
            certain_answers_vectorized(query, table)

    def test_mixed_type_equality_is_false_not_an_error(self):
        table = CoddTable(("a",), [(Null([1, "x"]),)])
        query = Select(Scan("T"), Comparison(Attribute("a"), "==", Literal("x")))
        assert possible_answers_vectorized(query, table).rows == {("x",)}
        assert certain_answers_vectorized(query, table).rows == set()

    def test_rename_and_projection(self):
        table = CoddTable(("a", "b"), [(1, Null([5, 6])), (2, 9)])
        query = Project(
            Select(
                Rename(Scan("T"), {"a": "key"}),
                Comparison(Attribute("key"), ">=", Literal(1)),
            ),
            ("key",),
        )
        assert certain_answers_vectorized(query, table).rows == {(1,), (2,)}

    def test_empty_table(self):
        table = CoddTable(("a",), [])
        assert certain_answers_vectorized(Scan("T"), table).rows == set()
        assert possible_answers_vectorized(Scan("T"), table).rows == set()

    def test_empty_conjunction_and_disjunction(self):
        table = CoddTable(("a",), [(Null([1, 2]),)])
        everything = Select(Scan("T"), Conjunction())
        nothing = Select(Scan("T"), Disjunction())
        assert possible_answers_vectorized(everything, table).rows == {(1,), (2,)}
        assert possible_answers_vectorized(nothing, table).rows == set()

    def test_negation_and_literal_comparison(self):
        table = CoddTable(("a",), [(Null([1, 2]),), (3,)])
        query = Select(
            Scan("T"),
            Conjunction(
                Negation(Comparison(Attribute("a"), "==", Literal(2))),
                Comparison(Literal(1), "<", Literal(5)),  # vacuous, vectorised
            ),
        )
        assert possible_answers_vectorized(query, table).rows == {(1,), (3,)}
        assert certain_answers_vectorized(query, table).rows == {(3,)}

    def test_prepared_grid_is_reused(self):
        table = CoddTable(("a",), [(Null([1, 2]),)])
        stacked = StackedTable(table)
        query = Select(Scan("T"), Comparison(Attribute("a"), "==", Literal(1)))
        result = certain_answers_vectorized(query, table, stacked=stacked)
        assert result.rows == set()
        # A grid from a different table object is ignored, not misused.
        other = CoddTable(("a",), [(5,)])
        assert certain_answers_vectorized(Scan("T"), other, stacked=stacked).rows == {
            (5,)
        }

    def test_content_equal_grid_is_accepted_without_rebuild(self):
        # Inline service tables are decoded fresh per request; a grid that
        # matches by fingerprint must be reused, not rebuilt.
        from repro.codd.vectorized import _grid_for

        table = CoddTable(("a",), [(Null([1, 2]),)])
        twin = CoddTable(("a",), [(Null([1, 2]),)])
        stacked = StackedTable(table)
        assert _grid_for(stacked, twin) is stacked
        assert possible_answers_vectorized(Scan("T"), twin, stacked=stacked).rows == {
            (1,),
            (2,),
        }


class TestEngineRegistry:
    def test_default_backends_registered_in_order(self):
        names = codd_backend_names()
        assert names[:3] == ["vectorized", "rowwise", "naive"]

    def test_auto_plans_vectorized_for_select_project(self):
        table = CoddTable(("a",), [(Null([1, 2]),)] * 4)
        plan = plan_codd_query(Scan("T"), {"T": table})
        assert plan.backend == "vectorized"
        assert dict(plan.considered).keys() == {"vectorized", "rowwise", "naive"}

    def test_auto_falls_back_to_naive_for_union(self):
        table = CoddTable(("a",), [(Null([1, 2]),)])
        query = Union(Scan("T"), Scan("T"))
        plan = plan_codd_query(query, {"T": table})
        assert plan.backend == "naive"
        result = answer_query(query, {"T": table}, mode="possible")
        assert result.relation.rows == {(1,), (2,)}
        assert result.plan.backend == "naive"

    def test_explicit_backend_is_validated(self):
        # An incomplete table on both sides of a Union couples its worlds
        # across the sides, which only the naive backend can serve.
        table = CoddTable(("a",), [(Null([1, 2]),)])
        with pytest.raises(CoddPlanError, match="cannot serve"):
            plan_codd_query(Union(Scan("T"), Scan("T")), {"T": table}, backend="vectorized")
        with pytest.raises(CoddPlanError, match="unknown codd backend"):
            plan_codd_query(Scan("T"), {"T": table}, backend="bogus")

    def test_every_backend_agrees(self):
        table = CoddTable(
            ("name", "age"),
            [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
        )
        query = Project(
            Select(Scan("T"), Comparison(Attribute("age"), "<", Literal(30))),
            ("name",),
        )
        results = {
            name: answer_query(query, {"T": table}, mode="certain", backend=name).relation
            for name in ("vectorized", "rowwise", "naive")
        }
        assert results["vectorized"] == results["rowwise"] == results["naive"]
        assert results["vectorized"].rows == {("Anna",)}

    def test_capable_backends_filters_by_shape(self):
        table = CoddTable(("a",), [(Null([1, 2]),)])
        names = {b.name for b in capable_codd_backends(Union(Scan("T"), Scan("T")), {"T": table})}
        assert "vectorized" not in names and "naive" in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codd_backend(NaiveCoddBackend())

    def test_unknown_mode_rejected(self):
        table = CoddTable(("a",), [(1,)])
        with pytest.raises(ValueError, match="mode"):
            answer_query(Scan("T"), {"T": table}, mode="definite")

    def test_vectorized_lru_reuses_grids_by_fingerprint(self):
        backend = VectorizedCoddBackend(max_prepared=2)
        table = CoddTable(("a",), [(Null([1, 2]),)])
        twin = CoddTable(("a",), [(Null([1, 2]),)])  # same content, new Nulls
        backend.certain(Scan("T"), {"T": table})
        assert len(backend._prepared) == 1
        backend.certain(Scan("T"), {"T": twin})  # fingerprint hit, no growth
        assert len(backend._prepared) == 1

    def test_prepared_mapping_handed_in_wins(self):
        backend = VectorizedCoddBackend()
        table = CoddTable(("a",), [(Null([1, 2]),)])
        stacked = StackedTable(table)
        backend.possible(Scan("T"), {"T": table}, prepared={"T": stacked})
        assert len(backend._prepared) == 0  # the handed grid was used

    def test_mixed_type_ordering_matches_the_streaming_reference(self):
        # The grid evaluates every completion at once; the reference path
        # (like the naive oracle's per-world loop) skips a row as soon as
        # its first completion fails the predicate, never touching the
        # non-comparable one. The engine must agree with the reference:
        # an answer here, not a TypeError.
        table = CoddTable(("x",), [(Null([5, "a"]),)])
        query = Select(Scan("T"), Comparison(Attribute("x"), "<", Literal(2)))
        assert certain_select_project_rowwise(query, table).rows == set()
        assert certain_answers(query, table).rows == set()  # auto → vectorized
        assert answer_query(
            query, {"T": table}, mode="certain", backend="vectorized"
        ).relation.rows == set()
        # The public select-project front door must answer the same way.
        from repro.codd.certain import certain_answers_select_project

        assert certain_answers_select_project(query, table).rows == set()
        # `possible` must enumerate the bad completion on every path.
        with pytest.raises(TypeError):
            possible_select_project_rowwise(query, table)
        with pytest.raises(TypeError):
            possible_answers(query, table)

    def test_rowwise_refuses_unbounded_scans(self):
        import repro.codd.engine as eng

        # One row with 10 NULLs of 10 values each: 10^10 row-local
        # completions, far beyond both the stacking cap and the rowwise
        # cell bound — planning must fail fast instead of pinning a
        # thread in a years-long Python loop.
        table = CoddTable(
            tuple(f"v{i}" for i in range(10)), [[Null(range(10))] * 10]
        )
        assert not get_codd_backend("rowwise").supports(Scan("T"), {"T": table})
        plan = plan_codd_query(Scan("T"), {"T": table})
        assert plan.backend == "naive"  # ... whose world cap raises promptly
        with pytest.raises(ValueError, match="cap"):
            answer_query(Scan("T"), {"T": table}, mode="certain")
        assert eng.MAX_ROWWISE_CELLS > eng.MAX_STACKED_CELLS

    def test_scan_relations_walks_every_shape(self):
        query = Union(
            Select(Scan("a"), Comparison(Attribute("x"), "==", Literal(1))),
            Project(Rename(Scan("b"), {"x": "y"}), ("y",)),
        )
        assert scan_relations(query) == ["a", "b"]


class TestDispatcherRegression:
    """The `name=` binding must be validated on every path (the tractable
    path used to silently evaluate a `person` query against `T`)."""

    @pytest.fixture
    def table(self):
        return CoddTable(("a",), [(Null([1, 2]),), (3,)])

    def test_tractable_dispatch_validates_relation_name(self, table):
        query = Project(Scan("person"), ("a",))
        with pytest.raises(KeyError, match="person"):
            certain_answers(query, table)  # bound as the default "T"
        with pytest.raises(KeyError, match="person"):
            possible_answers(query, table)

    def test_naive_and_tractable_raise_the_same_way(self, table):
        query = Union(Scan("person"), Scan("person"))  # forces the naive path
        with pytest.raises(KeyError, match="person"):
            certain_answers(query, table)

    def test_matching_name_binds_correctly(self, table):
        query = Project(Scan("person"), ("a",))
        result = certain_answers(query, table, name="person")
        assert result.rows == {(3,)}
        assert possible_answers(query, table, name="person").rows == {(1,), (2,), (3,)}

    def test_rowwise_helpers_validate_too(self, table):
        query = Project(Scan("person"), ("a",))
        with pytest.raises(KeyError, match="person"):
            certain_select_project_rowwise(query, table)
        with pytest.raises(KeyError, match="person"):
            possible_select_project_rowwise(query, table)
        assert certain_select_project_rowwise(query, table, name="person").rows == {
            (3,)
        }
