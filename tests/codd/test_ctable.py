"""Conditional tables: closure under the algebra and certain answers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Difference,
    Join,
    Literal,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.codd.ctable import (
    CAnd,
    CComparison,
    CNot,
    COr,
    CTable,
    CTrue,
    CVar,
    ConditionalRow,
    ctable_certain_answers,
    ctable_certain_rows,
    ctable_possible_answers,
    evaluate_ctable,
)
from repro.codd.relation import Relation


class TestConditions:
    def test_ctrue_always_holds(self) -> None:
        assert CTrue().holds({})

    def test_comparison_resolves_variables(self) -> None:
        x = CVar("x", [1, 2])
        assert CComparison(x, "==", 1).holds({"x": 1})
        assert not CComparison(x, "==", 1).holds({"x": 2})

    def test_connectives(self) -> None:
        x = CVar("x", [1, 2])
        c = CComparison(x, "==", 1)
        assert CAnd(c, CTrue()).holds({"x": 1})
        assert COr(CNot(c), c).holds({"x": 2})
        assert not CAnd(c, CNot(CTrue())).holds({"x": 1})

    def test_unknown_operator_rejected(self) -> None:
        with pytest.raises(ValueError, match="operator"):
            CComparison(1, "~", 2)

    def test_variable_needs_domain(self) -> None:
        with pytest.raises(ValueError, match="domain"):
            CVar("x", [])
        with pytest.raises(ValueError, match="non-empty"):
            CVar("", [1])


class TestCTableModel:
    def test_variables_collected_from_cells_and_conditions(self) -> None:
        x, y = CVar("x", [1, 2]), CVar("y", [0, 1])
        table = CTable(
            ("a",), [ConditionalRow((x,), CComparison(y, "==", 1))]
        )
        assert set(table.variables) == {"x", "y"}
        assert table.n_valuations() == 4

    def test_conflicting_domains_rejected(self) -> None:
        with pytest.raises(ValueError, match="two different domains"):
            CTable(
                ("a", "b"),
                [ConditionalRow((CVar("x", [1]), CVar("x", [1, 2])))],
            )

    def test_shared_variable_correlates_cells(self) -> None:
        # The classic c-table power: two cells forced equal.
        x = CVar("x", [1, 2])
        table = CTable(("a", "b"), [ConditionalRow((x, x))])
        worlds = {frozenset(w.rows) for w in table.possible_worlds()}
        assert worlds == {frozenset({(1, 1)}), frozenset({(2, 2)})}

    def test_condition_can_suppress_row(self) -> None:
        x = CVar("x", [1, 2])
        table = CTable(
            ("a",),
            [ConditionalRow((0,), CComparison(x, "==", 1)), ConditionalRow((9,))],
        )
        sizes = sorted(len(w) for w in table.possible_worlds())
        assert sizes == [1, 2]

    def test_arity_checked(self) -> None:
        with pytest.raises(ValueError, match="arity"):
            CTable(("a", "b"), [ConditionalRow((1,))])

    def test_from_relation(self) -> None:
        rel = Relation(("a",), [(1,), (2,)])
        table = CTable.from_relation(rel)
        assert table.n_valuations() == 1
        assert next(iter(table.possible_worlds())) == rel


def run_both(query, ctable: CTable, name: str = "T"):
    """Evaluate over the c-table and, world-by-world, over its possible worlds."""
    from repro.codd.algebra import evaluate

    result_table = evaluate_ctable(query, {name: ctable})
    symbolic = [result_table.world(v) for v in ctable_valuations_of(result_table, ctable)]
    direct = [evaluate(query, {name: w}) for w in ctable.possible_worlds()]
    return symbolic, direct


def ctable_valuations_of(result: CTable, source: CTable):
    """Valuations of the *source* extended over any vars the result shares.

    Evaluation never invents variables, so the source's valuations cover the
    result; missing names (rows whose condition folded to constants) get a
    dummy pass-through.
    """
    for valuation in source.valuations():
        yield valuation


class TestClosure:
    """evaluate_ctable must commute with possible-world semantics."""

    @pytest.fixture
    def table(self) -> CTable:
        x, y = CVar("x", [1, 2]), CVar("y", [2, 3])
        return CTable(
            ("a", "b"),
            [
                ConditionalRow((1, "u")),
                ConditionalRow((x, "v")),
                ConditionalRow((y, "u"), CComparison(x, "==", 2)),
            ],
        )

    @pytest.mark.parametrize(
        "query",
        [
            Select(Scan("T"), Comparison(Attribute("a"), "<", Literal(3))),
            Select(Scan("T"), Comparison(Attribute("b"), "==", Literal("u"))),
            Project(Scan("T"), ("a",)),
            Project(Scan("T"), ("b",)),
            Rename(Scan("T"), {"a": "z"}),
            Union(Scan("T"), Scan("T")),
        ],
        ids=["select-num", "select-str", "project-a", "project-b", "rename", "union"],
    )
    def test_unary_ops_commute_with_worlds(self, table: CTable, query) -> None:
        symbolic, direct = run_both(query, table)
        assert symbolic == direct

    def test_join_commutes_with_worlds(self, table: CTable) -> None:
        q = Join(
            Project(Scan("T"), ("a",)),
            Rename(Project(Scan("T"), ("b",)), {"b": "c"}),
        )
        symbolic, direct = run_both(q, table)
        assert symbolic == direct

    def test_self_join_on_uncertain_attribute(self) -> None:
        x = CVar("x", [1, 2])
        table = CTable(("a", "b"), [ConditionalRow((x, "l")), ConditionalRow((2, "r"))])
        q = Join(
            Project(Scan("T"), ("a",)), Project(Scan("T"), ("a",))
        )
        symbolic, direct = run_both(q, table)
        assert symbolic == direct

    def test_difference_commutes_with_worlds(self, table: CTable) -> None:
        young = Select(Scan("T"), Comparison(Attribute("a"), "<", Literal(2)))
        q = Difference(Scan("T"), young)
        symbolic, direct = run_both(q, table)
        assert symbolic == direct

    def test_difference_with_variables_on_both_sides(self) -> None:
        x = CVar("x", [1, 2])
        left = CTable(("a",), [ConditionalRow((x,)), ConditionalRow((1,))])
        q = Difference(Scan("T"), Select(Scan("T"), Comparison(Attribute("a"), "==", Literal(2))))
        symbolic = evaluate_ctable(q, {"T": left})
        for valuation, world in zip(left.valuations(), left.possible_worlds()):
            from repro.codd.algebra import evaluate

            assert symbolic.world(valuation) == evaluate(q, {"T": world})


class TestCertainAnswers:
    def test_certain_rows_fast_path(self) -> None:
        x = CVar("x", [1, 2])
        table = CTable(
            ("a",),
            [
                ConditionalRow((7,)),  # constant, unconditional: certain
                ConditionalRow((x,)),  # variable cell: not syntactically certain
                ConditionalRow((8,), CComparison(x, "==", 1)),  # conditional
                ConditionalRow((9,), COr(CComparison(x, "==", 1), CComparison(x, "==", 2))),
            ],
        )
        # Row 9's condition is valid over x's domain: certain.
        assert ctable_certain_rows(table).rows == {(7,), (9,)}

    def test_fast_path_is_sound_but_incomplete(self) -> None:
        # (1,) is certain through *different* rows in different valuations;
        # the syntactic path misses it, full enumeration finds it.
        x = CVar("x", [1, 2])
        table = CTable(
            ("a",),
            [
                ConditionalRow((1,), CComparison(x, "==", 1)),
                ConditionalRow((1,), CComparison(x, "==", 2)),
            ],
        )
        assert ctable_certain_rows(table).rows == set()
        assert ctable_certain_answers(table).rows == {(1,)}

    def test_certain_vs_possible(self) -> None:
        x = CVar("x", [1, 2])
        table = CTable(("a",), [ConditionalRow((x,)), ConditionalRow((1,))])
        assert ctable_certain_answers(table).rows == {(1,)}
        assert ctable_possible_answers(table).rows == {(1,), (2,)}

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_certain_subset_of_possible(self, data: st.data) -> None:
        x = CVar("x", [0, 1])
        y = CVar("y", [0, 1, 2])
        cells = st.sampled_from([0, 1, 2, x, y])
        conds = st.sampled_from(
            [CTrue(), CComparison(x, "==", 1), CNot(CComparison(y, "<", 1)),
             CAnd(CComparison(x, "==", 0), CComparison(y, "!=", 2))]
        )
        rows = data.draw(
            st.lists(st.builds(ConditionalRow, st.tuples(cells), conds), min_size=1, max_size=4),
            label="rows",
        )
        table = CTable(("a",), rows)
        certain = ctable_certain_answers(table).rows
        possible = ctable_possible_answers(table).rows
        assert certain <= possible
        assert ctable_certain_rows(table).rows <= certain
