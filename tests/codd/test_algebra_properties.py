"""Property-based algebraic identities of the relational evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Difference,
    Disjunction,
    Join,
    Literal,
    Negation,
    Project,
    Scan,
    Select,
    Union,
    evaluate,
)
from repro.codd.relation import Relation


def relations() -> st.SearchStrategy[Relation]:
    row = st.tuples(
        st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
    )
    return st.builds(
        Relation, st.just(("a", "b")), st.lists(row, min_size=0, max_size=6)
    )


def predicates() -> st.SearchStrategy:
    comparison = st.builds(
        Comparison,
        st.sampled_from([Attribute("a"), Attribute("b")]),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        st.one_of(
            st.builds(Literal, st.integers(min_value=0, max_value=3)),
            st.sampled_from([Attribute("a"), Attribute("b")]),
        ),
    )
    return st.one_of(comparison, st.builds(Negation, comparison))


class TestSelectionIdentities:
    @settings(max_examples=80, deadline=None)
    @given(rel=relations(), p=predicates(), q=predicates())
    def test_selections_commute_and_fuse(self, rel: Relation, p, q) -> None:
        db = {"R": rel}
        pq = evaluate(Select(Select(Scan("R"), p), q), db)
        qp = evaluate(Select(Select(Scan("R"), q), p), db)
        fused = evaluate(Select(Scan("R"), Conjunction(p, q)), db)
        assert pq == qp == fused

    @settings(max_examples=60, deadline=None)
    @given(rel=relations(), p=predicates())
    def test_selection_is_idempotent(self, rel: Relation, p) -> None:
        db = {"R": rel}
        once = evaluate(Select(Scan("R"), p), db)
        twice = evaluate(Select(Select(Scan("R"), p), p), db)
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(rel=relations(), p=predicates())
    def test_excluded_middle_partitions(self, rel: Relation, p) -> None:
        db = {"R": rel}
        yes = evaluate(Select(Scan("R"), p), db)
        no = evaluate(Select(Scan("R"), Negation(p)), db)
        assert yes.rows & no.rows == set()
        assert yes.rows | no.rows == rel.rows

    @settings(max_examples=60, deadline=None)
    @given(rel=relations(), p=predicates(), q=predicates())
    def test_disjunction_is_union_of_selections(self, rel: Relation, p, q) -> None:
        db = {"R": rel}
        either = evaluate(Select(Scan("R"), Disjunction(p, q)), db)
        union = evaluate(Union(Select(Scan("R"), p), Select(Scan("R"), q)), db)
        assert either == union


class TestSetIdentities:
    @settings(max_examples=60, deadline=None)
    @given(rel=relations())
    def test_union_and_difference_with_self(self, rel: Relation) -> None:
        db = {"R": rel}
        assert evaluate(Union(Scan("R"), Scan("R")), db) == rel
        assert len(evaluate(Difference(Scan("R"), Scan("R")), db)) == 0

    @settings(max_examples=60, deadline=None)
    @given(rel=relations(), p=predicates())
    def test_difference_equals_negated_selection(self, rel: Relation, p) -> None:
        db = {"R": rel}
        by_difference = evaluate(Difference(Scan("R"), Select(Scan("R"), p)), db)
        by_negation = evaluate(Select(Scan("R"), Negation(p)), db)
        assert by_difference == by_negation


class TestProjectionAndJoin:
    @settings(max_examples=60, deadline=None)
    @given(rel=relations())
    def test_projection_is_idempotent(self, rel: Relation) -> None:
        db = {"R": rel}
        once = evaluate(Project(Scan("R"), ("a",)), db)
        twice = evaluate(Project(Project(Scan("R"), ("a",)), ("a",)), db)
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(rel=relations())
    def test_self_join_is_identity(self, rel: Relation) -> None:
        # Natural join with itself on the full shared schema changes nothing.
        db = {"R": rel}
        assert evaluate(Join(Scan("R"), Scan("R")), db) == rel

    @settings(max_examples=60, deadline=None)
    @given(left=relations(), right=relations())
    def test_join_commutes_up_to_column_order(self, left: Relation, right: Relation) -> None:
        db = {"L": left, "R": right.renamed({"b": "c"})}
        lr = evaluate(Join(Scan("L"), Scan("R")), db)
        rl = evaluate(Join(Scan("R"), Scan("L")), db)
        assert lr.project(("a", "b", "c")) == rl.project(("a", "b", "c"))

    @settings(max_examples=60, deadline=None)
    @given(rel=relations(), p=predicates())
    def test_selection_pushes_through_join(self, rel: Relation, p) -> None:
        # σ_p(R ⋈ S) == σ_p(R) ⋈ S when p reads only R's attributes —
        # here S shares the full schema, so both sides apply.
        db = {"R": rel}
        outside = evaluate(Select(Join(Scan("R"), Scan("R")), p), db)
        inside = evaluate(Join(Select(Scan("R"), p), Scan("R")), db)
        assert outside == inside


@pytest.mark.parametrize("bad_schema_pair", [(("a",), ("b",)), (("a", "b"), ("a",))])
def test_union_compatible_schemas_enforced(bad_schema_pair) -> None:
    left = Relation(bad_schema_pair[0], [])
    right = Relation(bad_schema_pair[1], [])
    with pytest.raises(ValueError):
        evaluate(Union(Scan("L"), Scan("R")), {"L": left, "R": right})
