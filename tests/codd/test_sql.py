"""The SQL front door: parsing, precedence, errors, agreement with the algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codd.algebra import (
    Aggregate,
    AggregateSpec,
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Join,
    Literal,
    Negation,
    Project,
    Rename,
    Scan,
    Select,
    evaluate,
)
from repro.codd.certain import certain_answers
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation
from repro.codd.sql import SqlError, _tokenize, parse_sql, referenced_tables


class TestParsing:
    def test_figure1_query(self) -> None:
        query = parse_sql("SELECT name FROM person WHERE age < 30")
        assert query == Project(
            Select(Scan("person"), Comparison(Attribute("age"), "<", Literal(30))),
            ("name",),
        )

    def test_star_means_no_projection(self) -> None:
        assert parse_sql("SELECT * FROM t") == Scan("t")

    def test_star_with_where(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE a = 1")
        assert query == Select(Scan("t"), Comparison(Attribute("a"), "==", Literal(1)))

    def test_multiple_columns(self) -> None:
        query = parse_sql("SELECT a, b FROM t")
        assert query == Project(Scan("t"), ("a", "b"))

    def test_keywords_case_insensitive(self) -> None:
        assert parse_sql("select a from t") == parse_sql("SELECT a FROM t")

    def test_string_literals_both_quote_styles(self) -> None:
        single = parse_sql("SELECT * FROM t WHERE city = 'Rome'")
        double = parse_sql('SELECT * FROM t WHERE city = "Rome"')
        assert single == double

    def test_numbers_parse_as_int_or_float(self) -> None:
        q_int = parse_sql("SELECT * FROM t WHERE a = 3")
        q_float = parse_sql("SELECT * FROM t WHERE a = 3.5")
        assert q_int.predicate.right == Literal(3)
        assert q_float.predicate.right == Literal(3.5)

    def test_sql_operator_spellings(self) -> None:
        eq = parse_sql("SELECT * FROM t WHERE a = 1")
        neq = parse_sql("SELECT * FROM t WHERE a <> 1")
        assert eq.predicate.op == "=="
        assert neq.predicate.op == "!="

    def test_column_to_column_comparison(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE a < b")
        assert query.predicate == Comparison(Attribute("a"), "<", Attribute("b"))


class TestPrecedence:
    def test_and_binds_tighter_than_or(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        pred = query.predicate
        assert isinstance(pred, Disjunction)
        assert isinstance(pred.parts[1], Conjunction)

    def test_parentheses_override(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        pred = query.predicate
        assert isinstance(pred, Conjunction)
        assert isinstance(pred.parts[0], Disjunction)

    def test_not_binds_tightest(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE NOT a = 1 AND b = 2")
        pred = query.predicate
        assert isinstance(pred, Conjunction)
        assert isinstance(pred.parts[0], Negation)

    def test_double_negation(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE NOT NOT a = 1")
        assert isinstance(query.predicate, Negation)
        assert isinstance(query.predicate.part, Negation)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT FROM t",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a",
            "SELECT a FROM t WHERE a <",
            "SELECT a FROM t WHERE (a = 1",
            "SELECT a FROM t extra",
            "DELETE FROM t",
            "SELECT a FROM t WHERE a ~ 1",
        ],
        ids=lambda s: repr(s)[:30],
    )
    def test_malformed_queries_raise(self, text: str) -> None:
        with pytest.raises(SqlError):
            parse_sql(text)

    def test_sql_error_is_value_error(self) -> None:
        assert issubclass(SqlError, ValueError)

    def test_errors_carry_offset_and_context(self) -> None:
        with pytest.raises(SqlError, match=r"at offset 24 near") as exc_info:
            parse_sql("SELECT a FROM t WHERE a ~ 1")
        assert exc_info.value.offset == 24
        with pytest.raises(SqlError, match=r"end of query") as exc_info:
            parse_sql("SELECT a FROM t WHERE a <")
        assert exc_info.value.offset == len("SELECT a FROM t WHERE a <")

    def test_multi_table_without_schemas_is_a_clear_error(self) -> None:
        with pytest.raises(SqlError, match="referenced_tables"):
            parse_sql("SELECT a.x FROM t a JOIN u b ON a.x = b.y")

    def test_unknown_table_with_schemas(self) -> None:
        with pytest.raises(SqlError, match="unknown table 'u'"):
            parse_sql(
                "SELECT a.x FROM t a JOIN u b ON a.x = b.y", schemas={"t": ("x",)}
            )

    def test_duplicate_alias_rejected(self) -> None:
        with pytest.raises(SqlError, match="duplicate table alias"):
            parse_sql(
                "SELECT a.x FROM t a JOIN u a ON 1 = 1",
                schemas={"t": ("x",), "u": ("y",)},
            )

    def test_group_by_without_aggregate_rejected(self) -> None:
        with pytest.raises(SqlError, match="at least one aggregate"):
            parse_sql("SELECT g FROM t GROUP BY g")

    def test_bare_column_next_to_aggregate_needs_group_by(self) -> None:
        with pytest.raises(SqlError, match="must appear in GROUP BY"):
            parse_sql("SELECT g, COUNT(*) FROM t")

    def test_select_star_with_aggregation_rejected(self) -> None:
        with pytest.raises(SqlError, match=r"cannot SELECT \*"):
            parse_sql("SELECT * FROM t GROUP BY g")


class TestTokenizer:
    def test_doubled_quote_escapes(self) -> None:
        q = parse_sql("SELECT * FROM t WHERE a = 'it''s'")
        assert q.predicate.right == Literal("it's")
        q = parse_sql('SELECT * FROM t WHERE a = "say ""hi"""')
        assert q.predicate.right == Literal('say "hi"')

    def test_adjacent_operators_tokenize_individually(self) -> None:
        kinds_values = [(k, v) for k, v, _ in _tokenize("a<=b<>c==d")]
        assert kinds_values == [
            ("ident", "a"),
            ("op", "<="),
            ("ident", "b"),
            ("op", "<>"),
            ("ident", "c"),
            ("op", "=="),
            ("ident", "d"),
        ]

    def test_negative_number_after_identifier(self) -> None:
        # The lexer greedily attaches the sign: `a-1` is `a`, `-1` — there
        # is no arithmetic in the fragment, so the parser then rejects it
        # rather than silently misreading.
        kinds_values = [(k, v) for k, v, _ in _tokenize("a-1")]
        assert kinds_values == [("ident", "a"), ("number", "-1")]
        with pytest.raises(SqlError):
            parse_sql("SELECT * FROM t WHERE a-1 = 2")

    def test_negative_literals_in_comparisons(self) -> None:
        q = parse_sql("SELECT * FROM t WHERE a < -2.5")
        assert q.predicate.right == Literal(-2.5)

    def test_tokens_carry_offsets(self) -> None:
        offsets = [off for _, _, off in _tokenize("SELECT a FROM t")]
        assert offsets == [0, 7, 9, 14]

    def test_unterminated_string_is_lexical_error(self) -> None:
        with pytest.raises(SqlError, match="cannot tokenise"):
            parse_sql("SELECT * FROM t WHERE a = 'oops")


class TestJoinsAndAliases:
    SCHEMAS = {"people": ("pid", "city"), "orders": ("oid", "pid", "amt")}

    def test_join_on_lowers_to_select_over_join(self) -> None:
        query = parse_sql(
            "SELECT p.pid, o.amt FROM people p JOIN orders o ON p.pid = o.pid",
            schemas=self.SCHEMAS,
        )
        assert query == Project(
            Select(
                Join(
                    Rename(Scan("people"), {"pid": "p.pid", "city": "p.city"}),
                    Rename(
                        Scan("orders"),
                        {"oid": "o.oid", "pid": "o.pid", "amt": "o.amt"},
                    ),
                ),
                Comparison(Attribute("p.pid"), "==", Attribute("o.pid")),
            ),
            ("p.pid", "o.amt"),
        )

    def test_alias_defaults_to_table_name(self) -> None:
        with_alias = parse_sql(
            "SELECT people.pid FROM people AS people", schemas=self.SCHEMAS
        )
        without = parse_sql("SELECT people.pid FROM people", schemas=self.SCHEMAS)
        assert with_alias == without

    def test_as_keyword_is_optional(self) -> None:
        explicit = parse_sql(
            "SELECT p.pid FROM people AS p", schemas=self.SCHEMAS
        )
        implicit = parse_sql("SELECT p.pid FROM people p", schemas=self.SCHEMAS)
        assert explicit == implicit

    def test_referenced_tables_prescan(self) -> None:
        assert referenced_tables(
            "SELECT p.pid FROM people p JOIN orders o ON p.pid = o.pid"
        ) == ["orders", "people"]
        assert referenced_tables("SELECT * FROM t") == ["t"]

    def test_single_table_ast_is_unchanged_with_schemas(self) -> None:
        plain = parse_sql("SELECT name FROM person WHERE age < 30")
        with_schemas = parse_sql(
            "SELECT name FROM person WHERE age < 30",
            schemas={"person": ("name", "age")},
        )
        assert plain == with_schemas
        assert plain == Project(
            Select(Scan("person"), Comparison(Attribute("age"), "<", Literal(30))),
            ("name",),
        )


class TestAggregationSql:
    def test_group_by_with_aggregates(self) -> None:
        query = parse_sql("SELECT g, COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY g")
        assert query == Aggregate(
            Scan("t"),
            ("g",),
            (
                AggregateSpec("count", None, "n"),
                AggregateSpec("sum", "v", "total"),
            ),
        )

    def test_global_aggregate_without_group_by(self) -> None:
        query = parse_sql("SELECT MIN(v) AS lo, MAX(v) AS hi FROM t")
        assert query == Aggregate(
            Scan("t"),
            (),
            (AggregateSpec("min", "v", "lo"), AggregateSpec("max", "v", "hi")),
        )

    def test_default_alias_spells_the_call(self) -> None:
        query = parse_sql("SELECT COUNT(*) FROM t")
        assert query.aggregates[0].alias == "count(*)"
        query = parse_sql("SELECT SUM(v) FROM t")
        assert query.aggregates[0].alias == "sum(v)"

    def test_select_order_is_preserved_by_projection(self) -> None:
        query = parse_sql("SELECT COUNT(*) AS n, g FROM t GROUP BY g")
        assert isinstance(query, Project)
        assert query.attributes == ("n", "g")
        assert isinstance(query.child, Aggregate)

    def test_aggregate_names_stay_usable_as_identifiers(self) -> None:
        # count/sum/min/max are contextual: fine as plain column names.
        query = parse_sql("SELECT count FROM t WHERE sum < 3")
        assert query == Project(
            Select(Scan("t"), Comparison(Attribute("sum"), "<", Literal(3))),
            ("count",),
        )

    def test_where_filters_before_grouping(self) -> None:
        query = parse_sql("SELECT g, COUNT(*) AS n FROM t WHERE v > 1 GROUP BY g")
        assert isinstance(query, Aggregate)
        assert isinstance(query.child, Select)


class TestSemantics:
    @pytest.fixture
    def db(self) -> dict[str, Relation]:
        return {
            "person": Relation(
                ("name", "age", "city"),
                [
                    ("John", 32, "Rome"),
                    ("Anna", 29, "Paris"),
                    ("Kevin", 30, "Rome"),
                ],
            )
        }

    def test_parsed_query_evaluates(self, db) -> None:
        query = parse_sql("SELECT name FROM person WHERE age < 30 OR city = 'Rome'")
        assert evaluate(query, db).rows == {("John",), ("Anna",), ("Kevin",)}

    def test_parsed_query_certain_answers(self) -> None:
        table = CoddTable(
            ("name", "age"),
            [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
        )
        query = parse_sql("SELECT name FROM T WHERE age < 30")
        assert certain_answers(query, table).rows == {("Anna",)}

    @settings(max_examples=50, deadline=None)
    @given(
        bound=st.integers(min_value=0, max_value=40),
        op=st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
    )
    def test_parse_matches_hand_built_ast(self, bound: int, op: str) -> None:
        parsed = parse_sql(f"SELECT name FROM t WHERE age {op} {bound}")
        canonical = {"=": "==", "<>": "!="}.get(op, op)
        expected = Project(
            Select(Scan("t"), Comparison(Attribute("age"), canonical, Literal(bound))),
            ("name",),
        )
        assert parsed == expected
