"""The SQL front door: parsing, precedence, errors, agreement with the algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Project,
    Scan,
    Select,
    evaluate,
)
from repro.codd.certain import certain_answers
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation
from repro.codd.sql import SqlError, parse_sql


class TestParsing:
    def test_figure1_query(self) -> None:
        query = parse_sql("SELECT name FROM person WHERE age < 30")
        assert query == Project(
            Select(Scan("person"), Comparison(Attribute("age"), "<", Literal(30))),
            ("name",),
        )

    def test_star_means_no_projection(self) -> None:
        assert parse_sql("SELECT * FROM t") == Scan("t")

    def test_star_with_where(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE a = 1")
        assert query == Select(Scan("t"), Comparison(Attribute("a"), "==", Literal(1)))

    def test_multiple_columns(self) -> None:
        query = parse_sql("SELECT a, b FROM t")
        assert query == Project(Scan("t"), ("a", "b"))

    def test_keywords_case_insensitive(self) -> None:
        assert parse_sql("select a from t") == parse_sql("SELECT a FROM t")

    def test_string_literals_both_quote_styles(self) -> None:
        single = parse_sql("SELECT * FROM t WHERE city = 'Rome'")
        double = parse_sql('SELECT * FROM t WHERE city = "Rome"')
        assert single == double

    def test_numbers_parse_as_int_or_float(self) -> None:
        q_int = parse_sql("SELECT * FROM t WHERE a = 3")
        q_float = parse_sql("SELECT * FROM t WHERE a = 3.5")
        assert q_int.predicate.right == Literal(3)
        assert q_float.predicate.right == Literal(3.5)

    def test_sql_operator_spellings(self) -> None:
        eq = parse_sql("SELECT * FROM t WHERE a = 1")
        neq = parse_sql("SELECT * FROM t WHERE a <> 1")
        assert eq.predicate.op == "=="
        assert neq.predicate.op == "!="

    def test_column_to_column_comparison(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE a < b")
        assert query.predicate == Comparison(Attribute("a"), "<", Attribute("b"))


class TestPrecedence:
    def test_and_binds_tighter_than_or(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        pred = query.predicate
        assert isinstance(pred, Disjunction)
        assert isinstance(pred.parts[1], Conjunction)

    def test_parentheses_override(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        pred = query.predicate
        assert isinstance(pred, Conjunction)
        assert isinstance(pred.parts[0], Disjunction)

    def test_not_binds_tightest(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE NOT a = 1 AND b = 2")
        pred = query.predicate
        assert isinstance(pred, Conjunction)
        assert isinstance(pred.parts[0], Negation)

    def test_double_negation(self) -> None:
        query = parse_sql("SELECT * FROM t WHERE NOT NOT a = 1")
        assert isinstance(query.predicate, Negation)
        assert isinstance(query.predicate.part, Negation)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT FROM t",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a",
            "SELECT a FROM t WHERE a <",
            "SELECT a FROM t WHERE (a = 1",
            "SELECT a FROM t extra",
            "DELETE FROM t",
            "SELECT a FROM t WHERE a ~ 1",
        ],
        ids=lambda s: repr(s)[:30],
    )
    def test_malformed_queries_raise(self, text: str) -> None:
        with pytest.raises(SqlError):
            parse_sql(text)

    def test_sql_error_is_value_error(self) -> None:
        assert issubclass(SqlError, ValueError)


class TestSemantics:
    @pytest.fixture
    def db(self) -> dict[str, Relation]:
        return {
            "person": Relation(
                ("name", "age", "city"),
                [
                    ("John", 32, "Rome"),
                    ("Anna", 29, "Paris"),
                    ("Kevin", 30, "Rome"),
                ],
            )
        }

    def test_parsed_query_evaluates(self, db) -> None:
        query = parse_sql("SELECT name FROM person WHERE age < 30 OR city = 'Rome'")
        assert evaluate(query, db).rows == {("John",), ("Anna",), ("Kevin",)}

    def test_parsed_query_certain_answers(self) -> None:
        table = CoddTable(
            ("name", "age"),
            [("John", 32), ("Anna", 29), ("Kevin", Null([1, 2, 30]))],
        )
        query = parse_sql("SELECT name FROM T WHERE age < 30")
        assert certain_answers(query, table).rows == {("Anna",)}

    @settings(max_examples=50, deadline=None)
    @given(
        bound=st.integers(min_value=0, max_value=40),
        op=st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
    )
    def test_parse_matches_hand_built_ast(self, bound: int, op: str) -> None:
        parsed = parse_sql(f"SELECT name FROM t WHERE age {op} {bound}")
        canonical = {"=": "==", "<>": "!="}.get(op, op)
        expected = Project(
            Select(Scan("t"), Comparison(Attribute("age"), canonical, Literal(bound))),
            ("name",),
        )
        assert parsed == expected
