"""Unit tests for the relational-algebra AST and evaluator."""

from __future__ import annotations

import pytest

from repro.codd.algebra import (
    Attribute,
    Comparison,
    Conjunction,
    Difference,
    Disjunction,
    Join,
    Literal,
    Negation,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
    is_positive,
    predicate_attributes,
)
from repro.codd.relation import Relation


@pytest.fixture
def db() -> dict[str, Relation]:
    return {
        "person": Relation(
            ("name", "age"), [("John", 32), ("Anna", 29), ("Kevin", 30)]
        ),
        "city": Relation(("name", "city"), [("John", "Rome"), ("Anna", "Paris")]),
    }


def age_lt(bound: int) -> Comparison:
    return Comparison(Attribute("age"), "<", Literal(bound))


class TestPredicates:
    def test_comparison_operators(self) -> None:
        schema, row = ("a",), (5,)
        assert Comparison(Attribute("a"), "==", Literal(5)).holds(schema, row)
        assert Comparison(Attribute("a"), "!=", Literal(4)).holds(schema, row)
        assert Comparison(Attribute("a"), "<=", Literal(5)).holds(schema, row)
        assert not Comparison(Attribute("a"), ">", Literal(5)).holds(schema, row)

    def test_attribute_vs_attribute(self) -> None:
        pred = Comparison(Attribute("a"), "<", Attribute("b"))
        assert pred.holds(("a", "b"), (1, 2))
        assert not pred.holds(("a", "b"), (2, 1))

    def test_unknown_operator_rejected(self) -> None:
        with pytest.raises(ValueError, match="operator"):
            Comparison(Attribute("a"), "~", Literal(1))

    def test_boolean_connectives(self) -> None:
        schema, row = ("a",), (5,)
        both = Conjunction(age := Comparison(Attribute("a"), ">", Literal(0)), age)
        assert both.holds(schema, row)
        assert Disjunction(Negation(age), age).holds(schema, row)
        assert not Negation(age).holds(schema, row)

    def test_unknown_attribute_raises(self) -> None:
        with pytest.raises(KeyError, match="missing"):
            Comparison(Attribute("missing"), "==", Literal(1)).holds(("a",), (1,))

    def test_predicate_attributes_collects_all(self) -> None:
        pred = Conjunction(
            Comparison(Attribute("a"), "<", Attribute("b")),
            Negation(Comparison(Attribute("c"), "==", Literal(1))),
        )
        assert predicate_attributes(pred) == {"a", "b", "c"}


class TestEvaluation:
    def test_scan(self, db: dict[str, Relation]) -> None:
        assert evaluate(Scan("person"), db) == db["person"]

    def test_scan_unknown_relation(self, db: dict[str, Relation]) -> None:
        with pytest.raises(KeyError, match="nope"):
            evaluate(Scan("nope"), db)

    def test_figure1_select(self, db: dict[str, Relation]) -> None:
        result = evaluate(Select(Scan("person"), age_lt(30)), db)
        assert result.rows == {("Anna", 29)}

    def test_project(self, db: dict[str, Relation]) -> None:
        result = evaluate(Project(Scan("person"), ("name",)), db)
        assert result.rows == {("John",), ("Anna",), ("Kevin",)}

    def test_join(self, db: dict[str, Relation]) -> None:
        result = evaluate(Join(Scan("person"), Scan("city")), db)
        assert result.rows == {("John", 32, "Rome"), ("Anna", 29, "Paris")}

    def test_union_and_difference(self, db: dict[str, Relation]) -> None:
        young = Select(Scan("person"), age_lt(30))
        rest = Difference(Scan("person"), young)
        assert evaluate(rest, db).rows == {("John", 32), ("Kevin", 30)}
        assert evaluate(Union(young, rest), db) == db["person"]

    def test_rename_then_join_controls_join_attributes(self, db: dict[str, Relation]) -> None:
        renamed = Rename(Scan("city"), {"name": "person_name"})
        product = evaluate(Join(Scan("person"), renamed), db)
        # no shared attributes after renaming -> Cartesian product
        assert len(product) == len(db["person"]) * len(db["city"])

    def test_composed_query(self, db: dict[str, Relation]) -> None:
        q = Project(Select(Join(Scan("person"), Scan("city")), age_lt(30)), ("city",))
        assert evaluate(q, db).rows == {("Paris",)}


class TestPositivity:
    def test_select_project_join_union_positive(self, db: dict[str, Relation]) -> None:
        q = Union(
            Project(Select(Scan("person"), age_lt(30)), ("name",)),
            Project(Scan("city"), ("name",)),
        )
        assert is_positive(q)

    def test_difference_not_positive(self) -> None:
        assert not is_positive(Difference(Scan("a"), Scan("b")))

    def test_negated_predicate_not_positive(self) -> None:
        assert not is_positive(Select(Scan("a"), Negation(age_lt(30))))
