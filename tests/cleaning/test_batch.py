"""Batch cleaning rounds: equivalence at B=1, budgets, completion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.batch import rank_rows_by_expected_entropy, run_batch_clean
from repro.cleaning.cp_clean import CPCleanStrategy, run_cp_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.sequential import CleaningSession
from tests.conftest import random_incomplete_dataset


@pytest.fixture
def workload(rng: np.random.Generator):
    dataset = random_incomplete_dataset(rng, n_rows=10, n_labels=2)
    val_X = rng.normal(size=(5, dataset.n_features))
    gt = [int(rng.integers(m)) for m in dataset.candidate_counts()]
    return dataset, val_X, GroundTruthOracle(gt)


class TestRanking:
    def test_ranking_covers_all_remaining(self, workload) -> None:
        dataset, val_X, _ = workload
        session = CleaningSession(dataset, val_X, k=3)
        remaining = session.remaining_dirty_rows()
        ranked = rank_rows_by_expected_entropy(session, remaining)
        assert sorted(row for row, _ in ranked) == sorted(remaining)

    def test_ranking_is_sorted_by_entropy(self, workload) -> None:
        dataset, val_X, _ = workload
        session = CleaningSession(dataset, val_X, k=3)
        ranked = rank_rows_by_expected_entropy(session, session.remaining_dirty_rows())
        entropies = [entropy for _, entropy in ranked]
        assert entropies == sorted(entropies)

    def test_rank_head_matches_cpclean_pick(self, workload) -> None:
        dataset, val_X, _ = workload
        session = CleaningSession(dataset, val_X, k=3)
        remaining = session.remaining_dirty_rows()
        ranked = rank_rows_by_expected_entropy(session, remaining)
        pick, _ = CPCleanStrategy().select(session, remaining)
        assert ranked[0][0] == pick


class TestBatchRuns:
    def test_batch_size_one_matches_sequential(self, workload) -> None:
        dataset, val_X, oracle = workload
        sequential = run_cp_clean(dataset, val_X, oracle, k=3)
        batched = run_batch_clean(dataset, val_X, oracle, batch_size=1, k=3)
        assert batched.cleaned_rows() == sequential.cleaned_rows()
        assert batched.cp_fraction_final == 1.0

    @pytest.mark.parametrize("batch_size", [2, 4, 100])
    def test_batches_reach_full_certainty(self, workload, batch_size: int) -> None:
        dataset, val_X, oracle = workload
        report = run_batch_clean(dataset, val_X, oracle, batch_size=batch_size, k=3)
        assert report.cp_fraction_final == 1.0
        cleaned = report.cleaned_rows()
        assert len(cleaned) == len(set(cleaned))

    def test_batch_effort_bounded_by_dirty_rows(self, workload) -> None:
        # Batching loses adaptivity so effort usually grows, but a lucky
        # batch can also finish early — the only hard bounds are the dirty
        # row count and completing in whole rounds (final round may be cut
        # short by certification).
        dataset, val_X, oracle = workload
        sequential = run_batch_clean(dataset, val_X, oracle, batch_size=1, k=3)
        big = run_batch_clean(dataset, val_X, oracle, batch_size=4, k=3)
        n_dirty = dataset.n_uncertain
        assert sequential.n_cleaned <= n_dirty
        assert big.n_cleaned <= n_dirty
        # every round except possibly the last is a full batch
        assert big.n_cleaned % 4 == 0 or big.cp_fraction_final == 1.0

    def test_budget_respected_mid_batch(self, workload) -> None:
        dataset, val_X, oracle = workload
        report = run_batch_clean(
            dataset, val_X, oracle, batch_size=4, k=3, max_cleaned=3
        )
        assert report.n_cleaned <= 3

    def test_budget_zero_cleans_nothing(self, workload) -> None:
        dataset, val_X, oracle = workload
        report = run_batch_clean(dataset, val_X, oracle, batch_size=4, k=3, max_cleaned=0)
        assert report.n_cleaned == 0
        assert report.terminated_early or report.cp_fraction_final == 1.0

    def test_steps_in_one_round_share_cp_fraction(self, workload) -> None:
        dataset, val_X, oracle = workload
        report = run_batch_clean(dataset, val_X, oracle, batch_size=3, k=3)
        by_round: dict[float, list[int]] = {}
        for index, step in enumerate(report.steps):
            by_round.setdefault(step.cp_fraction_before, []).append(index)
        # indices within one round are contiguous
        for indices in by_round.values():
            assert indices == list(range(indices[0], indices[0] + len(indices)))

    def test_invalid_batch_size_rejected(self, workload) -> None:
        dataset, val_X, oracle = workload
        with pytest.raises(ValueError):
            run_batch_clean(dataset, val_X, oracle, batch_size=0, k=3)
