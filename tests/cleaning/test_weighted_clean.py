"""Weighted-prior CPClean: uniform reduction, priors, end-to-end runs."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.cleaning.cp_clean import CPCleanStrategy
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.sequential import CleaningSession
from repro.cleaning.weighted_clean import (
    WeightedCPCleanStrategy,
    distance_to_default_weights,
    run_weighted_cp_clean,
)
from tests.conftest import random_incomplete_dataset


@pytest.fixture
def workload(rng: np.random.Generator):
    dataset = random_incomplete_dataset(rng, n_rows=7, n_labels=2)
    val_X = rng.normal(size=(3, dataset.n_features))
    gt = [int(rng.integers(m)) for m in dataset.candidate_counts()]
    return dataset, val_X, GroundTruthOracle(gt)


class TestUniformReduction:
    def test_uniform_prior_matches_cpclean_selection(self, workload) -> None:
        dataset, val_X, _ = workload
        session_a = CleaningSession(dataset, val_X, k=3)
        session_b = CleaningSession(dataset, val_X, k=3)
        remaining = session_a.remaining_dirty_rows()
        row_plain, entropy_plain = CPCleanStrategy().select(session_a, remaining)
        row_weighted, entropy_weighted = WeightedCPCleanStrategy().select(
            session_b, remaining
        )
        assert row_plain == row_weighted
        assert entropy_plain == pytest.approx(entropy_weighted, abs=1e-9)

    def test_uniform_prior_matches_cpclean_full_run(self, workload) -> None:
        dataset, val_X, oracle = workload
        plain = CleaningSession(dataset, val_X, k=3).run(CPCleanStrategy(), oracle)
        weighted = run_weighted_cp_clean(dataset, val_X, oracle, k=3)
        assert plain.cleaned_rows() == weighted.cleaned_rows()
        assert weighted.cp_fraction_final == 1.0


class TestInformativePriors:
    def test_distance_weights_are_a_distribution(self, workload) -> None:
        dataset, _, _ = workload
        default = np.zeros(dataset.n_rows, dtype=np.int64)
        weights = distance_to_default_weights(dataset, default)
        for row, row_weights in enumerate(weights):
            assert sum(row_weights) == 1
            assert all(w > 0 for w in row_weights)
            assert len(row_weights) == dataset.candidates(row).shape[0]

    def test_default_candidate_gets_largest_weight(self, workload) -> None:
        dataset, _, _ = workload
        default = np.zeros(dataset.n_rows, dtype=np.int64)
        weights = distance_to_default_weights(dataset, default, sharpness=2.0)
        for row in dataset.uncertain_rows():
            assert weights[row][0] == max(weights[row])

    def test_weighted_run_reaches_certainty(self, workload) -> None:
        dataset, val_X, oracle = workload
        default = np.zeros(dataset.n_rows, dtype=np.int64)
        weights = distance_to_default_weights(dataset, default)
        report = run_weighted_cp_clean(dataset, val_X, oracle, weights=weights, k=3)
        assert report.cp_fraction_final == 1.0

    def test_point_mass_prior_short_circuits_row(self, workload) -> None:
        # A row whose prior is a point mass has zero expected entropy change
        # contribution from other candidates; the run must still terminate.
        dataset, val_X, oracle = workload
        weights = []
        for row in range(dataset.n_rows):
            m = dataset.candidates(row).shape[0]
            row_weights = [Fraction(0)] * m
            row_weights[0] = Fraction(1)
            weights.append(row_weights)
        report = run_weighted_cp_clean(dataset, val_X, oracle, weights=weights, k=3)
        assert report.cp_fraction_final == 1.0

    def test_row_count_mismatch_rejected(self, workload) -> None:
        dataset, val_X, _ = workload
        session = CleaningSession(dataset, val_X, k=3)
        strategy = WeightedCPCleanStrategy(weights=[[Fraction(1)]])
        with pytest.raises(ValueError, match="rows"):
            strategy.select(session, session.remaining_dirty_rows())
