"""Unit tests for the shared cleaning session."""

import numpy as np
import pytest

from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.random_clean import RandomCleanStrategy
from repro.cleaning.sequential import CleaningSession
from repro.core.dataset import IncompleteDataset
from repro.core.queries import certain_label


def tiny_dataset() -> IncompleteDataset:
    # Two dirty rows; candidate 0 is the "truth" for both.
    return IncompleteDataset(
        [
            np.array([[0.0], [6.0]]),
            np.array([[10.0], [4.0]]),
            np.array([[1.0]]),
            np.array([[9.0]]),
        ],
        labels=[0, 1, 0, 1],
    )


def val_points() -> np.ndarray:
    return np.array([[0.5], [9.5]])


class TestSessionBasics:
    def test_initial_state(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        assert session.n_val == 2
        assert session.remaining_dirty_rows() == [0, 1]
        assert session.fixed == {}

    def test_val_certainty_matches_query_api(self):
        dataset = tiny_dataset()
        session = CleaningSession(dataset, val_points(), k=1)
        for i, t in enumerate(val_points()):
            assert session.val_certain_labels()[i] == certain_label(dataset, t, k=1)

    def test_clean_row_updates_state(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        session.clean_row(0, 0)
        assert session.fixed == {0: 0}
        assert session.remaining_dirty_rows() == [1]

    def test_clean_row_twice_rejected(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        session.clean_row(0, 0)
        with pytest.raises(ValueError, match="already cleaned"):
            session.clean_row(0, 1)

    def test_clean_row_bad_candidate(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        with pytest.raises(IndexError):
            session.clean_row(0, 9)

    def test_cp_fraction_monotone_under_truthful_cleaning(self):
        """Cleaning with the oracle can only keep or increase certainty."""
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        before = session.cp_fraction()
        session.clean_row(0, 0)
        mid = session.cp_fraction()
        session.clean_row(1, 0)
        after = session.cp_fraction()
        assert before <= mid <= after
        assert after == 1.0  # fully cleaned dataset is always certain


class TestRunLoop:
    def test_run_terminates_with_all_certain(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        report = session.run(RandomCleanStrategy(seed=0), GroundTruthOracle([0, 0, 0, 0]))
        assert report.cp_fraction_final == 1.0
        assert not report.terminated_early
        assert report.n_cleaned <= 2

    def test_budget_stops_early(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        report = session.run(
            RandomCleanStrategy(seed=0), GroundTruthOracle([0, 0, 0, 0]), max_cleaned=0
        )
        if report.cp_fraction_final < 1.0:
            assert report.terminated_early
        assert report.n_cleaned == 0

    def test_on_step_callback_invoked(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        seen = []
        report = session.run(
            RandomCleanStrategy(seed=0),
            GroundTruthOracle([0, 0, 0, 0]),
            on_step=lambda step: seen.append(step.row),
        )
        # the callback saw exactly the cleaned rows, in order
        assert seen == [step.row for step in report.steps]

    def test_report_records_steps_in_order(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        report = session.run(RandomCleanStrategy(seed=1), GroundTruthOracle([0, 0, 0, 0]))
        iterations = [step.iteration for step in report.steps]
        assert iterations == list(range(len(iterations)))
        assert set(report.final_fixed) == {step.row for step in report.steps}

    def test_multiclass_session_uses_counts_path(self):
        dataset = IncompleteDataset(
            [np.array([[0.0], [5.0]]), np.array([[2.0]]), np.array([[8.0]])],
            labels=[0, 1, 2],
        )
        session = CleaningSession(dataset, np.array([[1.0]]), k=1)
        labels = session.val_certain_labels()
        assert len(labels) == 1


class TestPhysicalDeltas:
    """apply_repair / apply_delta make writes physical in O(Δ)."""

    def test_apply_repair_matches_restricted_dataset(self):
        dataset = tiny_dataset()
        session = CleaningSession(dataset, val_points(), k=1)
        report = session.apply_repair(0, 0)
        assert report["op"] == "cell_repair"
        restricted = dataset.restrict_row(0, 0)
        assert session.dataset.fingerprint() == restricted.fingerprint()
        for i, t in enumerate(val_points()):
            assert session.val_certain_labels()[i] == certain_label(restricted, t, k=1)

    def test_apply_repair_absorbs_matching_pin(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        session.clean_row(0, 0)  # hypothetical pin
        session.apply_repair(0, 0)  # same choice, made physical
        assert 0 not in session.fixed
        assert session.dataset.candidates(0).shape[0] == 1
        assert session.remaining_dirty_rows() == [1]

    def test_apply_repair_conflicting_pin_rejected(self):
        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        session.clean_row(0, 0)
        with pytest.raises(ValueError, match="conflicts with the session pin"):
            session.apply_repair(0, 1)

    def test_apply_delta_append_and_delete(self):
        from repro.core.deltas import RowAppend, RowDelete

        dataset = tiny_dataset()
        session = CleaningSession(dataset, val_points(), k=1)
        session.apply_delta(RowAppend(np.array([[5.0], [7.0]]), 1))
        expected = dataset.append_row(np.array([[5.0], [7.0]]), 1)
        assert session.dataset.fingerprint() == expected.fingerprint()

        session.apply_delta(RowDelete(2))
        expected = expected.delete_row(2)
        assert session.dataset.fingerprint() == expected.fingerprint()
        for i, t in enumerate(val_points()):
            assert session.val_certain_labels()[i] == certain_label(expected, t, k=1)

    def test_delete_shifts_session_pins(self):
        from repro.core.deltas import RowDelete

        session = CleaningSession(tiny_dataset(), val_points(), k=1)
        session.clean_row(1, 0)  # pin row 1
        session.apply_delta(RowDelete(0))  # rows shift down by one
        assert session.fixed == {0: 0}
        session.apply_delta(RowDelete(0))  # drops the pinned row itself
        assert session.fixed == {}
