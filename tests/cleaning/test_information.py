"""Information-theoretic instrumentation: gains, D_Opt, Corollary-1 curve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.cp_clean import CPCleanStrategy
from repro.cleaning.information import (
    greedy_vs_optimal_curve,
    information_gains,
    optimal_cleaning_set,
    row_information_gain,
    set_information_gain,
    validation_entropy,
)
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.sequential import CleaningSession
from tests.conftest import random_incomplete_dataset


@pytest.fixture
def session(rng: np.random.Generator) -> tuple[CleaningSession, GroundTruthOracle]:
    dataset = random_incomplete_dataset(rng, n_rows=7, n_labels=2)
    val_X = rng.normal(size=(4, dataset.n_features))
    gt = [int(rng.integers(m)) for m in dataset.candidate_counts()]
    return CleaningSession(dataset, val_X, k=3), GroundTruthOracle(gt)


class TestValidationEntropy:
    def test_nonnegative_and_bounded(self, session) -> None:
        sess, _ = session
        h = validation_entropy(sess)
        assert 0.0 <= h <= np.log(sess.dataset.n_labels) + 1e-12

    def test_zero_when_everything_pinned(self, session) -> None:
        sess, oracle = session
        for row in sess.dataset.uncertain_rows():
            sess.clean_row(row, oracle(row))
        assert validation_entropy(sess) == pytest.approx(0.0)

    def test_explicit_pins_override_session(self, session) -> None:
        sess, oracle = session
        pins = {row: oracle(row) for row in sess.dataset.uncertain_rows()}
        assert validation_entropy(sess, pins) == pytest.approx(0.0)
        # the session itself is untouched
        assert sess.fixed == {}

    def test_empty_validation_set_is_zero(self, rng: np.random.Generator) -> None:
        dataset = random_incomplete_dataset(rng, n_rows=5)
        sess = CleaningSession(dataset, np.zeros((0, dataset.n_features)), k=1)
        assert validation_entropy(sess) == 0.0


class TestRowGain:
    def test_gains_are_nonnegative(self, session) -> None:
        sess, _ = session
        for row, gain in information_gains(sess).items():
            assert gain >= 0.0, f"row {row} has negative information gain"

    def test_gain_bounded_by_current_entropy(self, session) -> None:
        sess, _ = session
        h = validation_entropy(sess)
        for gain in information_gains(sess).values():
            assert gain <= h + 1e-12

    def test_cleaned_row_rejected(self, session) -> None:
        sess, oracle = session
        row = sess.dataset.uncertain_rows()[0]
        sess.clean_row(row, oracle(row))
        with pytest.raises(ValueError, match="already cleaned"):
            row_information_gain(sess, row)

    def test_argmax_gain_is_cpcleans_pick(self, session) -> None:
        # Maximising I(...; c_i) and minimising expected entropy are the
        # same selection; CPClean's row must be the max-gain row.
        sess, _ = session
        gains = information_gains(sess)
        best_by_gain = max(gains, key=lambda r: (round(gains[r], 12), -r))
        row, _ = CPCleanStrategy().select(sess, sess.remaining_dirty_rows())
        assert gains[row] == pytest.approx(gains[best_by_gain], abs=1e-9)

    def test_singleton_set_gain_matches_row_gain(self, session) -> None:
        sess, _ = session
        row = sess.remaining_dirty_rows()[0]
        single = set_information_gain(sess, [row])
        assert single == pytest.approx(row_information_gain(sess, row), abs=1e-9)


class TestOptimalSet:
    def test_optimal_dominates_any_singleton(self, session) -> None:
        sess, _ = session
        _, best_gain = optimal_cleaning_set(sess, 1)
        gains = information_gains(sess)
        assert best_gain == pytest.approx(max(gains.values()), abs=1e-9)

    def test_monotone_in_set_size(self, session) -> None:
        sess, _ = session
        if len(sess.remaining_dirty_rows()) < 2:
            pytest.skip("needs two dirty rows")
        _, g1 = optimal_cleaning_set(sess, 1)
        _, g2 = optimal_cleaning_set(sess, 2)
        assert g2 >= g1 - 1e-9  # information is monotone in the set

    def test_size_larger_than_dirty_rows_rejected(self, session) -> None:
        sess, _ = session
        with pytest.raises(ValueError, match="exceeds"):
            optimal_cleaning_set(sess, len(sess.remaining_dirty_rows()) + 1)

    def test_subset_cap_enforced(self, session) -> None:
        sess, _ = session
        if len(sess.remaining_dirty_rows()) < 3:
            pytest.skip("needs three dirty rows")
        with pytest.raises(ValueError, match="cap"):
            optimal_cleaning_set(sess, 2, max_subsets=1)


class TestCorollary1Shape:
    def test_greedy_curve_monotone_and_catches_optimal(self, session) -> None:
        sess, oracle = session
        n_dirty = len(sess.remaining_dirty_rows())
        if n_dirty < 2:
            pytest.skip("needs two dirty rows")
        result = greedy_vs_optimal_curve(sess, oracle, horizon=n_dirty, optimal_size=1)
        curve = result["greedy_curve"]
        assert curve, "greedy curve must contain at least one step"
        # Cumulative realised information is reported against a fixed start;
        # by the end of full cleaning it must reach the initial entropy.
        assert curve[-1] == pytest.approx(result["initial_entropy"], abs=1e-9)
        # ... and therefore dominate the optimal size-1 information.
        assert curve[-1] >= result["optimal"] - 1e-9
