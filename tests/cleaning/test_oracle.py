"""Unit tests for the simulated cleaning oracles."""

import numpy as np
import pytest

from repro.cleaning.oracle import GroundTruthOracle, NoisyOracle


class TestGroundTruthOracle:
    def test_returns_configured_choice(self):
        oracle = GroundTruthOracle([2, 0, 1])
        assert oracle(0) == 2
        assert oracle(1) == 0
        assert oracle(2) == 1

    def test_out_of_range(self):
        oracle = GroundTruthOracle([0])
        with pytest.raises(IndexError):
            oracle(5)


class TestNoisyOracle:
    def test_zero_error_rate_is_truthful(self):
        oracle = NoisyOracle([1, 2], [3, 3], error_rate=0.0, seed=0)
        assert all(oracle(0) == 1 for _ in range(20))

    def test_full_error_rate_never_truthful(self):
        oracle = NoisyOracle([1], [4], error_rate=1.0, seed=0)
        answers = {oracle(0) for _ in range(50)}
        assert 1 not in answers
        assert answers <= {0, 2, 3}

    def test_single_candidate_rows_always_truthful(self):
        oracle = NoisyOracle([0], [1], error_rate=1.0, seed=0)
        assert oracle(0) == 0

    def test_error_rate_roughly_respected(self):
        rng = np.random.default_rng(1)
        oracle = NoisyOracle([2], [5], error_rate=0.3, seed=rng)
        errors = sum(oracle(0) != 2 for _ in range(1000))
        assert 200 < errors < 400

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            NoisyOracle([0, 1], [2], error_rate=0.1)
