"""Unit tests for the CPClean algorithm."""

import numpy as np
import pytest

from repro.cleaning.cp_clean import CPCleanStrategy, run_cp_clean
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.random_clean import run_random_clean
from repro.cleaning.sequential import CleaningSession
from repro.core.dataset import IncompleteDataset
from repro.core.entropy import prediction_entropy
from repro.core.prepared import PreparedQuery
from repro.utils.rng import spawn_rngs


def influential_and_inert_dataset() -> tuple[IncompleteDataset, np.ndarray, list[int]]:
    """Row 0's candidates straddle the validation point; row 1's are far away.

    CPClean must prefer cleaning row 0 — it is the only row whose value
    affects the prediction near t = 0.
    """
    dataset = IncompleteDataset(
        [
            np.array([[0.1], [3.0]]),    # dirty, decisive: near t it wins,
            #                              far away row 2 (other label) wins
            np.array([[40.0], [41.0]]),  # dirty, irrelevant
            np.array([[-1.0]]),
            np.array([[5.0]]),
        ],
        labels=[1, 0, 0, 1],
    )
    return dataset, np.array([[0.0]]), [0, 0, 0, 0]


class TestSelection:
    def test_prefers_influential_row(self):
        dataset, val, gt = influential_and_inert_dataset()
        session = CleaningSession(dataset, val, k=1)
        row, entropy = CPCleanStrategy().select(session, session.remaining_dirty_rows())
        assert row == 0
        assert entropy is not None and entropy >= 0.0

    def test_expected_entropy_matches_manual_computation(self):
        dataset, val, _ = influential_and_inert_dataset()
        session = CleaningSession(dataset, val, k=1)
        query = PreparedQuery(dataset, val[0], k=1)
        manual = np.mean(
            [prediction_entropy(c) for c in query.counts_per_fixing(0)]
        )
        strategy = CPCleanStrategy()
        # probe by restricting the remaining set to row 0 only
        _row, entropy = strategy.select(session, [0])
        assert entropy == pytest.approx(float(manual))

    def test_empty_remaining_rejected(self):
        dataset, val, _ = influential_and_inert_dataset()
        session = CleaningSession(dataset, val, k=1)
        with pytest.raises(ValueError):
            CPCleanStrategy().select(session, [])


class TestRunCPClean:
    def test_terminates_all_certain(self):
        dataset, val, gt = influential_and_inert_dataset()
        report = run_cp_clean(dataset, val, GroundTruthOracle(gt), k=1)
        assert report.cp_fraction_final == 1.0

    def test_cleans_only_the_influential_row(self):
        dataset, val, gt = influential_and_inert_dataset()
        report = run_cp_clean(dataset, val, GroundTruthOracle(gt), k=1)
        assert report.cleaned_rows() == [0]

    def test_budget_respected(self):
        dataset, val, gt = influential_and_inert_dataset()
        report = run_cp_clean(dataset, val, GroundTruthOracle(gt), k=1, max_cleaned=0)
        assert report.n_cleaned == 0
        assert report.terminated_early

    def test_no_dirty_rows_is_a_noop(self):
        dataset = IncompleteDataset(
            [np.array([[0.0]]), np.array([[5.0]])], labels=[0, 1]
        )
        report = run_cp_clean(dataset, np.array([[1.0]]), GroundTruthOracle([0, 0]), k=1)
        assert report.n_cleaned == 0
        assert report.cp_fraction_final == 1.0

    def test_never_cleans_more_than_random(self):
        """On small random tasks CPClean needs at most as many cleanings as
        RandomClean to certify the whole validation set (statistically it
        should be far fewer; we assert the aggregate over several seeds)."""
        total_cp, total_rand = 0, 0
        for seed_rng in spawn_rngs(0, 5):
            rng = seed_rng
            sets = []
            n = 8
            for _ in range(n):
                m = int(rng.integers(1, 4))
                sets.append(rng.normal(size=(m, 1)) * 2.0)
            labels = rng.integers(0, 2, size=n)
            labels[0], labels[1] = 0, 1
            dataset = IncompleteDataset(sets, labels)
            gt = [0] * n
            val = rng.normal(size=(4, 1))
            report_cp = run_cp_clean(dataset, val, GroundTruthOracle(gt), k=1)
            report_rand = run_random_clean(
                dataset, val, GroundTruthOracle(gt), k=1, seed=0
            )
            assert report_cp.cp_fraction_final == 1.0
            assert report_rand.cp_fraction_final == 1.0
            total_cp += report_cp.n_cleaned
            total_rand += report_rand.n_cleaned
        assert total_cp <= total_rand

    def test_entropy_recorded_per_step(self):
        dataset, val, gt = influential_and_inert_dataset()
        report = run_cp_clean(dataset, val, GroundTruthOracle(gt), k=1)
        assert all(step.expected_entropy is not None for step in report.steps)
