"""Alternative cleaning policies: correctness of the shared loop and scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning.cp_clean import CPCleanStrategy
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.policies import (
    POLICIES,
    DirtiestFirstStrategy,
    MembershipUncertaintyStrategy,
    ReachCountStrategy,
    run_policy,
)
from repro.cleaning.sequential import CleaningSession
from repro.core.dataset import IncompleteDataset
from tests.conftest import random_incomplete_dataset


@pytest.fixture
def workload(rng: np.random.Generator):
    dataset = random_incomplete_dataset(rng, n_rows=10, n_labels=2)
    val_X = rng.normal(size=(6, dataset.n_features))
    gt_choice = [int(rng.integers(m)) for m in dataset.candidate_counts()]
    return dataset, val_X, GroundTruthOracle(gt_choice)


ALL_STRATEGIES = [ReachCountStrategy, MembershipUncertaintyStrategy, DirtiestFirstStrategy]


class TestSharedLoop:
    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
    def test_policy_reaches_full_certainty(self, workload, strategy_cls) -> None:
        dataset, val_X, oracle = workload
        report = run_policy(strategy_cls(), dataset, val_X, oracle, k=3)
        assert report.cp_fraction_final == 1.0
        assert not report.terminated_early

    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
    def test_policy_respects_budget(self, workload, strategy_cls) -> None:
        dataset, val_X, oracle = workload
        report = run_policy(strategy_cls(), dataset, val_X, oracle, k=3, max_cleaned=1)
        assert report.n_cleaned <= 1

    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
    def test_no_row_cleaned_twice(self, workload, strategy_cls) -> None:
        dataset, val_X, oracle = workload
        report = run_policy(strategy_cls(), dataset, val_X, oracle, k=3)
        cleaned = report.cleaned_rows()
        assert len(cleaned) == len(set(cleaned))
        assert set(cleaned) <= set(dataset.uncertain_rows())

    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
    def test_empty_remaining_rejected(self, workload, strategy_cls) -> None:
        dataset, val_X, _ = workload
        session = CleaningSession(dataset, val_X, k=3)
        with pytest.raises(ValueError, match="no dirty rows"):
            strategy_cls().select(session, [])

    def test_policies_registry_is_consistent(self) -> None:
        for name, factory in POLICIES.items():
            assert factory().name == name


class TestSelectionBehaviour:
    def test_dirtiest_first_picks_max_candidates(self, rng: np.random.Generator) -> None:
        sets = [
            rng.normal(size=(1, 2)),
            rng.normal(size=(5, 2)),
            rng.normal(size=(2, 2)),
        ]
        dataset = IncompleteDataset(sets, [0, 1, 0])
        session = CleaningSession(dataset, rng.normal(size=(2, 2)), k=1)
        row, _ = DirtiestFirstStrategy().select(session, [1, 2])
        assert row == 1

    def test_reach_count_prefers_row_near_test_points(self) -> None:
        # Row 1 is dirty but hopeless (far away); row 0 contests the top-1.
        sets = [
            np.array([[0.0, 0.0], [0.4, 0.0]]),
            np.array([[90.0, 90.0], [91.0, 91.0]]),
            np.array([[0.2, 0.0]]),
            np.array([[0.3, 0.0]]),
        ]
        dataset = IncompleteDataset(sets, [0, 1, 1, 0])
        val_X = np.zeros((3, 2))
        session = CleaningSession(dataset, val_X, k=1)
        row, _ = ReachCountStrategy().select(session, [0, 1])
        assert row == 0

    def test_membership_prefers_contested_row(self) -> None:
        # Row 0's membership is a coin flip at t; row 1's is settled.
        sets = [
            np.array([[0.5, 0.0], [3.0, 0.0]]),  # contested second slot
            np.array([[80.0, 0.0], [81.0, 0.0]]),  # never in top-K
            np.array([[0.1, 0.0]]),
            np.array([[1.0, 0.0]]),
        ]
        dataset = IncompleteDataset(sets, [0, 1, 1, 0])
        val_X = np.zeros((2, 2))
        session = CleaningSession(dataset, val_X, k=2)
        row, _ = MembershipUncertaintyStrategy().select(session, [0, 1])
        assert row == 0

    def test_membership_respects_previous_pins(self, workload) -> None:
        dataset, val_X, oracle = workload
        session = CleaningSession(dataset, val_X, k=3)
        remaining = session.remaining_dirty_rows()
        first = remaining[0]
        session.clean_row(first, oracle(first))
        # selection over the rest must not crash and must avoid pinned rows
        rest = session.remaining_dirty_rows()
        row, _ = MembershipUncertaintyStrategy().select(session, rest)
        assert row in rest


class TestAgainstCPClean:
    def test_cpclean_never_slower_than_dirtiest_first_here(self, rng: np.random.Generator) -> None:
        # Not a theorem, but on this easy separable workload the entropy
        # objective should need no more cleaning steps than the strawman.
        dataset = random_incomplete_dataset(rng, n_rows=12, n_labels=2)
        val_X = rng.normal(size=(5, dataset.n_features))
        gt = [int(rng.integers(m)) for m in dataset.candidate_counts()]
        cp = run_policy(
            CPCleanStrategy(), dataset, val_X, GroundTruthOracle(gt), k=3
        )
        strawman = run_policy(
            DirtiestFirstStrategy(), dataset, val_X, GroundTruthOracle(gt), k=3
        )
        assert cp.cp_fraction_final == strawman.cp_fraction_final == 1.0
        assert cp.n_cleaned <= strawman.n_cleaned + 2  # allow small slack
