"""Unit tests for BoostClean, HoloClean and the one-shot baselines."""

import numpy as np
import pytest

from repro.cleaning.baselines import default_clean_classifier, ground_truth_classifier
from repro.cleaning.boost_clean import BoostCleanModel, run_boost_clean
from repro.cleaning.holo_clean import run_holo_clean
from repro.core.knn import KNNClassifier
from repro.data.repairs import RepairSpace
from repro.data.task import build_cleaning_task


@pytest.fixture(scope="module")
def task():
    return build_cleaning_task("supreme", n_train=60, n_val=16, n_test=80, seed=2)


class TestOneShotBaselines:
    def test_ground_truth_classifier_uses_gt_matrix(self, task):
        clf = ground_truth_classifier(task)
        direct = KNNClassifier(k=task.k).fit(task.train_gt_X, task.train_labels)
        T = task.test_X[:10]
        assert np.array_equal(clf.predict(T), direct.predict(T))

    def test_default_classifier_uses_default_matrix(self, task):
        clf = default_clean_classifier(task)
        direct = KNNClassifier(k=task.k).fit(task.train_default_X, task.train_labels)
        T = task.test_X[:10]
        assert np.array_equal(clf.predict(T), direct.predict(T))


class TestBoostClean:
    def test_single_round_picks_best_validation_action(self, task):
        model = run_boost_clean(task, n_rounds=1)
        assert len(model.classifiers) == 1
        # its validation accuracy equals the max over all actions
        space = task.repair_space
        accs = []
        for action in range(space.n_actions):
            X = task.encoder.encode_table(space.apply_global_action(action))
            accs.append(
                KNNClassifier(k=task.k).fit(X, task.train_labels).accuracy(task.val_X, task.val_y)
            )
        assert model.accuracy(task.val_X, task.val_y) == pytest.approx(max(accs))

    def test_boosted_ensemble_has_multiple_members(self, task):
        model = run_boost_clean(task, n_rounds=4)
        assert 1 <= len(model.classifiers) <= 4
        assert len(model.weights) == len(model.classifiers)

    def test_boosting_does_not_collapse_on_validation(self, task):
        single = run_boost_clean(task, n_rounds=1).accuracy(task.val_X, task.val_y)
        boosted = run_boost_clean(task, n_rounds=4).accuracy(task.val_X, task.val_y)
        assert boosted >= single - 0.15  # sanity: boosting is not catastrophic

    def test_predictions_in_label_space(self, task):
        model = run_boost_clean(task, n_rounds=3)
        preds = model.predict(task.test_X)
        assert set(np.unique(preds)) <= set(range(int(task.train_labels.max()) + 1))

    def test_model_validation(self):
        with pytest.raises(ValueError):
            BoostCleanModel([], [], 2)


class TestHoloClean:
    def test_output_is_complete(self, task):
        cleaned = run_holo_clean(task.dirty_train, task.repair_space)
        assert cleaned.missing_rate() == 0.0

    def test_observed_cells_untouched(self, task):
        table = task.dirty_train
        cleaned = run_holo_clean(table, task.repair_space)
        mask = ~np.isnan(table.numeric)
        assert np.array_equal(cleaned.numeric[mask], table.numeric[mask])

    def test_repairs_come_from_candidate_space(self, task):
        table = task.dirty_train
        space = task.repair_space
        cleaned = run_holo_clean(table, space)
        num_mask = table.numeric_missing_mask()
        for row, col in zip(*np.nonzero(num_mask)):
            value = cleaned.numeric[row, col]
            assert any(
                abs(value - c) < 1e-9 for c in space.cell_candidates("numeric", int(col))
            )

    def test_builds_own_space_when_none_given(self, task):
        cleaned = run_holo_clean(task.dirty_train)
        assert cleaned.missing_rate() == 0.0

    def test_local_model_beats_blind_default_on_structured_column(self):
        """When a column is a near-copy of another, neighbourhood repair
        must recover values better than the global mean."""
        rng = np.random.default_rng(0)
        n = 200
        base = rng.normal(size=n) * 5
        twin = base + rng.normal(size=n) * 0.1
        labels = (base > 0).astype(int)
        from repro.data.table import Table

        table = Table(np.column_stack([base, twin]), np.zeros((n, 0), dtype=np.int64), labels)
        dirty = table.copy()
        dirty_rows = rng.choice(n, size=30, replace=False)
        dirty.numeric[dirty_rows, 1] = np.nan

        space = RepairSpace(dirty)
        cleaned = run_holo_clean(dirty, space)
        from repro.data.repairs import default_clean

        defaulted = default_clean(dirty)
        holo_err = np.abs(cleaned.numeric[dirty_rows, 1] - table.numeric[dirty_rows, 1]).mean()
        default_err = np.abs(
            defaulted.numeric[dirty_rows, 1] - table.numeric[dirty_rows, 1]
        ).mean()
        assert holo_err < default_err
