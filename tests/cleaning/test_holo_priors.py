"""HoloClean confidences: distributions, argmax consistency, CPClean priors."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.cleaning.holo_clean import holo_cell_confidences, run_holo_clean
from repro.cleaning.holo_priors import holo_candidate_weights
from repro.cleaning.oracle import GroundTruthOracle
from repro.cleaning.weighted_clean import run_weighted_cp_clean
from repro.data.ingest import incomplete_from_dirty_table
from repro.data.repairs import RepairSpace
from repro.data.table import MISSING_CATEGORY, Table


@pytest.fixture
def dirty_table(rng: np.random.Generator) -> Table:
    n = 24
    numeric = rng.normal(loc=5.0, scale=1.0, size=(n, 2))
    categorical = rng.integers(0, 3, size=(n, 1))
    labels = rng.integers(0, 2, size=n)
    labels[:2] = [0, 1]
    numeric[3, 0] = np.nan
    numeric[7, 1] = np.nan
    categorical[5, 0] = MISSING_CATEGORY
    categorical[7, 0] = MISSING_CATEGORY  # row 7 has two missing cells
    return Table(numeric, categorical, labels)


class TestCellConfidences:
    def test_one_distribution_per_missing_cell(self, dirty_table: Table) -> None:
        space = RepairSpace(dirty_table)
        confidences = holo_cell_confidences(dirty_table, space)
        expected_cells = {
            (row, kind, col)
            for row in dirty_table.dirty_rows()
            for kind, col in space.missing_cells(int(row))
        }
        assert set(confidences) == expected_cells

    def test_distributions_normalised(self, dirty_table: Table) -> None:
        confidences = holo_cell_confidences(dirty_table)
        for cell, probabilities in confidences.items():
            assert sum(probabilities) == pytest.approx(1.0), cell
            assert all(p >= 0 for p in probabilities)

    def test_argmax_matches_run_holo_clean(self, dirty_table: Table) -> None:
        space = RepairSpace(dirty_table)
        confidences = holo_cell_confidences(dirty_table, space)
        cleaned = run_holo_clean(dirty_table, space)
        for (row, kind, col), probabilities in confidences.items():
            candidates = space.cell_candidates(kind, col)
            best = candidates[int(np.argmax(probabilities))]
            if kind == "numeric":
                assert cleaned.numeric[row, col] == pytest.approx(float(best))
            else:
                assert cleaned.categorical[row, col] == int(best)

    def test_all_dirty_table_rejected(self) -> None:
        # Every row dirty: the repair space itself may already refuse (no
        # observed values), and with a usable space the neighbourhood model
        # refuses for lack of complete rows — either way it's a ValueError.
        table = Table(
            numeric=np.array([[np.nan, 1.0], [3.0, np.nan]]),
            categorical=np.zeros((2, 0), dtype=np.int64),
            labels=np.array([0, 1]),
        )
        with pytest.raises(ValueError, match="complete row"):
            holo_cell_confidences(table)


class TestCandidateWeights:
    def test_weights_match_candidate_sets(self, dirty_table: Table) -> None:
        space = RepairSpace(dirty_table)
        incomplete, space2, _ = incomplete_from_dirty_table(dirty_table)
        weights = holo_candidate_weights(dirty_table, space)
        assert len(weights) == dirty_table.n_rows
        for row in range(dirty_table.n_rows):
            assert len(weights[row]) == incomplete.candidates(row).shape[0]
        del space2

    def test_weights_are_exact_distributions(self, dirty_table: Table) -> None:
        for row_weights in holo_candidate_weights(dirty_table):
            assert sum(row_weights) == 1
            assert all(isinstance(w, Fraction) and w > 0 for w in row_weights)

    def test_multi_cell_row_weights_factor_approximately(self, dirty_table: Table) -> None:
        # Row 7 misses one numeric and one categorical cell; its top-weight
        # candidate must combine each cell's top confidence.
        space = RepairSpace(dirty_table)
        confidences = holo_cell_confidences(dirty_table, space)
        weights = holo_candidate_weights(dirty_table, space)
        cells = space.missing_cells(7)
        assert len(cells) == 2
        import itertools

        per_cell = [confidences[(7, kind, col)] for kind, col in cells]
        products = [
            float(np.prod(combo)) for combo in itertools.product(*per_cell)
        ][: space.max_row_candidates]
        best_by_product = int(np.argmax(products))
        best_by_weight = max(range(len(weights[7])), key=lambda j: weights[7][j])
        assert best_by_product == best_by_weight

    def test_weights_drive_weighted_cpclean(self, dirty_table: Table, rng) -> None:
        incomplete, space, encoder = incomplete_from_dirty_table(dirty_table)
        weights = holo_candidate_weights(dirty_table, space)
        val_X = rng.normal(size=(3, incomplete.n_features))
        gt = [0] * incomplete.n_rows
        report = run_weighted_cp_clean(
            incomplete, val_X, GroundTruthOracle(gt), weights=weights, k=3
        )
        assert report.cp_fraction_final == 1.0
