"""Unit tests for cleaning reports."""

from repro.cleaning.report import CleaningReport, CleaningStep


def make_report() -> CleaningReport:
    report = CleaningReport()
    report.steps = [
        CleaningStep(iteration=0, row=4, chosen_candidate=1, cp_fraction_before=0.5),
        CleaningStep(iteration=1, row=2, chosen_candidate=0, cp_fraction_before=0.75),
    ]
    report.final_fixed = {4: 1, 2: 0}
    report.cp_fraction_final = 1.0
    return report


class TestCleaningReport:
    def test_n_cleaned(self):
        assert make_report().n_cleaned == 2

    def test_cleaned_rows_in_order(self):
        assert make_report().cleaned_rows() == [4, 2]

    def test_cp_fraction_curve(self):
        assert make_report().cp_fraction_curve() == [0.5, 0.75, 1.0]

    def test_empty_report(self):
        report = CleaningReport()
        assert report.n_cleaned == 0
        assert report.cleaned_rows() == []
        assert report.cp_fraction_curve() == [0.0]
