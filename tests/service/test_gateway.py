"""The partitioned gateway: placement, scatter/gather, failure handling.

The differential harness (``tests/fuzz/test_gateway_differential.py``)
certifies exactness; this file covers the machinery around it — how
partitions land on executors, what the observability surface reports,
and above all the failure model: a SIGKILLed executor must be respawned,
its partitions re-prepared, and the next answer must still be exact.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service.broker import QueryBroker
from repro.service.gateway import Gateway, GatewayUnavailable
from repro.service.registry import DatasetRegistry


def small_dataset(seed: int = 5, n_rows: int = 8) -> IncompleteDataset:
    rng = np.random.default_rng(seed)
    sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, 2, size=n_rows)]
    labels[0], labels[1] = 0, 1
    return IncompleteDataset(sets, labels)


def counts_query(dataset, seed: int = 0, kind: str = "counts"):
    rng = np.random.default_rng(100 + seed)
    return make_query(dataset, rng.normal(size=(2, 2)), kind=kind, k=2)


@pytest.fixture
def gateway():
    with Gateway(2, partitions_per_executor=2, timeout_s=20.0) as gw:
        yield gw


class TestDistribution:
    def test_describe_dataset_reports_the_placement(self, gateway):
        dataset = small_dataset()
        gateway.ensure_distributed("d", dataset)
        described = gateway.describe_dataset("d")
        assert described["fingerprint"] == dataset.fingerprint()
        assert described["n_partitions"] == 4
        spans = [tuple(p["rows"]) for p in described["partitions"]]
        assert spans[0][0] == 0 and spans[-1][1] == dataset.n_rows
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start  # contiguous candidate-row spans
        owners = {p["executor"] for p in described["partitions"]}
        assert owners <= {0, 1} and len(owners) == 2  # bounded-load: both own some

    def test_redistribution_replaces_a_moved_fingerprint(self, gateway):
        gateway.ensure_distributed("moving", small_dataset(seed=1))
        first = gateway.describe_dataset("moving")["fingerprint"]
        replacement = small_dataset(seed=2)
        gateway.ensure_distributed("moving", replacement)
        described = gateway.describe_dataset("moving")
        assert described["fingerprint"] == replacement.fingerprint() != first

    def test_drop_forgets_the_dataset(self, gateway):
        gateway.ensure_distributed("gone", small_dataset())
        gateway.drop("gone")
        assert gateway.describe_dataset("gone") is None
        gateway.drop("gone")  # idempotent

    def test_stale_executor_state_raises_unavailable(self, gateway):
        dataset = small_dataset()
        query = counts_query(dataset)
        gateway.ensure_distributed("stale", dataset)
        # Model the redistribute-races-a-query window: the scatter carries
        # a fingerprint the executors were never registered with. They
        # must answer "stale", and the gateway must surface that as
        # unavailable (caller falls back locally) — never mixed state.
        gateway._datasets["stale"].fingerprint = "mid-redistribute-fingerprint"
        with pytest.raises(GatewayUnavailable):
            gateway.execute_query(
                "stale", query, fingerprint="mid-redistribute-fingerprint"
            )
        assert gateway.metrics()["stale_snapshots"] >= 1


class TestFailureModel:
    def test_sigkilled_executor_is_respawned_and_answers_stay_exact(self, gateway):
        dataset = small_dataset(n_rows=10)
        query = counts_query(dataset)
        local = execute_query(query, options=ExecutionOptions(cache=False))
        assert gateway.execute_query("kill", query).values == local.values

        victim_pid = gateway.metrics()["executors"]["0"]["pid"]
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            executor = gateway.metrics()["executors"]["0"]
            if executor["alive"] and executor["pid"] != victim_pid:
                break
            time.sleep(0.05)

        gathered = gateway.execute_query("kill", query)
        assert gathered.values == local.values
        metrics = gateway.metrics()
        assert metrics["respawns"] >= 1
        assert metrics["executors"]["0"]["restarts"] >= 1
        assert metrics["executors"]["0"]["pid"] != victim_pid

    def test_kill_between_distribute_and_query_still_exact(self, gateway):
        # The respawn path must re-register partitions from the gateway's
        # authoritative candidate sets, not wait for the next distribute.
        dataset = small_dataset(seed=9, n_rows=12)
        gateway.ensure_distributed("cold-kill", dataset)
        os.kill(gateway.metrics()["executors"]["1"]["pid"], signal.SIGKILL)
        query = counts_query(dataset, seed=3, kind="certain_label")
        local = execute_query(query, options=ExecutionOptions(cache=False))
        gathered = gateway.execute_query("cold-kill", query)
        assert gathered.values == local.values

    def test_wedged_executor_is_killed_and_its_pipe_never_reused(self):
        # SIGSTOP leaves the executor alive but unresponsive: the request
        # times out while its reply is still owed on the pipe. The gateway
        # must kill + respawn (fresh pipe) rather than retry on the same
        # pipe, where the stale reply would answer a *later* request.
        with Gateway(2, partitions_per_executor=2, timeout_s=1.0, retries=1) as gw:
            dataset = small_dataset(n_rows=10)
            query = counts_query(dataset)
            local = execute_query(query, options=ExecutionOptions(cache=False))
            assert gw.execute_query("wedge", query).values == local.values

            victim_pid = gw.metrics()["executors"]["0"]["pid"]
            os.kill(victim_pid, signal.SIGSTOP)
            try:
                gathered = gw.execute_query("wedge", query)
            finally:
                try:
                    os.kill(victim_pid, signal.SIGCONT)  # if it survived
                except ProcessLookupError:
                    pass
            assert gathered.values == local.values
            metrics = gw.metrics()
            assert metrics["executors"]["0"]["pid"] != victim_pid
            assert metrics["executors"]["0"]["restarts"] >= 1
            # The follow-up query must not see any stale reply either.
            again = counts_query(dataset, seed=7, kind="certain_label")
            local_again = execute_query(again, options=ExecutionOptions(cache=False))
            assert gw.execute_query("wedge", again).values == local_again.values

    def test_closed_gateway_is_unavailable_not_wrong(self, gateway):
        dataset = small_dataset()
        query = counts_query(dataset)
        gateway.close()
        gateway.close()  # idempotent
        with pytest.raises(GatewayUnavailable):
            gateway.execute_query("after-close", query)


class TestObservability:
    def test_metrics_shape(self, gateway):
        gateway.execute_query("obs", counts_query(small_dataset()))
        metrics = gateway.metrics()
        assert metrics["n_executors"] == 2
        assert metrics["queries"] >= 1 and metrics["scatters"] >= 1
        for executor in metrics["executors"].values():
            assert executor["alive"]
            assert executor["requests"] >= 1
            assert executor["avg_latency_s"] >= 0.0
        assert metrics["datasets"]["obs"]["n_partitions"] == 4

    def test_ping_round_trips_every_executor(self, gateway):
        health = gateway.ping()
        assert len(health) == 2
        assert all(entry["ok"] for entry in health)


class TestBrokerIntegration:
    def test_broker_serves_through_the_gateway_and_reports_it(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        broker = QueryBroker(
            registry, window_s=0.005, cache=False, gateway=Gateway(2)
        )
        try:
            response = broker.query("d", np.zeros((2, 2)), kind="counts")
            assert response["backend"] == "gateway"
            metrics = broker.metrics()
            assert metrics["gateway_served"] >= 1
            assert metrics["gateway"]["n_executors"] == 2
            assert registry.get("d").describe()["partitioning"]["n_partitions"] == 4
        finally:
            broker.close()
        assert not broker.gateway.metrics()["executors"]["0"]["alive"]

    def test_broker_falls_back_locally_when_the_gateway_is_gone(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        gateway = Gateway(2)
        broker = QueryBroker(registry, window_s=0.005, cache=False, gateway=gateway)
        try:
            gateway.close()  # every scatter now raises GatewayUnavailable
            response = broker.query("d", np.zeros((2, 2)), kind="counts")
            assert response["backend"] != "gateway"  # exact, just local
            direct = broker.query("d", np.zeros((2, 2)), kind="counts", backend="gateway")
            assert direct["values"] == response["values"]
            assert broker.metrics()["gateway_fallbacks"] >= 2
        finally:
            broker.close()

    def test_gateway_backend_without_gateway_degrades_to_auto(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        broker = QueryBroker(registry, window_s=0.005, cache=False)
        try:
            response = broker.query("d", np.zeros((2, 2)), kind="counts", backend="gateway")
            assert response["values"]
        finally:
            broker.close()
