"""DatasetRegistry: registration, warm state pinning, cleaning steps."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.service.registry import (
    DatasetRegistry,
    RegistryError,
    UnknownDatasetError,
)


def small_dataset() -> IncompleteDataset:
    rng = np.random.default_rng(0)
    sets = [rng.normal(size=(m, 2)) for m in (1, 3, 2, 1, 2, 3)]
    return IncompleteDataset(sets, [0, 1, 0, 1, 1, 0])


class TestRegistration:
    def test_register_and_get(self):
        registry = DatasetRegistry()
        entry = registry.register("d", small_dataset(), k=2)
        assert registry.get("d") is entry
        assert "d" in registry
        assert len(registry) == 1
        assert registry.names() == ["d"]

    def test_duplicate_name_rejected_replace_allowed(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset())
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("d", small_dataset())
        replaced = registry.register("d", small_dataset(), k=5, replace=True)
        assert registry.get("d").k == 5
        assert registry.get("d") is replaced

    def test_unknown_dataset_names_the_known_ones(self):
        registry = DatasetRegistry()
        registry.register("known", small_dataset())
        with pytest.raises(UnknownDatasetError, match="known"):
            registry.get("nope")
        with pytest.raises(UnknownDatasetError):
            registry.remove("nope")

    def test_empty_name_rejected(self):
        registry = DatasetRegistry()
        with pytest.raises(RegistryError):
            registry.register("", small_dataset())

    def test_remove_drops_entry(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset())
        registry.remove("d")
        assert "d" not in registry

    def test_register_recipe_carries_val_set_and_oracle(self):
        registry = DatasetRegistry()
        entry = registry.register_recipe("r", n_train=40, n_val=6, seed=0)
        assert entry.val_X is not None and entry.val_X.shape[0] == 6
        assert entry.gt_choice is not None
        assert entry.supports_cleaning
        description = entry.describe()
        assert description["has_oracle"] and description["n_val"] == 6

    def test_concurrent_registration_is_safe(self):
        registry = DatasetRegistry()
        errors: list[Exception] = []

        def register(index: int) -> None:
            try:
                registry.register(f"d{index}", small_dataset())
            except Exception as exc:  # pragma: no cover - fails the assert below
                errors.append(exc)

        threads = [threading.Thread(target=register, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(registry) == 16


class TestEntryState:
    def test_describe_reports_shape_and_fingerprint(self):
        dataset = small_dataset()
        registry = DatasetRegistry()
        entry = registry.register("d", dataset, k=2)
        description = entry.describe()
        assert description["fingerprint"] == dataset.fingerprint()
        assert description["n_rows"] == dataset.n_rows
        assert description["n_worlds"] == str(dataset.n_worlds())
        assert description["type"] == "incomplete"
        assert not description["supports_cleaning"]

    def test_label_uncertain_entry_describes_itself(self):
        lu = LabelUncertainDataset.from_incomplete(small_dataset(), flip_rows=[1])
        entry = DatasetRegistry().register("lu", lu)
        assert entry.describe()["type"] == "label_uncertain"
        assert not entry.supports_cleaning  # cleaning needs feature pins only

    def test_prepared_is_lazy_then_pinned(self):
        registry = DatasetRegistry()
        entry = registry.register_recipe("r", n_train=40, n_val=4, seed=0)
        assert entry.prepared is None  # nothing built yet
        warm = entry.ensure_warm()
        assert warm is not None
        assert entry.prepared is warm  # the same object stays pinned
        assert entry.session.batch is warm

    def test_no_val_set_means_no_session(self):
        entry = DatasetRegistry().register("d", small_dataset())
        assert entry.ensure_warm() is None
        with pytest.raises(RegistryError, match="no validation set"):
            _ = entry.session

    def test_record_served_counters(self):
        entry = DatasetRegistry().register("d", small_dataset())
        entry.record_served(3)
        entry.record_served(1)
        description = entry.describe()
        assert description["n_queries"] == 2
        assert description["n_points_served"] == 4


class TestCleanStep:
    def test_clean_step_applies_pin_and_checkpoints(self):
        registry = DatasetRegistry()
        entry = registry.register_recipe("r", n_train=40, n_val=4, seed=0)
        row = entry.dataset.uncertain_rows()[0]
        checkpoint = entry.clean_step(row, 0)
        assert checkpoint["n_cleaned"] == 1
        assert checkpoint["fixed"] == {row: 0}
        assert checkpoint["row"] == row and checkpoint["candidate"] == 0
        assert entry.session_pins() == {row: 0}
        assert 0.0 <= checkpoint["cp_fraction"] <= 1.0
        assert len(checkpoint["certain_labels"]) == 4

    def test_oracle_candidate_used_when_none_given(self):
        registry = DatasetRegistry()
        entry = registry.register_recipe("r", n_train=40, n_val=4, seed=0)
        row = entry.dataset.uncertain_rows()[0]
        checkpoint = entry.clean_step(row, None)
        assert checkpoint["candidate"] == int(entry.gt_choice[row])

    def test_no_oracle_rejected(self):
        dataset = small_dataset()
        registry = DatasetRegistry()
        entry = registry.register("d", dataset, val_X=np.zeros((2, 2)))
        row = dataset.uncertain_rows()[0]
        with pytest.raises(RegistryError, match="oracle"):
            entry.clean_step(row, None)

    def test_concurrent_clean_steps_serialise_cleanly(self):
        """Parallel /clean/step calls must not race the session's pin dict
        (checkpoint iterates it); every step lands exactly once."""
        registry = DatasetRegistry()
        entry = registry.register_recipe("r", n_train=40, n_val=4, seed=0)
        rows = entry.dataset.uncertain_rows()[:6]
        errors: list[Exception] = []

        def step(row: int) -> None:
            try:
                entry.clean_step(row, None)
            except Exception as exc:  # pragma: no cover - fails the assert
                errors.append(exc)

        threads = [threading.Thread(target=step, args=(row,)) for row in rows]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert entry.session_pins() == {
            row: int(entry.gt_choice[row]) for row in rows
        }
        assert entry.describe()["n_clean_steps"] == len(rows)

    def test_stats_aggregate_across_entries(self):
        registry = DatasetRegistry()
        registry.register("a", small_dataset())
        registry.register("b", small_dataset())
        registry.get("a").record_served(2)
        registry.get("b").record_served(5)
        stats = registry.stats()
        assert stats["n_datasets"] == 2
        assert stats["n_queries"] == 2
        assert stats["n_points_served"] == 7
