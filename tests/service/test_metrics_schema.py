"""Golden keys: the documented ``/metrics`` schema survives refactors.

PR 9 moved every serving counter onto typed :mod:`repro.obs` instruments.
These tests pin the *wire* contract — the legacy JSON key set plus the
new ``obs`` section — so dashboards built on either never silently lose
a series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.service import DatasetRegistry, ServiceClient, make_service

# The documented legacy broker schema. A missing key breaks dashboards; a
# new key is fine (extend this set when you add one on purpose).
BROKER_KEYS = {
    "requests",
    "single_point_requests",
    "multi_point_requests",
    "batches_executed",
    "points_executed",
    "coalesced_batches",
    "max_batch_size",
    "rejected",
    "served_from_cache",
    "sql_requests",
    "sql_served_from_cache",
    "patch_requests",
    "explain_requests",
    "prune",
    "inflight",
    "window_s",
    "max_batch",
    "max_pending",
    "gateway_served",
    "gateway_fallbacks",
    "cache",
    "gateway",
}

REGISTRY_KEYS = {
    "n_datasets",
    "n_codd_tables",
    "n_queries",
    "n_points_served",
    "n_clean_steps",
    "n_sql_queries",
}

GATEWAY_KEYS = {
    "n_executors",
    "partitions_per_executor",
    "timeout_s",
    "retries",
    "queries",
    "scatters",
    "respawns",
    "stale_snapshots",
    "unavailable",
    "executors",
    "datasets",
}

PRUNE_KEYS = {"executions", "pruned_executions"}

# Counters the obs registry must always carry once a service has served a
# query (name prefixes; label variants collapse onto the base name).
OBS_COUNTER_PREFIXES = {
    "broker_requests_total",
    "broker_batches_total",
    "http_requests_total",
}

OBS_HISTOGRAM_PREFIXES = {
    "broker_request_seconds",
    "http_request_seconds",
}

OBS_GAUGES = {
    "broker_inflight",
    "broker_cache_size",
    "broker_cache_hit_rate",
    "registry_datasets",
    "registry_queries",
}


def _dataset():
    return IncompleteDataset(
        [
            np.array([[5.0], [2.0]]),
            np.array([[6.0], [4.0]]),
            np.array([[3.0], [1.0]]),
        ],
        labels=[1, 1, 0],
    )


@pytest.fixture(scope="module")
def served_metrics():
    registry = DatasetRegistry()
    registry.register("d", _dataset(), k=1)
    server = make_service(registry, window_s=0.0)
    try:
        client = ServiceClient(server.url)
        client.query("d", point=[0.0])
        client.query("d", point=[0.0], explain=True)
        yield client.metrics()
    finally:
        server.close()


def test_top_level_keys(served_metrics):
    assert {"uptime_s", "registry", "broker", "obs"} <= set(served_metrics)


def test_broker_golden_keys(served_metrics):
    missing = BROKER_KEYS - set(served_metrics["broker"])
    assert not missing, f"broker /metrics lost keys: {sorted(missing)}"
    assert PRUNE_KEYS <= set(served_metrics["broker"]["prune"])


def test_registry_golden_keys(served_metrics):
    missing = REGISTRY_KEYS - set(served_metrics["registry"])
    assert not missing, f"registry /metrics lost keys: {sorted(missing)}"


def test_legacy_counters_still_count(served_metrics):
    broker = served_metrics["broker"]
    assert broker["requests"] == 2
    assert broker["single_point_requests"] == 2
    assert broker["explain_requests"] == 1
    assert broker["inflight"] == 0


def test_obs_section_schema(served_metrics):
    obs = served_metrics["obs"]
    assert {"counters", "gauges", "histograms", "tracing"} <= set(obs)
    counter_bases = {name.partition("{")[0] for name in obs["counters"]}
    missing = OBS_COUNTER_PREFIXES - counter_bases
    assert not missing, f"obs counters lost: {sorted(missing)}"
    histogram_bases = {name.partition("{")[0] for name in obs["histograms"]}
    missing = OBS_HISTOGRAM_PREFIXES - histogram_bases
    assert not missing, f"obs histograms lost: {sorted(missing)}"
    missing = OBS_GAUGES - set(obs["gauges"])
    assert not missing, f"obs gauges lost: {sorted(missing)}"
    tracing = obs["tracing"]
    assert {"enabled", "buffered", "published", "slow_queries"} <= set(tracing)


def test_gateway_golden_keys():
    registry = DatasetRegistry()
    registry.register("d", _dataset(), k=1)
    server = make_service(registry, window_s=0.0, executors=2)
    try:
        client = ServiceClient(server.url)
        client.query("d", point=[0.0])
        gateway = client.metrics()["broker"]["gateway"]
    finally:
        server.close()
    missing = GATEWAY_KEYS - set(gateway)
    assert not missing, f"gateway /metrics lost keys: {sorted(missing)}"
    for executor in gateway["executors"].values():
        assert {"pid", "alive", "restarts", "requests", "errors"} <= set(executor)
