"""`repro serve` must drain the broker on SIGINT *and* SIGTERM.

Before the fix, SIGTERM killed the process outright (Python's default
handler) — in-flight micro-batches were stranded and gateway executors
leaked. Both signals now funnel into the ``KeyboardInterrupt`` path whose
``finally`` runs ``broker.close()``: pending batches flush, executors
shut down, and the process exits 0 after printing a drain marker these
tests (and operators' logs) can assert on.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient

_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _spawn_serve(*extra_args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _wait_for_url(process: subprocess.Popen) -> str:
    seen = []
    for _ in range(10):  # a recipe preload logs a line before the listen line
        line = process.stdout.readline()
        seen.append(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return match.group(1)
    raise AssertionError(f"no listen line in {seen!r}")


def _finish(process: subprocess.Popen, timeout: float = 15.0) -> str:
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover — the bug itself
        process.kill()
        raise
    return output


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_signal_drains_and_exits_cleanly(signum):
    process = _spawn_serve()
    try:
        url = _wait_for_url(process)
        client = ServiceClient(url)
        assert client.wait_until_ready(timeout=15)["status"] == "ok"
    except BaseException:
        process.kill()
        raise
    process.send_signal(signum)
    output = _finish(process)
    assert process.returncode == 0, f"exit {process.returncode}: {output}"
    assert "drained and stopped" in output


def test_sigterm_drains_the_gateway_mode_too():
    """Multi-process mode: the drain must also shut the executors down."""
    process = _spawn_serve("--executors", "2", "--recipe", "supreme",
                          "--n-train", "30", "--n-val", "4")
    try:
        url = _wait_for_url(process)
        client = ServiceClient(url)
        assert client.wait_until_ready(timeout=30)["status"] == "ok"
        response = client.query("supreme", points="validation", kind="counts")
        assert response["backend"] == "gateway"
        executors = client.metrics()["broker"]["gateway"]["executors"]
        pids = [entry["pid"] for entry in executors.values()]
        assert len(pids) == 2
    except BaseException:
        process.kill()
        raise
    process.send_signal(signal.SIGTERM)
    output = _finish(process, timeout=30.0)
    assert process.returncode == 0, f"exit {process.returncode}: {output}"
    assert "drained and stopped" in output
    deadline = time.monotonic() + 10.0
    for pid in pids:
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break  # executor gone, as required
            time.sleep(0.05)
        else:  # pragma: no cover — leak
            pytest.fail(f"executor {pid} outlived the drained server")
