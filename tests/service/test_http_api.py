"""The HTTP JSON API: round trips, observability, and structured errors."""

from __future__ import annotations

import json
from urllib import error, request

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.service import DatasetRegistry, ServiceClient, ServiceError, make_service


def small_dataset() -> IncompleteDataset:
    rng = np.random.default_rng(11)
    sets = [rng.normal(size=(m, 2)) for m in (1, 3, 2, 2, 1, 3)]
    return IncompleteDataset(sets, [0, 1, 0, 1, 1, 0])


@pytest.fixture(scope="module")
def service():
    registry = DatasetRegistry()
    registry.register("d", small_dataset(), k=2)
    registry.register_recipe("recipe", n_train=40, n_val=4, seed=0)
    server = make_service(registry, window_s=0.005, max_batch=8)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


def test_make_service_failure_does_not_leak_executor_processes():
    """A broker-constructor failure after the gateway spawned must shut the
    executor processes down, not orphan them (window_s=-1 is rejected by
    QueryBroker *after* make_service built the Gateway)."""
    import multiprocessing
    import time

    before = {p.pid for p in multiprocessing.active_children()}
    with pytest.raises(ValueError):
        make_service(executors=2, window_s=-1.0, start=False)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [
            p for p in multiprocessing.active_children()
            if p.pid not in before and p.name.startswith("repro-executor")
        ]
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked


def test_close_without_started_loop_does_not_deadlock():
    """make_service(start=False) followed by close() must return (the
    shutdown() handshake only applies to a running accept loop)."""
    from repro.service import DatasetRegistry as Registry, make_service as make

    server = make(Registry(), start=False)
    server.close()  # would previously block forever in BaseServer.shutdown()


def post_raw(server, path: str, body: bytes, content_type: str = "application/json"):
    """POST raw bytes, returning (status, parsed JSON body)."""
    req = request.Request(
        server.url + path,
        data=body,
        method="POST",
        headers={"Content-Type": content_type},
    )
    try:
        with request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestHappyPaths:
    def test_healthz(self, service):
        server, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["datasets"]) >= {"d", "recipe"}
        assert health["uptime_s"] >= 0

    def test_datasets_listing_and_detail(self, service):
        server, client = service
        names = {row["name"] for row in client.datasets()}
        assert {"d", "recipe"} <= names
        detail = client.dataset("d")
        assert detail["n_rows"] == 6
        assert detail["fingerprint"] == small_dataset().fingerprint()

    def test_register_dataset_round_trip(self, service):
        server, client = service
        local = small_dataset()
        created = client.register_dataset("shipped", local, k=2)
        assert created["fingerprint"] == local.fingerprint()
        counts = client.query("shipped", point=[0.0, 0.0], kind="counts")["values"][0]
        assert isinstance(counts, list) and sum(counts) == local.n_worlds()

    def test_register_recipe_round_trip(self, service):
        server, client = service
        created = client.register_recipe("recipe2", n_train=40, n_val=4, seed=1)
        assert created["supports_cleaning"]
        response = client.query("recipe2", points="validation", kind="certain_label")
        assert len(response["values"]) == 4

    def test_query_validation_set_uses_warm_prepared_state(self, service):
        server, client = service
        entry = server.registry.get("recipe")
        client.query("recipe", points="validation", kind="certain_label")
        assert entry.prepared is not None  # pinned by the query

    def test_clean_step_and_with_cleaned_query(self, service):
        server, client = service
        entry = server.registry.get("recipe")
        row = entry.dataset.uncertain_rows()[0]
        checkpoint = client.clean_step("recipe", row=row)  # oracle answers
        assert checkpoint["n_cleaned"] == 1
        assert checkpoint["fixed"] == {row: int(entry.gt_choice[row])}
        assert isinstance(checkpoint["cp_fraction"], float)
        served = client.query(
            "recipe", points="validation", kind="certain_label", with_cleaned=True
        )["values"]
        assert len(served) == 4

    def test_http_registration_inherits_server_execution_defaults(self, service):
        """Datasets registered over HTTP run with the operator's --backend
        and --n-jobs, same as the CLI-preloaded one."""
        server, client = service
        client.register_dataset("defaults-check", small_dataset(), k=2)
        entry = server.registry.get("defaults-check")
        assert entry.backend == server.broker.backend
        assert entry.n_jobs == server.broker.n_jobs

    def test_metrics_expose_broker_and_registry(self, service):
        server, client = service
        metrics = client.metrics()
        assert metrics["registry"]["n_datasets"] >= 2
        broker = metrics["broker"]
        assert broker["requests"] >= 1
        assert broker["cache"] is not None and "hit_rate" in broker["cache"]

    def test_big_integer_counts_survive_the_wire(self, service):
        server, client = service
        # 6 rows of up to 3 candidates → counts can exceed 2^53 with larger
        # datasets; json round-trips Python ints exactly either way. Register
        # a wider dataset to force genuinely big world counts.
        rng = np.random.default_rng(5)
        sets = [rng.normal(size=(9, 2)) for _ in range(20)]
        big = IncompleteDataset(sets, [i % 2 for i in range(20)])
        client.register_dataset("big", big, k=1)
        counts = client.query("big", point=[0.0, 0.0], kind="counts", k=1)["values"][0]
        assert sum(counts) == big.n_worlds()
        assert big.n_worlds() > 2**63  # definitely not a float round trip


class TestErrorPaths:
    def test_unknown_dataset_is_404(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.query("missing", point=[0.0, 0.0])
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_dataset"
        assert "missing" in excinfo.value.message

    def test_unknown_dataset_detail_is_404(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.dataset("missing")
        assert excinfo.value.status == 404

    def test_malformed_json_body_is_400(self, service):
        server, client = service
        status, payload = post_raw(server, "/query", b"{not json!")
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"
        assert "JSON" in payload["error"]["message"]

    def test_non_object_body_is_400(self, service):
        server, client = service
        status, payload = post_raw(server, "/query", b'"just a string"')
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_missing_fields_are_400(self, service):
        server, client = service
        status, payload = post_raw(server, "/query", json.dumps({}).encode())
        assert status == 400
        assert "dataset" in payload["error"]["message"]
        status, payload = post_raw(
            server, "/query", json.dumps({"dataset": "d"}).encode()
        )
        assert status == 400
        assert "point" in payload["error"]["message"]

    def test_flavor_mismatch_is_structured_400(self, service):
        server, client = service
        # topk only supports kind='counts'; make_query's error must surface.
        with pytest.raises(ServiceError) as excinfo:
            client.query("d", point=[0.0, 0.0], flavor="topk", kind="check", label=0)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_query"
        assert "topk" in excinfo.value.message

    def test_backend_mismatch_is_plan_error_400(self, service):
        server, client = service
        # The incremental backend cannot serve the topk flavor.
        with pytest.raises(ServiceError) as excinfo:
            client.query(
                "d", point=[0.0, 0.0], flavor="topk", kind="counts",
                backend="incremental",
            )
        assert excinfo.value.status == 400
        assert excinfo.value.code == "plan_error"

    def test_unknown_backend_is_plan_error_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.query("d", point=[0.0, 0.0], backend="bogus")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "plan_error"
        assert "bogus" in excinfo.value.message

    def test_multi_row_point_field_is_400_not_truncated(self, service):
        server, client = service
        status, payload = post_raw(
            server,
            "/query",
            json.dumps(
                {"dataset": "d", "point": [[0.0, 0.0], [1.0, 1.0]]}
            ).encode(),
        )
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"
        assert "single test point" in payload["error"]["message"]

    def test_bad_point_shape_is_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.query("d", point=[0.0, 0.0, 0.0])  # dataset has 2 features
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_query"

    def test_duplicate_registration_is_409(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.register_dataset("d", small_dataset())
        assert excinfo.value.status == 409
        assert excinfo.value.code == "registry_conflict"

    def test_malformed_dataset_payload_is_400(self, service):
        server, client = service
        status, payload = post_raw(
            server,
            "/datasets",
            json.dumps({"name": "bad", "dataset": {"candidate_sets": []}}).encode(),
        )
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_clean_step_without_val_set_is_400(self, service):
        # Not a conflict — just an invalid request against this dataset.
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.clean_step("d", row=1, candidate=0)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_request"
        assert "validation set" in excinfo.value.message

    def test_clean_step_bad_candidate_is_400(self, service):
        server, client = service
        entry = server.registry.get("recipe")
        row = entry.dataset.uncertain_rows()[-1]
        with pytest.raises(ServiceError) as excinfo:
            client.clean_step("recipe", row=row, candidate=999)
        assert excinfo.value.status == 400

    def test_unknown_routes_are_404(self, service):
        server, client = service
        status, payload = post_raw(server, "/nope", b"{}")
        assert status == 404 and payload["error"]["code"] == "not_found"
        with pytest.raises(error.HTTPError) as excinfo:
            request.urlopen(server.url + "/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_overload_is_429_with_retry_after(self, service):
        """Admission rejection must surface as 429 + Retry-After over HTTP."""
        import threading

        server, client = service
        broker = server.broker
        # Temporarily throttle the running broker: one in-flight request
        # inside a long window, then the next one must be shed.
        old = broker.max_pending, broker.window_s
        broker.max_pending, broker.window_s = 1, 0.5
        try:
            background: dict[str, object] = {}

            def slow() -> None:
                background["response"] = client.query(
                    "d", point=[9.0, 9.0], kind="counts"
                )

            thread = threading.Thread(target=slow)
            thread.start()
            import time as _time

            _time.sleep(0.1)
            with pytest.raises(ServiceError) as excinfo:
                client.query("d", point=[8.0, 8.0], kind="counts")
            assert excinfo.value.status == 429
            assert excinfo.value.code == "overloaded"
            thread.join()
            assert background["response"]["values"]
        finally:
            broker.max_pending, broker.window_s = old
