"""Partition planning, the consistent-hash ring, and tally merging.

These are the pure building blocks under the gateway: contiguous
candidate-row spans, deterministic bounded-load placement, and the
lossless concatenation of per-partition results back into global order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.partition import (
    HashRing,
    RowPartition,
    merge_minmax_tallies,
    merge_sim_blocks,
    plan_row_partitions,
)


class TestPlanRowPartitions:
    def test_spans_tile_the_row_range_exactly(self):
        parts = plan_row_partitions(17, 4)
        assert [p.index for p in parts] == [0, 1, 2, 3]
        assert parts[0].start == 0
        assert parts[-1].stop == 17
        for prev, cur in zip(parts, parts[1:]):
            assert prev.stop == cur.start  # contiguous, no gap, no overlap

    def test_balanced_within_one_row(self):
        parts = plan_row_partitions(17, 4)
        sizes = [p.n_rows for p in parts]
        assert sum(sizes) == 17
        assert max(sizes) - min(sizes) <= 1

    def test_more_partitions_than_rows_clamps(self):
        parts = plan_row_partitions(3, 8)
        assert len(parts) == 3
        assert all(p.n_rows == 1 for p in parts)

    def test_single_partition_covers_everything(self):
        (part,) = plan_row_partitions(9, 1)
        assert (part.start, part.stop) == (0, 9)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            plan_row_partitions(0, 2)
        with pytest.raises(ValueError):
            plan_row_partitions(5, 0)
        with pytest.raises(ValueError):
            RowPartition(index=0, start=4, stop=4)


class TestHashRing:
    def test_placement_is_deterministic(self):
        keys = [f"dataset/{i}" for i in range(32)]
        a = HashRing([0, 1, 2, 3]).assign(keys)
        b = HashRing([0, 1, 2, 3]).assign(keys)
        assert a == b  # md5-based: stable across processes and runs

    def test_bounded_load_never_overfills_a_node(self):
        keys = [f"d/{i}" for i in range(37)]
        nodes = [0, 1, 2, 3, 4]
        assignment = HashRing(nodes).assign(keys)
        capacity = -(-len(keys) // len(nodes))  # ceil
        loads = {n: 0 for n in nodes}
        for node in assignment.values():
            loads[node] += 1
        assert max(loads.values()) <= capacity
        assert sum(loads.values()) == len(keys)

    def test_every_node_reachable_in_preference_order(self):
        ring = HashRing(["a", "b", "c"])
        order = ring.preference("some-key")
        assert sorted(order) == ["a", "b", "c"]
        assert order[0] == ring.node_for("some-key")

    def test_removal_moves_only_the_lost_nodes_keys(self):
        # Consistent hashing's point: dropping one node must not reshuffle
        # keys that were not on it (modulo bounded-load spill).
        keys = [f"k/{i}" for i in range(64)]
        full = {k: HashRing([0, 1, 2, 3]).node_for(k) for k in keys}
        reduced = {k: HashRing([0, 1, 2]).node_for(k) for k in keys}
        moved = [k for k in keys if full[k] != reduced[k] and full[k] != 3]
        assert not moved

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestMerges:
    def test_minmax_merge_is_concatenation_in_partition_order(self):
        rng = np.random.default_rng(0)
        lo = rng.normal(size=(3, 7))
        hi = lo + rng.uniform(size=(3, 7))
        tallies = [(lo[:, :4], hi[:, :4]), (lo[:, 4:], hi[:, 4:])]
        mins, maxs = merge_minmax_tallies(tallies)
        np.testing.assert_array_equal(mins, lo)
        np.testing.assert_array_equal(maxs, hi)

    def test_sim_merge_restores_global_candidate_order(self):
        rng = np.random.default_rng(1)
        sims = rng.normal(size=(2, 9))
        merged = merge_sim_blocks([sims[:, :3], sims[:, 3:8], sims[:, 8:]])
        np.testing.assert_array_equal(merged, sims)

    def test_merge_of_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_minmax_tallies([])
        with pytest.raises(ValueError):
            merge_sim_blocks([])
