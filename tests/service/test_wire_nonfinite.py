"""Non-finite payloads must be rejected at the wire, on every endpoint.

``json.loads`` happily produces ``nan`` and ``inf`` (the literals
``NaN`` / ``Infinity`` are non-standard but parsed, and ``1e999``
overflows ``float64`` to ``inf``). A NaN that slips into a test point,
an appended candidate row, or a Codd cell poisons every similarity
comparison downstream — silently wrong answers under an exactness
guarantee. The contract is a clean 400 ``malformed_payload`` instead,
from every endpoint that decodes numeric matrices or cells.
"""

from __future__ import annotations

import json
from urllib import error, request

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.service import DatasetRegistry, ServiceClient, make_service
from repro.service.wire import (
    WireError,
    decode_codd_fixes,
    decode_codd_table,
    decode_matrix,
)


def small_dataset() -> IncompleteDataset:
    rng = np.random.default_rng(23)
    sets = [rng.normal(size=(m, 2)) for m in (1, 3, 2, 2, 1, 3)]
    return IncompleteDataset(sets, [0, 1, 0, 1, 1, 0])


@pytest.fixture(scope="module")
def service():
    registry = DatasetRegistry()
    registry.register("d", small_dataset(), k=2)
    server = make_service(registry, window_s=0.005, max_batch=8)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


def send_raw(server, path: str, body: str, method: str = "POST"):
    """Send a raw JSON string (it may contain NaN/Infinity literals)."""
    req = request.Request(
        server.url + path,
        data=body.encode("utf-8"),
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


NON_FINITE_MATRICES = (
    "[[NaN, 1.0]]",
    "[[-Infinity, 1.0]]",
    "[[1e999, 1.0]]",  # float64 overflow → inf, the ISSUE's literal case
)


class TestDecodeMatrixUnit:
    def test_nan_rejected(self):
        with pytest.raises(WireError, match="finite"):
            decode_matrix([[float("nan"), 1.0]], "points")

    def test_infinities_rejected(self):
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(WireError, match="finite"):
                decode_matrix([[bad, 1.0]], "points")

    def test_float64_overflow_string_rejected(self):
        # np.asarray(..., float64) parses "1e999" to inf — still rejected.
        with pytest.raises(WireError, match="finite"):
            decode_matrix([["1e999", 1.0]], "points")

    def test_finite_matrix_passes(self):
        matrix = decode_matrix([[1.0, -2.5]], "points")
        assert matrix.shape == (1, 2)

    def test_codd_table_nan_cell_rejected(self):
        table = {"schema": ["a"], "rows": [[float("nan")]]}
        with pytest.raises(WireError, match="finite"):
            decode_codd_table(table)

    def test_codd_table_nan_in_null_domain_rejected(self):
        table = {"schema": ["a"], "rows": [[{"null": [1.0, float("inf")]}]]}
        with pytest.raises(WireError, match="finite"):
            decode_codd_table(table)

    def test_codd_fix_infinite_value_rejected(self):
        with pytest.raises(WireError, match="finite"):
            decode_codd_fixes([{"row": 0, "column": 0, "value": float("inf")}])


class TestQueryEndpoint:
    @pytest.mark.parametrize("matrix", NON_FINITE_MATRICES)
    def test_points_matrix_is_400(self, service, matrix):
        server, _ = service
        body = f'{{"dataset": "d", "points": {matrix}, "kind": "counts"}}'
        status, payload = send_raw(server, "/query", body)
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_single_point_nan_is_400(self, service):
        server, _ = service
        status, payload = send_raw(
            server, "/query", '{"dataset": "d", "point": [NaN, 0.0]}'
        )
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"


class TestSqlEndpoint:
    def test_inline_table_nan_cell_is_400(self, service):
        server, _ = service
        body = (
            '{"query": "SELECT a FROM t", '
            '"codd_table": {"schema": ["a"], "rows": [[NaN]]}}'
        )
        status, payload = send_raw(server, "/sql", body)
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_inline_table_infinite_null_domain_is_400(self, service):
        server, _ = service
        body = (
            '{"query": "SELECT a FROM t", '
            '"codd_table": {"schema": ["a"], '
            '"rows": [[{"null": [1.0, Infinity]}]]}}'
        )
        status, payload = send_raw(server, "/sql", body)
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"


class TestPatchEndpoint:
    def test_row_append_nan_candidates_is_400(self, service):
        server, _ = service
        body = (
            '{"deltas": [{"op": "row_append", '
            '"candidates": [[NaN, 1.0]], "label": 0}]}'
        )
        status, payload = send_raw(server, "/datasets/d", body, method="PATCH")
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_row_append_overflow_candidates_is_400(self, service):
        server, _ = service
        body = (
            '{"deltas": [{"op": "row_append", '
            '"candidates": [[1e999, 1.0]], "label": 0}]}'
        )
        status, payload = send_raw(server, "/datasets/d", body, method="PATCH")
        assert status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_rejected_delta_leaves_the_dataset_untouched(self, service):
        server, client = service
        before = client.dataset("d")
        send_raw(
            server,
            "/datasets/d",
            '{"deltas": [{"op": "row_append", "candidates": [[Infinity]], "label": 0}]}',
            method="PATCH",
        )
        after = client.dataset("d")
        assert after["fingerprint"] == before["fingerprint"]
        assert after["version"] == before["version"]
