"""QueryBroker: micro-batching, admission control, the TTL result cache."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.planner import ExecutionOptions, PlanError, execute_query, make_query
from repro.service.broker import AdmissionError, QueryBroker, TTLResultCache
from repro.service.registry import DatasetRegistry


def small_dataset() -> IncompleteDataset:
    rng = np.random.default_rng(3)
    sets = [rng.normal(size=(m, 2)) for m in (1, 3, 2, 2, 1, 3)]
    return IncompleteDataset(sets, [0, 1, 0, 1, 1, 0])


@pytest.fixture
def registry() -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register("d", small_dataset(), k=2)
    return registry


# ---------------------------------------------------------------------------
# TTLResultCache
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTTLResultCache:
    def test_entries_expire_after_ttl(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=8, ttl_s=10.0, clock=clock)
        cache.put("key", [1, 2])
        assert cache.get("key") == [1, 2]
        clock.now = 9.9
        assert cache.get("key") == [1, 2]
        clock.now = 10.1
        assert cache.get("key") is None  # expired == miss
        assert cache.stats()["expirations"] == 1
        assert len(cache) == 0

    def test_lru_eviction_at_maxsize(self):
        cache = TTLResultCache(maxsize=2, ttl_s=100.0, clock=FakeClock())
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_purge_drops_only_expired(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=8, ttl_s=5.0, clock=clock)
        cache.put("old", 1)
        clock.now = 3.0
        cache.put("new", 2)
        clock.now = 5.5  # 'old' expired at 5.0, 'new' expires at 8.0
        assert cache.purge() == 1
        assert len(cache) == 1 and cache.get("new") == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TTLResultCache(maxsize=0)
        with pytest.raises(ValueError):
            TTLResultCache(ttl_s=0)

    def test_concurrent_hammer(self):
        cache = TTLResultCache(maxsize=32, ttl_s=100.0)
        n_threads, n_ops = 8, 400
        errors: list[Exception] = []

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for i in range(n_ops):
                    key = ("k", int(rng.integers(0, 64)))
                    if rng.random() < 0.5:
                        cache.put(key, i)
                    else:
                        cache.get(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] <= n_threads * n_ops


# ---------------------------------------------------------------------------
# Micro-batching
# ---------------------------------------------------------------------------


class TestMicroBatching:
    def test_concurrent_singles_coalesce(self, registry):
        broker = QueryBroker(registry, window_s=0.05, max_batch=64, cache=False)
        rng = np.random.default_rng(0)
        points = rng.normal(size=(12, 2))
        results: dict[int, dict] = {}

        def ask(index: int) -> None:
            results[index] = broker.query("d", points[index], kind="counts")

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = broker.metrics()
        assert metrics["requests"] == 12
        assert metrics["batches_executed"] < 12  # some coalescing happened
        assert metrics["coalesced_batches"] >= 1
        assert any(results[i]["batch_size"] > 1 for i in results)
        broker.close()

    def test_max_batch_flushes_without_waiting_for_window(self, registry):
        broker = QueryBroker(registry, window_s=30.0, max_batch=2, cache=False)
        points = np.random.default_rng(1).normal(size=(2, 2))
        results: dict[int, dict] = {}

        def ask(index: int) -> None:
            results[index] = broker.query("d", points[index], kind="counts")

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(2)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # A 30s window would have blocked; the max_batch flush must not.
        assert time.perf_counter() - start < 5.0
        assert {results[i]["batch_size"] for i in results} == {2}
        broker.close()

    def test_batched_values_match_direct_execution(self, registry):
        entry = registry.get("d")
        broker = QueryBroker(registry, window_s=0.02, max_batch=16, cache=False)
        rng = np.random.default_rng(2)
        points = rng.normal(size=(8, 2))
        results: dict[int, object] = {}

        def ask(index: int) -> None:
            results[index] = broker.query("d", points[index], kind="counts")["values"][0]

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        broker.close()
        direct = execute_query(
            make_query(entry.dataset, points, kind="counts", k=entry.k),
            options=ExecutionOptions(cache=False),
        ).values
        assert [results[i] for i in range(8)] == direct

    def test_different_families_do_not_coalesce(self, registry):
        """Same point, different pins → different query families."""
        broker = QueryBroker(registry, window_s=0.05, max_batch=16, cache=False)
        point = np.zeros(2)
        results: dict[str, dict] = {}

        def ask(tag: str, pins) -> None:
            results[tag] = broker.query("d", point, kind="counts", pins=pins)

        dirty = registry.get("d").dataset.uncertain_rows()[0]
        threads = [
            threading.Thread(target=ask, args=("plain", None)),
            threading.Thread(target=ask, args=("pinned", {dirty: 0})),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["plain"]["batch_size"] == 1
        assert results["pinned"]["batch_size"] == 1
        assert broker.metrics()["batches_executed"] == 2
        broker.close()

    def test_per_request_mode_skips_batching(self, registry):
        broker = QueryBroker(registry, window_s=0.0, max_batch=16, cache=False)
        response = broker.query("d", np.zeros(2), kind="counts")
        assert response["batch_size"] == 1 and not response["cached"]
        assert broker.metrics()["coalesced_batches"] == 0
        broker.close()

    def test_matrix_request_executes_as_one_batch(self, registry):
        broker = QueryBroker(registry, window_s=0.05, max_batch=16, cache=False)
        points = np.random.default_rng(4).normal(size=(5, 2))
        response = broker.query("d", points, kind="counts")
        assert len(response["values"]) == 5
        assert response["batch_size"] == 5
        assert broker.metrics()["multi_point_requests"] == 1
        broker.close()

    def test_query_errors_propagate_to_the_caller(self, registry):
        broker = QueryBroker(registry, window_s=0.005, max_batch=8, cache=False)
        with pytest.raises(ValueError, match="topk"):
            broker.query("d", np.zeros(2), kind="check", flavor="topk", label=0)
        with pytest.raises(PlanError):
            broker.query("d", np.zeros(2), kind="counts", backend="nope")
        # The broker must remain serviceable after request errors.
        assert broker.query("d", np.zeros(2), kind="counts")["values"]
        assert broker.metrics()["inflight"] == 0
        broker.close()


# ---------------------------------------------------------------------------
# Caching and admission control
# ---------------------------------------------------------------------------


class TestCachingAndAdmission:
    def test_single_point_results_are_ttl_cached(self, registry):
        broker = QueryBroker(registry, window_s=0.0, max_batch=1, cache=True, ttl_s=60.0)
        point = np.zeros(2)
        first = broker.query("d", point, kind="counts")
        second = broker.query("d", point, kind="counts")
        assert not first["cached"] and second["cached"]
        assert second["values"] == first["values"]
        assert broker.metrics()["served_from_cache"] == 1
        broker.close()

    def test_matrix_results_are_ttl_cached(self, registry):
        broker = QueryBroker(registry, window_s=0.0, max_batch=1, cache=True)
        points = np.random.default_rng(5).normal(size=(3, 2))
        first = broker.query("d", points, kind="counts")
        second = broker.query("d", points, kind="counts")
        assert not first["cached"] and second["cached"]
        assert second["values"] == first["values"]
        broker.close()

    def test_admission_rejects_beyond_max_pending(self, registry):
        broker = QueryBroker(
            registry, window_s=0.4, max_batch=64, max_pending=1, cache=False
        )
        release: dict[str, object] = {}

        def slow_request() -> None:
            release["response"] = broker.query("d", np.zeros(2), kind="counts")

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.1)  # let the first request enter its batching window
        with pytest.raises(AdmissionError) as excinfo:
            broker.query("d", np.ones(2), kind="counts")
        assert excinfo.value.retry_after > 0
        assert broker.metrics()["rejected"] == 1
        thread.join()
        assert release["response"]["values"]  # the admitted request completed
        broker.close()

    def test_admission_also_covers_direct_dispatch(self, registry):
        """Matrix queries and window_s=0 brokers must shed load too, not
        just the micro-batched single-point path."""
        broker = QueryBroker(
            registry, window_s=0.4, max_batch=64, max_pending=1, cache=False
        )
        release: dict[str, object] = {}

        def slow_request() -> None:
            release["response"] = broker.query("d", np.zeros(2), kind="counts")

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.1)  # the single-point request occupies the one slot
        with pytest.raises(AdmissionError):
            broker.query("d", np.zeros((3, 2)), kind="counts")  # matrix path
        thread.join()
        broker.close()

    def test_close_flushes_pending_batches(self, registry):
        broker = QueryBroker(registry, window_s=30.0, max_batch=64, cache=False)
        result: dict[str, object] = {}

        def ask() -> None:
            result["response"] = broker.query("d", np.zeros(2), kind="counts")

        thread = threading.Thread(target=ask)
        thread.start()
        time.sleep(0.1)
        broker.close()  # must flush, not strand, the pending request
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["response"]["values"]

    def test_closed_broker_rejects_new_requests(self, registry):
        broker = QueryBroker(registry, window_s=0.01, max_batch=8, cache=False)
        broker.close()
        with pytest.raises(AdmissionError, match="shut down"):
            broker.query("d", np.zeros(2), kind="counts")
        with pytest.raises(AdmissionError, match="shut down"):
            broker.query("d", np.zeros((2, 2)), kind="counts")

    def test_invalid_window_rejected(self, registry):
        with pytest.raises(ValueError):
            QueryBroker(registry, window_s=-1.0)


class TestCloseRace:
    """close() vs in-flight _submit_single: nobody hangs, nothing leaks.

    A request that passes admission can reach the batch-insertion critical
    section after close() drained the pending map; without the re-check it
    would create a fresh batch whose future nothing ever resolves. The
    hammer drives that window hard: every submitter must terminate with
    either a real answer or a clear AdmissionError — never a stuck future.
    """

    @pytest.mark.parametrize("round_", range(4))
    def test_concurrent_close_never_strands_a_request(self, registry, round_):
        broker = QueryBroker(registry, window_s=30.0, max_batch=1024, cache=False)
        n_threads = 12
        start = threading.Barrier(n_threads + 1)
        outcomes: list[str] = []
        lock = threading.Lock()

        def submit(index: int) -> None:
            start.wait()
            try:
                response = broker.query(
                    "d", np.zeros(2), kind="counts", timeout=10.0
                )
                outcome = "answered" if response["values"] else "empty"
            except AdmissionError:
                outcome = "rejected"
            with lock:
                outcomes.append(outcome)

        threads = [
            threading.Thread(target=submit, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        time.sleep(0.001 * round_)  # vary where close() lands in the window
        broker.close()
        for thread in threads:
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "a submitter hung against close()"
        assert len(outcomes) == n_threads
        assert set(outcomes) <= {"answered", "rejected"}
        # The closed broker must hold no pending batch (no orphan timers).
        assert not broker._pending

    def test_post_close_insertion_window_fails_cleanly(self, registry, monkeypatch):
        """Deterministic replay of the race: admission passes, then close()
        lands before the insertion critical section runs."""
        broker = QueryBroker(registry, window_s=30.0, max_batch=64, cache=False)
        original = broker._family_key
        entered = threading.Event()
        proceed = threading.Event()

        def stalled_family_key(*args, **kwargs):
            entered.set()
            proceed.wait(timeout=10.0)
            return original(*args, **kwargs)

        monkeypatch.setattr(broker, "_family_key", stalled_family_key)
        failure: dict[str, object] = {}

        def submit() -> None:
            try:
                broker.query("d", np.zeros(2), kind="counts", timeout=10.0)
            except AdmissionError as exc:
                failure["error"] = exc

        thread = threading.Thread(target=submit)
        thread.start()
        assert entered.wait(timeout=5.0)
        monkeypatch.setattr(broker, "_family_key", original)
        broker.close()  # drains _pending while the submitter is stalled
        proceed.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert isinstance(failure.get("error"), AdmissionError)
        assert "enqueued" in str(failure["error"])
        assert not broker._pending
