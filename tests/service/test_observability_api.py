"""End-to-end observability: trace trees, /debug/traces, Prometheus, logs.

The acceptance path for PR 9: a query served by a two-executor gateway
with ``explain="trace"`` must come back with ONE span tree — HTTP root,
broker, planner route, gateway scatter, and per-executor partition child
spans — all sharing a trace id, all with non-negative durations.
"""

from __future__ import annotations

import io
import json
from urllib import error, request

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.obs import validate_prometheus
from repro.service import DatasetRegistry, ServiceClient, ServiceError, make_service


def small_dataset() -> IncompleteDataset:
    rng = np.random.default_rng(23)
    sets = [rng.normal(size=(m, 2)) for m in (2, 3, 1, 2, 3, 1, 2, 2)]
    return IncompleteDataset(sets, [0, 1, 0, 1, 1, 0, 1, 0])


def get_raw(server, path: str):
    """GET, returning (status, content_type, body bytes)."""
    try:
        with request.urlopen(server.url + path, timeout=10) as response:
            return response.status, response.headers, response.read()
    except error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


def walk(record: dict):
    yield record
    for child in record.get("children", ()):
        yield from walk(child)


def span_names(record: dict) -> set[str]:
    return {span["name"] for span in walk(record)}


def assert_tree_consistent(record: dict) -> None:
    trace_id = record["trace_id"]
    for span in walk(record):
        assert span["trace_id"] == trace_id, f"{span['name']} left the trace"
        assert span["duration_ms"] >= 0.0, f"{span['name']} ran backwards"
        assert span["status"] in ("ok", "error")
    # every child's parent_id is its parent's span_id
    for span in walk(record):
        for child in span.get("children", ()):
            assert child["parent_id"] == span["span_id"]


# ---------------------------------------------------------------------------
# Single-process service
# ---------------------------------------------------------------------------


@pytest.fixture()
def service():
    registry = DatasetRegistry()
    registry.register("d", small_dataset(), k=2)
    server = make_service(registry, window_s=0.005, max_batch=8)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


class TestExplainTrace:
    def test_query_embeds_one_consistent_tree(self, service):
        _, client = service
        response = client.query("d", point=[0.0, 0.0], explain="trace")
        trace = response["trace"]
        assert trace["name"] == "http.request"
        assert trace["attributes"]["path"] == "/query"
        assert_tree_consistent(trace)
        names = span_names(trace)
        assert {"http.request", "broker.query", "planner.route"} <= names
        # the HTTP root is still open while the response serializes
        assert trace.get("in_flight") is True

    def test_explain_true_has_no_trace_block(self, service):
        _, client = service
        response = client.query("d", point=[0.0, 0.0], explain=True)
        assert "explain" in response
        assert "trace" not in response

    def test_sql_explain_trace(self, service):
        server, client = service
        from repro.codd.codd_table import CoddTable, Null

        table = CoddTable(("a",), [(1,), (Null([1, 2]),)])
        response = client.sql(
            "SELECT a FROM t", codd_table=table, explain="trace"
        )
        trace = response["trace"]
        assert {"http.request", "broker.sql"} <= span_names(trace)
        assert_tree_consistent(trace)

    def test_batched_queries_link_to_the_batch_span(self, service):
        server, client = service
        # un-explained single points ride the micro-batch; their trace
        # adopts the detached broker.batch span's record
        response_trace = None
        for _ in range(3):
            client.query("d", point=[0.1, 0.1])
        # the batch span is detached, so it publishes its own root
        records = server.obs.tracer.buffer.list()
        batch_roots = [r for r in records if r["name"] == "broker.batch"]
        assert batch_roots, "no broker.batch root span published"
        assert batch_roots[-1]["attributes"]["n_points"] >= 1


class TestDebugTraces:
    def test_list_and_fetch_by_id(self, service):
        server, client = service
        client.query("d", point=[0.0, 0.0])
        traces = client.traces(limit=5)
        assert traces
        newest = traces[-1]
        fetched = client.traces(trace_id=newest["trace_id"])
        assert fetched["trace_id"] == newest["trace_id"]
        assert fetched["name"] == newest["name"]

    def test_unknown_trace_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.traces(trace_id="deadbeefdeadbeef")
        assert err.value.status == 404

    def test_trace_id_header_round_trips(self, service):
        server, _ = service
        status, headers, body = get_raw(server, "/healthz")
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert trace_id
        record = server.obs.tracer.buffer.get(trace_id)
        assert record is not None
        assert record["name"] == "http.request"

    def test_disabled_tracing_serves_empty_buffer(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        server = make_service(registry, window_s=0.0, trace=False)
        try:
            client = ServiceClient(server.url)
            client.query("d", point=[0.0, 0.0])
            assert client.traces() == []
            # explain="trace" degrades gracefully: no trace block
            response = client.query("d", point=[0.0, 0.0], explain="trace")
            assert "trace" not in response
            # metrics stay on
            assert client.metrics()["broker"]["requests"] == 2
        finally:
            server.close()


class TestPrometheus:
    def test_scrape_parses_and_validates(self, service):
        server, client = service
        client.query("d", point=[0.0, 0.0])
        status, headers, body = get_raw(server, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert validate_prometheus(text) > 0
        assert "repro_broker_requests_total" in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_registry_datasets" in text

    def test_client_prometheus_format(self, service):
        _, client = service
        text = client.metrics(format="prometheus")
        assert isinstance(text, str)
        validate_prometheus(text)

    def test_json_metrics_unaffected_by_format_param(self, service):
        _, client = service
        payload = client.metrics()
        assert isinstance(payload, dict)
        assert "obs" in payload


class TestLogs:
    def test_access_log_emits_one_line_per_request(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        server = make_service(registry, window_s=0.0, access_log=True)
        sink = io.StringIO()
        server.access_sink = sink
        try:
            client = ServiceClient(server.url)
            client.query("d", point=[0.0, 0.0])
            client.healthz()
        finally:
            server.close()
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        paths = [line["path"] for line in lines]
        assert "/query" in paths and "/healthz" in paths
        for line in lines:
            assert {"method", "path", "status", "duration_ms", "trace_id"} <= set(
                line
            )
            assert line["status"] == 200
            assert line["duration_ms"] >= 0.0

    def test_slow_query_log_fires_below_threshold_never(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        # slow_ms=0.000001 → everything is slow; every request logs a line
        server = make_service(registry, window_s=0.0, slow_ms=0.000001)
        sink = io.StringIO()
        server.obs.tracer.slow_sink = sink
        try:
            client = ServiceClient(server.url)
            client.query("d", point=[0.0, 0.0])
        finally:
            server.close()
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert lines, "no slow-query line emitted"
        assert all(line["slow_query"] is True for line in lines)
        assert any(line["name"] == "http.request" for line in lines)
        assert server.obs.tracer.stats()["slow_queries"] >= 1


class TestHealthz:
    def test_single_process_is_plain_ok(self, service):
        _, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert "executors" not in health


# ---------------------------------------------------------------------------
# Two-executor gateway: the acceptance-criterion trace
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def gateway_service():
    registry = DatasetRegistry()
    registry.register("gd", small_dataset(), k=2)
    server = make_service(registry, window_s=0.0, executors=2)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


class TestGatewayTraces:
    def test_distributed_query_renders_one_tree(self, gateway_service):
        server, client = gateway_service
        response = client.query("gd", point=[0.0, 0.0], explain="trace")
        trace = response["trace"]
        assert_tree_consistent(trace)
        names = span_names(trace)
        assert {
            "http.request",
            "broker.query",
            "planner.route",
            "gateway.execute",
            "gateway.scatter",
            "gateway.gather",
            "executor.partition",
        } <= names, f"missing spans; got {sorted(names)}"
        # executor spans carry their partition and worker identity
        executor_spans = [
            s for s in walk(trace) if s["name"] == "executor.partition"
        ]
        assert executor_spans
        pids = {s["attributes"]["pid"] for s in executor_spans}
        executors = {s["attributes"]["executor"] for s in executor_spans}
        assert len(executors) == 2, "both executors should contribute spans"
        assert len(pids) == 2
        scatter = next(s for s in walk(trace) if s["name"] == "gateway.scatter")
        assert scatter["attributes"]["partitions_scattered"] >= 2

    def test_healthz_reports_executors(self, gateway_service):
        _, client = gateway_service
        health = client.healthz()
        assert health["status"] == "ok"
        assert len(health["executors"]) == 2
        for executor in health["executors"]:
            assert executor["alive"] is True
            assert executor["pid"]
            assert executor["restarts"] >= 0
            age = executor["last_heartbeat_age_s"]
            assert age is None or age >= 0.0

    def test_dead_executor_degrades_healthz_to_503(self):
        registry = DatasetRegistry()
        registry.register("gd", small_dataset(), k=2)
        server = make_service(registry, window_s=0.0, executors=2)
        try:
            client = ServiceClient(server.url)
            client.wait_until_ready()
            gateway = server.broker.gateway
            # stop the auto-respawn monitor so the degraded window is stable
            gateway._monitor_stop.set()
            if gateway._monitor is not None:
                gateway._monitor.join(timeout=5.0)
            victim = gateway._handles[0].process
            victim.terminate()
            victim.join(timeout=5.0)
            status, _, body = get_raw(server, "/healthz")
            assert status == 503
            payload = json.loads(body.decode("utf-8"))
            assert payload["status"] == "degraded"
            alive = [e["alive"] for e in payload["executors"]]
            assert alive.count(False) == 1
        finally:
            server.close()
