"""PATCH /datasets/{name}: live writes, versioning, and cache hygiene.

Three layers are held to account here:

* the HTTP round trip — wire-encoded deltas and Codd fixes applied to
  registered entries, version/fingerprint echoes, structured errors;
* the broker — per-dataset result-cache purging on writes *and* on
  re-registration (the stale-fingerprint regression), patch metrics;
* concurrency — a hammer test interleaving PATCH writes with concurrent
  reads: every response must be consistent with exactly one serializable
  dataset version (counts bit-identical to a from-scratch recompute at
  the echoed version), and versions must be monotone.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.codd.codd_table import CoddTable, Null
from repro.codd.sql import parse_sql
from repro.codd.certain import certain_answers
from repro.core.dataset import IncompleteDataset
from repro.core.deltas import CellRepair, RowAppend, RowDelete, apply_delta_to_dataset
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service import DatasetRegistry, ServiceClient, ServiceError, make_service
from repro.service.broker import QueryBroker


def small_dataset() -> IncompleteDataset:
    rng = np.random.default_rng(11)
    sets = [rng.normal(size=(m, 2)) for m in (1, 3, 2, 2, 1, 3)]
    return IncompleteDataset(sets, [0, 1, 0, 1, 1, 0])


def small_codd_table() -> CoddTable:
    return CoddTable(
        ("name", "age"),
        [
            ("ada", Null([35, 36])),
            ("bob", 41),
            (Null(["eve", "mal"]), 29),
        ],
    )


@pytest.fixture
def service():
    registry = DatasetRegistry()
    registry.register("d", small_dataset(), k=2)
    registry.register_codd_table("t", small_codd_table())
    server = make_service(registry, window_s=0.0, max_batch=8)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


class TestDatasetPatchRoundTrip:
    def test_versions_and_counts_track_local_deltas(self, service):
        server, client = service
        local = small_dataset()
        assert client.dataset("d")["version"] == 1

        deltas = [
            CellRepair(1, 0),
            RowAppend(np.array([[0.5, 0.5], [1.5, 0.5]]), 1),
            RowDelete(0),
        ]
        result = client.patch("d", deltas=deltas)
        for delta in deltas:
            local = apply_delta_to_dataset(local, delta)
        assert result["version"] == 4  # one bump per delta
        assert [r["version"] for r in result["reports"]] == [2, 3, 4]
        assert result["fingerprint"] == local.fingerprint()
        assert result["n_rows"] == local.n_rows
        assert int(result["n_worlds"]) == local.n_worlds()

        # Every subsequent read echoes the version it was served at, and
        # the served counts are bit-identical to a local recompute.
        response = client.query("d", point=[0.0, 0.0], kind="counts")
        assert response["version"] == 4
        assert response["fingerprint"] == local.fingerprint()
        expected = execute_query(
            make_query(local, np.zeros((1, 2)), kind="counts", k=2),
            options=ExecutionOptions(cache=False),
        ).values
        assert response["values"] == expected

    def test_convenience_methods_apply_single_deltas(self, service):
        server, client = service
        before = client.dataset("d")["version"]
        dirty = server.registry.get("d").dataset.uncertain_rows()[0]
        result = client.repair_cell("d", dirty, 0)
        assert result["version"] == before + 1
        assert result["reports"][0]["op"] == "cell_repair"

    def test_repair_conflicting_with_clean_pin_is_rejected(self, service):
        server, client = service
        client.register_recipe("r", n_train=40, n_val=4, seed=0)
        entry = server.registry.get("r")
        row = entry.dataset.uncertain_rows()[0]
        truth = int(entry.gt_choice[row])
        client.clean_step("r", row=row)  # session pin via the oracle
        with pytest.raises(ServiceError) as excinfo:
            client.repair_cell("r", row, 1 - truth)
        assert excinfo.value.status == 400
        # The matching repair absorbs the pin instead: the row is physically
        # clean now, no longer a session fix.
        result = client.repair_cell("r", row, truth)
        assert result["reports"][0]["op"] == "cell_repair"
        next_dirty = server.registry.get("r").dataset.uncertain_rows()[0]
        checkpoint = client.clean_step("r", row=next_dirty)
        assert row not in checkpoint["fixed"]
        assert row not in server.registry.get("r").dataset.uncertain_rows()

    def test_patch_errors_are_structured(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.patch("nope", deltas=[CellRepair(0, 0)])
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.patch("t", deltas=[CellRepair(0, 0)])  # codd entry, CP deltas
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("PATCH", "/datasets/d", {})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "PATCH",
                "/datasets/d",
                {"deltas": [{"op": "warp_core_breach"}]},
            )
        assert excinfo.value.status == 400
        with pytest.raises(ValueError, match="exactly one"):
            client.patch("d")


class TestCoddPatchRoundTrip:
    def test_fix_cell_matches_local_with_cell_fixed(self, service):
        server, client = service
        local = small_codd_table()
        result = client.fix_cell("t", 0, 1, 36)
        local = local.with_cell_fixed(0, 1, 36)
        assert result["version"] == 2
        assert result["fingerprint"] == local.fingerprint()
        assert int(result["n_worlds"]) == local.n_worlds()

        query = "SELECT name FROM t WHERE age > 30"
        response = client.sql(query, mode="certain")
        assert response["versions"] == {"t": 2}
        assert response["results"]["certain"] == certain_answers(
            parse_sql(query), local, name="t"
        )

    def test_fix_errors_are_structured(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.fix_cell("t", 1, 1, 99)  # cell (1, 1) is not NULL
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.fix_cell("d", 0, 0, 1)  # CP dataset, codd fixes
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "PATCH", "/datasets/t", {"fixes": [{"row": 0, "column": 1}]}
            )
        assert excinfo.value.status == 400


class TestCacheHygiene:
    def test_patch_purges_cached_results_for_that_dataset(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        registry.register("other", small_dataset(), k=2)
        broker = QueryBroker(registry, window_s=0.0, max_batch=1, cache=True, ttl_s=60.0)
        point = np.zeros(2)
        broker.query("d", point, kind="counts")
        broker.query("other", point, kind="counts")
        populated = len(broker.cache)
        assert populated > 0
        broker.patch("d", deltas=[CellRepair(1, 0)])
        assert len(broker.cache) < populated  # "d" entries dropped
        fresh = broker.query("d", point, kind="counts")
        assert not fresh["cached"]
        assert fresh["version"] == 2
        # "other" was untouched: its cached result still serves.
        assert broker.query("other", point, kind="counts")["cached"]
        assert broker.metrics()["patch_requests"] == 1
        broker.close()

    def test_reregistration_purges_stale_cache_entries(self):
        """Replacing a dataset under the same name must not leave the old
        content's cached results pinned for the TTL (the regression:
        fingerprint-keyed entries were unreachable but kept alive)."""
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        broker = QueryBroker(registry, window_s=0.0, max_batch=1, cache=True, ttl_s=600.0)
        points = np.random.default_rng(7).normal(size=(4, 2))
        for point in points:
            broker.query("d", point, kind="counts")
        assert len(broker.cache) > 0

        replacement = small_dataset().restrict_row(1, 0)
        registry.register("d", replacement, k=2, replace=True)
        assert len(broker.cache) == 0
        response = broker.query("d", points[0], kind="counts")
        assert not response["cached"]
        assert response["fingerprint"] == replacement.fingerprint()
        broker.close()

    def test_remove_purges_cache_too(self):
        registry = DatasetRegistry()
        registry.register("d", small_dataset(), k=2)
        broker = QueryBroker(registry, window_s=0.0, max_batch=1, cache=True, ttl_s=600.0)
        broker.query("d", np.zeros(2), kind="counts")
        assert len(broker.cache) > 0
        registry.remove("d")
        assert len(broker.cache) == 0
        broker.close()


class TestPatchReadHammer:
    """Interleaved PATCH writes and reads: serializable versions, no torn
    tallies, monotone version numbers."""

    def test_every_read_is_consistent_with_its_echoed_version(self):
        dataset = small_dataset()
        registry = DatasetRegistry()
        registry.register("d", dataset, k=2)
        broker = QueryBroker(registry, window_s=0.0, max_batch=8, cache=False)
        points = np.random.default_rng(13).normal(size=(3, 2))

        # The writer's script, fixed up front so the dataset at every
        # version is known exactly: version 1 is the registered dataset,
        # version 1 + i is after delta i.
        deltas = [
            CellRepair(1, 0),
            RowAppend(np.array([[0.3, -0.2], [0.8, 0.1]]), 0),
            CellRepair(2, 1),
            RowDelete(0),
            RowAppend(np.array([[-0.5, 0.4]]), 1),
            CellRepair(3, 0),
            RowDelete(4),
            CellRepair(2, 0),
        ]
        at_version = [dataset]
        for delta in deltas:
            at_version.append(apply_delta_to_dataset(at_version[-1], delta))

        reads: dict[int, list[dict]] = {}
        errors: list[BaseException] = []
        done = threading.Event()

        def writer() -> None:
            try:
                for delta in deltas:
                    broker.patch("d", deltas=[delta])
            except BaseException as exc:  # pragma: no cover — surfaced below
                errors.append(exc)
            finally:
                done.set()

        def reader(slot: int) -> None:
            mine: list[dict] = []
            reads[slot] = mine
            try:
                while not done.is_set() or len(mine) < 4:
                    response = broker.query("d", points, kind="counts")
                    mine.append(
                        {"version": response["version"], "values": response["values"]}
                    )
                    if len(mine) >= 64:
                        break
            except BaseException as exc:  # pragma: no cover — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(slot,)) for slot in range(4)]
        write_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        write_thread.start()
        write_thread.join()
        for thread in threads:
            thread.join()
        broker.close()
        assert not errors, errors

        # Writes committed monotonically to the final version.
        assert registry.get("d").version == 1 + len(deltas)

        expected_cache: dict[int, list] = {}
        for slot, mine in reads.items():
            versions = [read["version"] for read in mine]
            # Versions are monotone per reader (each read starts after the
            # previous returned, and versions only ever increase).
            assert versions == sorted(versions), f"reader {slot}: {versions}"
            for read in mine:
                version = read["version"]
                assert 1 <= version <= 1 + len(deltas)
                if version not in expected_cache:
                    snapshot = at_version[version - 1]
                    expected_cache[version] = execute_query(
                        make_query(snapshot, points, kind="counts", k=2),
                        options=ExecutionOptions(cache=False),
                    ).values
                # Bit-identical to the recompute at the echoed version —
                # a torn read (new rows, old tallies) cannot pass this.
                assert read["values"] == expected_cache[version], (
                    f"reader {slot} tore at version {version}"
                )
        # The hammer must actually have observed concurrent versions.
        observed = {read["version"] for mine in reads.values() for read in mine}
        assert len(observed) >= 2, "hammer never overlapped a write"
