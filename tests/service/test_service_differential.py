"""Served CP answers must be bit-identical to in-process execution.

The service adds three lossy-looking layers on top of the planner — JSON
transport, micro-batch coalescing, and the TTL result cache — and this
harness holds all three to the repo's certification standard: for seeded
random queries covering every flavor × kind (datasets, pins, weights and
``k`` randomised like ``tests/core/test_backend_differential.py``), the
values that come back over HTTP must equal the values of a direct
:func:`~repro.core.planner.execute_query` call with ``==`` — exact big
ints, exact :class:`~fractions.Fraction`, no float laundering anywhere.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.dataset import IncompleteDataset
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.core.planner import ExecutionOptions, execute_query, make_query
from repro.service import DatasetRegistry, ServiceClient, make_service

#: Flavor cycles with the seed → full coverage in any 5-seed range.
_FLAVOR_CYCLE = ("binary", "multiclass", "weighted", "topk", "label_uncertainty")

SEEDS = list(range(10))


def _random_dataset(rng: np.random.Generator, n_labels: int) -> IncompleteDataset:
    n_rows = int(rng.integers(4, 8))
    sets = [rng.normal(size=(int(rng.integers(1, 4)), 2)) for _ in range(n_rows)]
    labels = [int(label) for label in rng.integers(0, n_labels, size=n_rows)]
    labels[0] = 0
    labels[1] = n_labels - 1
    return IncompleteDataset(sets, labels)


def random_case(seed: int) -> dict:
    """One seeded random service query: dataset + request parameters."""
    rng = np.random.default_rng(seed)
    flavor = _FLAVOR_CYCLE[seed % len(_FLAVOR_CYCLE)]
    n_labels = 2 if flavor in ("binary", "weighted") else int(rng.integers(2, 4))
    dataset = _random_dataset(rng, n_labels)
    k = int(rng.integers(1, min(4, dataset.n_rows) + 1))
    test_X = rng.normal(size=(int(rng.integers(1, 4)), 2))
    counts = dataset.candidate_counts()
    dirty = dataset.uncertain_rows()
    n_pins = int(rng.integers(0, len(dirty) + 1)) if dirty else 0
    chosen = rng.permutation(dirty)[:n_pins] if n_pins else []
    pins = {int(row): int(rng.integers(0, counts[int(row)])) for row in chosen}
    kind = "counts" if flavor == "topk" else str(
        rng.choice(["counts", "certain_label", "check"])
    )
    label = int(rng.integers(0, n_labels)) if kind == "check" else None

    weights = None
    if flavor == "weighted":
        weights = []
        for m in counts:
            raw = [Fraction(int(rng.integers(1, 6))) for _ in range(int(m))]
            total = sum(raw)
            weights.append([w / total for w in raw])
    if flavor == "label_uncertainty":
        flip_rows = [
            int(row)
            for row in rng.permutation(dataset.n_rows)[: int(rng.integers(1, 3))]
        ]
        dataset = LabelUncertainDataset.from_incomplete(dataset, flip_rows=flip_rows)

    return {
        "dataset": dataset,
        "test_X": test_X,
        "kind": kind,
        "flavor": flavor,
        "k": k,
        "pins": pins,
        "label": label,
        "weights": weights,
    }


@pytest.fixture(scope="module")
def service():
    server = make_service(DatasetRegistry(), window_s=0.005, max_batch=8)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


def _direct_values(case: dict) -> list:
    query = make_query(
        case["dataset"],
        case["test_X"],
        kind=case["kind"],
        flavor=case["flavor"],
        k=case["k"],
        pins=case["pins"],
        label=case["label"],
        weights=case["weights"],
    )
    return execute_query(query, options=ExecutionOptions(cache=False)).values


class TestServedQueriesAreBitIdentical:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matrix_path_matches_direct_execution(self, service, seed):
        """The multi-point (direct dispatch) path, exact across the wire."""
        server, client = service
        case = random_case(seed)
        name = f"diff-m{seed}"
        client.register_dataset(name, case["dataset"], k=case["k"])
        response = client.query(
            name,
            points=case["test_X"],
            kind=case["kind"],
            flavor=case["flavor"],
            k=case["k"],
            pins=case["pins"],
            label=case["label"],
            weights=case["weights"],
        )
        direct = _direct_values(case)
        description = f"seed={seed} flavor={case['flavor']} kind={case['kind']}"
        assert response["values"] == direct, f"served diverged: {description}"
        _assert_same_types(response["values"], direct)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_point_micro_batched_path_matches(self, service, seed):
        """The coalescing single-point path, point by point."""
        server, client = service
        case = random_case(seed)
        name = f"diff-s{seed}"
        client.register_dataset(name, case["dataset"], k=case["k"])
        direct = _direct_values(case)
        for index in range(case["test_X"].shape[0]):
            response = client.query(
                name,
                point=case["test_X"][index],
                kind=case["kind"],
                flavor=case["flavor"],
                k=case["k"],
                pins=case["pins"],
                label=case["label"],
                weights=case["weights"],
            )
            assert response["values"][0] == direct[index], (
                f"seed={seed} point={index} diverged on the single-point path"
            )

    def test_generator_covers_every_flavor_and_kind(self):
        flavors = {random_case(seed)["flavor"] for seed in SEEDS}
        kinds = {random_case(seed)["kind"] for seed in SEEDS}
        assert flavors == set(_FLAVOR_CYCLE)
        assert kinds == {"counts", "certain_label", "check"}

    def test_cached_replay_is_identical(self, service):
        """A TTL-cache hit must replay the first answer exactly."""
        server, client = service
        case = random_case(2)  # weighted → Fractions, the hardest round trip
        name = "diff-cache"
        client.register_dataset(name, case["dataset"], k=case["k"])
        kwargs = dict(
            points=case["test_X"], kind=case["kind"], flavor=case["flavor"],
            k=case["k"], pins=case["pins"], label=case["label"],
            weights=case["weights"],
        )
        first = client.query(name, **kwargs)
        second = client.query(name, **kwargs)
        assert second["cached"]
        assert second["values"] == first["values"]
        _assert_same_types(second["values"], first["values"])


def _assert_same_types(served: list, direct: list) -> None:
    """`==` is necessary but not sufficient: 1 == Fraction(1) == True. Make
    sure the wire decoded back to the same *types* the planner produced."""
    def walk(a, b):
        assert type(a) is type(b), f"type drift: {type(a).__name__} vs {type(b).__name__}"
        if isinstance(a, list):
            assert len(a) == len(b)
            for x, y in zip(a, b):
                walk(x, y)

    walk(served, direct)
