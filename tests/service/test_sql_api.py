"""The /sql endpoint: exact round trips, pinned grids, structured errors.

The acceptance bar is the wire one: a ``repro serve`` ``/sql`` round trip
must return the *same* :class:`~repro.codd.relation.Relation` as calling
:func:`repro.codd.certain.certain_answers` in process — floats, big ints,
strings and booleans included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codd.certain import certain_answers, possible_answers
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation
from repro.codd.sql import parse_sql
from repro.service import DatasetRegistry, ServiceClient, ServiceError, make_service
from repro.service.wire import (
    WireError,
    decode_codd_table,
    decode_relation,
    encode_codd_table,
    encode_relation,
)


def person_table() -> CoddTable:
    return CoddTable(
        ("name", "age"),
        [
            ("John", 32),
            ("Anna", 29),
            ("Kevin", Null([1, 2, 30])),
            ("Pi", 3.5),
            ("Huge", Null([2**60, 2**60 + 1])),
        ],
    )


@pytest.fixture(scope="module")
def service():
    registry = DatasetRegistry()
    registry.register_codd_table("person", person_table())
    server = make_service(registry)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


class TestWireCoddFormat:
    def test_codd_table_round_trip(self):
        table = person_table()
        decoded = decode_codd_table(encode_codd_table(table))
        assert decoded.schema == table.schema
        assert decoded.fingerprint() == table.fingerprint()

    def test_relation_round_trip_is_exact(self):
        relation = Relation(
            ("a", "b"),
            [(1, "x"), (2.5, "y"), (True, "z"), (2**70, "w"), (None, "n")],
        )
        decoded = decode_relation(encode_relation(relation))
        assert decoded == relation
        # Types survive, not just values-as-floats.
        kinds = {type(row[0]) for row in decoded.rows}
        assert {int, float, bool, type(None)} <= kinds

    def test_unencodable_cell_rejected(self):
        table = CoddTable(("a",), [(object(),)])
        with pytest.raises(WireError, match="cannot encode cell"):
            encode_codd_table(table)

    def test_malformed_payloads_rejected(self):
        with pytest.raises(WireError, match="schema"):
            decode_codd_table({"rows": []})
        with pytest.raises(WireError, match="NULL markers"):
            decode_codd_table({"schema": ["a"], "rows": [[{"nope": 1}]]})
        with pytest.raises(WireError, match="relation"):
            decode_relation([1, 2, 3])


class TestSqlRoundTrip:
    def test_round_trip_matches_in_process_certain_answers(self, service):
        server, client = service
        sql = "SELECT name FROM person WHERE age < 30"
        response = client.sql(sql, mode="both")
        query = parse_sql(sql)
        local_certain = certain_answers(query, person_table(), name="person")
        local_possible = possible_answers(query, person_table(), name="person")
        assert response["results"]["certain"] == local_certain
        assert response["results"]["possible"] == local_possible
        assert response["results"]["certain"].rows == {("Anna",), ("Pi",)}
        assert response["backends"]["certain"] == "vectorized"
        assert response["n_worlds"] == str(person_table().n_worlds())

    def test_big_integers_survive_the_sql_wire(self, service):
        server, client = service
        response = client.sql("SELECT age FROM person WHERE age > 1000")
        values = {row[0] for row in response["results"]["certain"].rows}
        assert values == set()  # Huge's age is uncertain between two values
        possible = client.sql("SELECT age FROM person WHERE age > 1000", mode="possible")
        values = {row[0] for row in possible["results"]["possible"].rows}
        assert values == {2**60, 2**60 + 1}
        assert all(isinstance(v, int) for v in values)

    def test_float_cells_survive_exactly(self, service):
        server, client = service
        response = client.sql("SELECT age FROM person WHERE age == 3.5")
        assert response["results"]["certain"].rows == {(3.5,)}

    def test_repeat_query_is_served_from_cache(self, service):
        server, client = service
        sql = "SELECT name FROM person WHERE age >= 29"
        first = client.sql(sql)
        again = client.sql(sql)
        assert again["cached"] is True
        assert again["results"] == first["results"]

    def test_inline_table_needs_no_registration(self, service):
        server, client = service
        table = CoddTable(("x",), [(1,), (Null([2, 3]),)])
        response = client.sql(
            "SELECT x FROM anything WHERE x >= 2", codd_table=table, mode="both"
        )
        assert response["results"]["certain"].rows == set()
        assert response["results"]["possible"].rows == {(2,), (3,)}

    def test_registered_grid_is_pinned_after_first_query(self, service):
        server, client = service
        entry = server.registry.get_codd("person")
        client.sql("SELECT name FROM person")
        assert entry.stacked is not None
        detail = client.dataset("person")
        assert detail["type"] == "codd" and detail["grid_pinned"] is True
        assert detail["n_queries"] >= 1

    def test_codd_tables_appear_in_dataset_listing(self, service):
        server, client = service
        rows = {row["name"]: row for row in client.datasets()}
        assert rows["person"]["type"] == "codd"
        assert rows["person"]["n_worlds"] == str(person_table().n_worlds())

    def test_metrics_count_sql_traffic(self, service):
        server, client = service
        client.sql("SELECT name FROM person")
        metrics = client.metrics()
        assert metrics["broker"]["sql_requests"] >= 1
        assert metrics["registry"]["n_codd_tables"] >= 1
        assert metrics["registry"]["n_sql_queries"] >= 1

    def test_codd_table_can_be_removed(self, service):
        server, client = service
        table = CoddTable(("q",), [(1,)])
        server.registry.register_codd_table("ephemeral", table)
        assert "ephemeral" in server.registry.codd_names()
        server.registry.remove_codd("ephemeral")
        assert "ephemeral" not in server.registry.codd_names()
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM ephemeral")
        assert excinfo.value.status == 404

    def test_register_codd_table_over_the_wire(self, service):
        server, client = service
        table = CoddTable(("v", "w"), [(1, "a"), (Null([2, 3]), "b")])
        created = client.register_codd_table("shipped", table)
        assert created["type"] == "codd"
        assert created["fingerprint"] == table.fingerprint()
        response = client.sql("SELECT w FROM shipped WHERE v == 2", mode="possible")
        assert response["results"]["possible"].rows == {("b",)}

    def test_forced_backend_is_honoured(self, service):
        server, client = service
        for backend in ("vectorized", "rowwise", "naive"):
            response = client.sql(
                "SELECT name FROM person WHERE age < 30", backend=backend
            )
            assert response["backends"]["certain"] == backend
            assert response["results"]["certain"].rows == {("Anna",), ("Pi",)}


class TestMultiTableSql:
    """JOIN / GROUP BY queries spanning registered tables, end to end.

    The acceptance bar from the planner refactor: a two-table join with
    aliases and a GROUP BY must come back over the wire bit-identical to
    the in-process engine, the response must explain its optimized plan,
    and a PATCH to *any* referenced table must purge the cached answer.
    """

    JOIN_SQL = (
        "SELECT c.name, o.amount FROM customers c "
        "JOIN orders o ON c.cid = o.cid WHERE o.amount > 4"
    )

    @pytest.fixture(scope="class")
    def join_tables(self, service):
        server, client = service
        customers = CoddTable(
            ("cid", "name"),
            [(1, "Ada"), (2, "Bob"), (3, Null(["Cy", "Cyd"]))],
        )
        orders = CoddTable(
            ("oid", "cid", "amount"),
            [(10, 1, 7), (11, 2, Null([3, 9])), (12, 1, 2)],
        )
        server.registry.register_codd_table("customers", customers, replace=True)
        server.registry.register_codd_table("orders", orders, replace=True)
        return {"customers": customers, "orders": orders}

    def _local(self, sql, database, mode):
        from repro.codd.engine import answer_query

        query = parse_sql(
            sql, schemas={name: t.schema for name, t in database.items()}
        )
        return answer_query(query, database, mode=mode).relation

    def test_join_round_trip_matches_in_process(self, service, join_tables):
        server, client = service
        response = client.sql(self.JOIN_SQL, mode="both")
        assert response["results"]["certain"] == self._local(
            self.JOIN_SQL, join_tables, "certain"
        )
        assert response["results"]["possible"] == self._local(
            self.JOIN_SQL, join_tables, "possible"
        )
        assert response["results"]["certain"].rows == {("Ada", 7)}
        assert response["results"]["possible"].rows == {("Ada", 7), ("Bob", 9)}
        assert set(response["tables"]) == {"customers", "orders"}
        assert set(response["versions"]) == {"customers", "orders"}

    def test_group_by_round_trip_matches_in_process(self, service, join_tables):
        server, client = service
        sql = "SELECT cid, COUNT(*) AS n, SUM(amount) AS total FROM orders GROUP BY cid"
        response = client.sql(sql, mode="both")
        for mode in ("certain", "possible"):
            assert response["results"][mode] == self._local(
                sql, {"orders": join_tables["orders"]}, mode
            )
        assert ((1, 2, 9)) in response["results"]["certain"].rows

    def test_response_explains_the_optimized_plan(self, service, join_tables):
        server, client = service
        response = client.sql(self.JOIN_SQL)
        explain = response["explain"]
        assert "Join" in explain["plan"] and "Scan customers" in explain["plan"]
        assert "push-select-below-join" in explain["rewrites"]
        ops = set()
        stack = [explain["tree"]]
        while stack:
            node = stack.pop()
            ops.add(node["op"])
            stack.extend(node.get("inputs", []))
            if "input" in node:
                stack.append(node["input"])
        assert {"join", "select", "project", "rename", "scan"} <= ops
        # The explain payload is cached with the answer.
        again = client.sql(self.JOIN_SQL)
        assert again["cached"] is True
        assert again["explain"] == explain

    def test_patch_to_any_referenced_table_purges_the_cache(self, service):
        server, client = service
        left = CoddTable(("k", "tag"), [(1, "x"), (2, Null(["y", "z"]))])
        right = CoddTable(("k", "amt"), [(1, Null([5, 6])), (2, 8)])
        server.registry.register_codd_table("purge_left", left, replace=True)
        server.registry.register_codd_table("purge_right", right, replace=True)
        sql = (
            "SELECT l.tag, r.amt FROM purge_left l "
            "JOIN purge_right r ON l.k = r.k"
        )
        first = client.sql(sql, mode="both")
        assert first["cached"] is False
        assert client.sql(sql, mode="both")["cached"] is True

        # Fixing a NULL in ONE referenced table must purge the shared entry.
        client.fix_cell("purge_right", 0, 1, 5)
        after_right = client.sql(sql, mode="both")
        assert after_right["cached"] is False
        assert after_right["results"]["certain"].rows >= {("x", 5)}
        assert after_right["versions"]["purge_right"] > first["versions"]["purge_right"]

        # Re-primed... and a PATCH to the *other* table purges it too.
        assert client.sql(sql, mode="both")["cached"] is True
        client.fix_cell("purge_left", 1, 1, "y")
        after_left = client.sql(sql, mode="both")
        assert after_left["cached"] is False
        assert after_left["results"]["certain"].rows == {("x", 5), ("y", 8)}

    def test_patch_leaves_unrelated_sql_entries_cached(self, service):
        server, client = service
        table = CoddTable(("q",), [(1,), (2,)])
        server.registry.register_codd_table("purge_bystander", table, replace=True)
        sql = "SELECT q FROM purge_bystander WHERE q > 0"
        client.sql(sql)
        other = CoddTable(("k",), [(Null([1, 2]),)])
        server.registry.register_codd_table("purge_other", other, replace=True)
        client.sql("SELECT k FROM purge_other")
        client.fix_cell("purge_other", 0, 0, 1)
        assert client.sql(sql)["cached"] is True

    def test_self_join_with_aliases(self, service, join_tables):
        server, client = service
        sql = (
            "SELECT a.name, b.name FROM customers a "
            "JOIN customers b ON a.cid = b.cid WHERE a.cid < 2"
        )
        response = client.sql(sql)
        assert response["results"]["certain"].rows == {("Ada", "Ada")}
        assert set(response["tables"]) == {"customers"}


class TestSqlErrorPaths:
    def test_bad_sql_is_400_sql_error(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELEKT * FROM person")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "sql_error"

    def test_unknown_table_is_404(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM missing")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_dataset"
        assert "missing" in excinfo.value.message

    def test_bad_mode_is_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM person", mode="definitely")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "malformed_payload"

    def test_unknown_backend_is_plan_error(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM person", backend="gpu")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "plan_error"

    def test_unknown_column_is_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT salary FROM person")
        assert excinfo.value.status == 400

    def test_duplicate_codd_registration_is_409(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.register_codd_table("person", person_table())
        assert excinfo.value.status == 409
        assert excinfo.value.code == "registry_conflict"

    def test_replace_overwrites(self, service):
        server, client = service
        client.register_codd_table("person", person_table(), replace=True)

    def test_malformed_inline_table_is_400(self, service):
        server, client = service
        import json
        from urllib import error, request

        req = request.Request(
            server.url + "/sql",
            data=json.dumps(
                {"query": "SELECT * FROM t", "codd_table": {"schema": ["a"]}}
            ).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(error.HTTPError) as excinfo:
            request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
