"""The /sql endpoint: exact round trips, pinned grids, structured errors.

The acceptance bar is the wire one: a ``repro serve`` ``/sql`` round trip
must return the *same* :class:`~repro.codd.relation.Relation` as calling
:func:`repro.codd.certain.certain_answers` in process — floats, big ints,
strings and booleans included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codd.certain import certain_answers, possible_answers
from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation
from repro.codd.sql import parse_sql
from repro.service import DatasetRegistry, ServiceClient, ServiceError, make_service
from repro.service.wire import (
    WireError,
    decode_codd_table,
    decode_relation,
    encode_codd_table,
    encode_relation,
)


def person_table() -> CoddTable:
    return CoddTable(
        ("name", "age"),
        [
            ("John", 32),
            ("Anna", 29),
            ("Kevin", Null([1, 2, 30])),
            ("Pi", 3.5),
            ("Huge", Null([2**60, 2**60 + 1])),
        ],
    )


@pytest.fixture(scope="module")
def service():
    registry = DatasetRegistry()
    registry.register_codd_table("person", person_table())
    server = make_service(registry)
    client = ServiceClient(server.url)
    client.wait_until_ready()
    yield server, client
    server.close()


class TestWireCoddFormat:
    def test_codd_table_round_trip(self):
        table = person_table()
        decoded = decode_codd_table(encode_codd_table(table))
        assert decoded.schema == table.schema
        assert decoded.fingerprint() == table.fingerprint()

    def test_relation_round_trip_is_exact(self):
        relation = Relation(
            ("a", "b"),
            [(1, "x"), (2.5, "y"), (True, "z"), (2**70, "w"), (None, "n")],
        )
        decoded = decode_relation(encode_relation(relation))
        assert decoded == relation
        # Types survive, not just values-as-floats.
        kinds = {type(row[0]) for row in decoded.rows}
        assert {int, float, bool, type(None)} <= kinds

    def test_unencodable_cell_rejected(self):
        table = CoddTable(("a",), [(object(),)])
        with pytest.raises(WireError, match="cannot encode cell"):
            encode_codd_table(table)

    def test_malformed_payloads_rejected(self):
        with pytest.raises(WireError, match="schema"):
            decode_codd_table({"rows": []})
        with pytest.raises(WireError, match="NULL markers"):
            decode_codd_table({"schema": ["a"], "rows": [[{"nope": 1}]]})
        with pytest.raises(WireError, match="relation"):
            decode_relation([1, 2, 3])


class TestSqlRoundTrip:
    def test_round_trip_matches_in_process_certain_answers(self, service):
        server, client = service
        sql = "SELECT name FROM person WHERE age < 30"
        response = client.sql(sql, mode="both")
        query = parse_sql(sql)
        local_certain = certain_answers(query, person_table(), name="person")
        local_possible = possible_answers(query, person_table(), name="person")
        assert response["results"]["certain"] == local_certain
        assert response["results"]["possible"] == local_possible
        assert response["results"]["certain"].rows == {("Anna",), ("Pi",)}
        assert response["backends"]["certain"] == "vectorized"
        assert response["n_worlds"] == str(person_table().n_worlds())

    def test_big_integers_survive_the_sql_wire(self, service):
        server, client = service
        response = client.sql("SELECT age FROM person WHERE age > 1000")
        values = {row[0] for row in response["results"]["certain"].rows}
        assert values == set()  # Huge's age is uncertain between two values
        possible = client.sql("SELECT age FROM person WHERE age > 1000", mode="possible")
        values = {row[0] for row in possible["results"]["possible"].rows}
        assert values == {2**60, 2**60 + 1}
        assert all(isinstance(v, int) for v in values)

    def test_float_cells_survive_exactly(self, service):
        server, client = service
        response = client.sql("SELECT age FROM person WHERE age == 3.5")
        assert response["results"]["certain"].rows == {(3.5,)}

    def test_repeat_query_is_served_from_cache(self, service):
        server, client = service
        sql = "SELECT name FROM person WHERE age >= 29"
        first = client.sql(sql)
        again = client.sql(sql)
        assert again["cached"] is True
        assert again["results"] == first["results"]

    def test_inline_table_needs_no_registration(self, service):
        server, client = service
        table = CoddTable(("x",), [(1,), (Null([2, 3]),)])
        response = client.sql(
            "SELECT x FROM anything WHERE x >= 2", codd_table=table, mode="both"
        )
        assert response["results"]["certain"].rows == set()
        assert response["results"]["possible"].rows == {(2,), (3,)}

    def test_registered_grid_is_pinned_after_first_query(self, service):
        server, client = service
        entry = server.registry.get_codd("person")
        client.sql("SELECT name FROM person")
        assert entry.stacked is not None
        detail = client.dataset("person")
        assert detail["type"] == "codd" and detail["grid_pinned"] is True
        assert detail["n_queries"] >= 1

    def test_codd_tables_appear_in_dataset_listing(self, service):
        server, client = service
        rows = {row["name"]: row for row in client.datasets()}
        assert rows["person"]["type"] == "codd"
        assert rows["person"]["n_worlds"] == str(person_table().n_worlds())

    def test_metrics_count_sql_traffic(self, service):
        server, client = service
        client.sql("SELECT name FROM person")
        metrics = client.metrics()
        assert metrics["broker"]["sql_requests"] >= 1
        assert metrics["registry"]["n_codd_tables"] >= 1
        assert metrics["registry"]["n_sql_queries"] >= 1

    def test_codd_table_can_be_removed(self, service):
        server, client = service
        table = CoddTable(("q",), [(1,)])
        server.registry.register_codd_table("ephemeral", table)
        assert "ephemeral" in server.registry.codd_names()
        server.registry.remove_codd("ephemeral")
        assert "ephemeral" not in server.registry.codd_names()
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM ephemeral")
        assert excinfo.value.status == 404

    def test_register_codd_table_over_the_wire(self, service):
        server, client = service
        table = CoddTable(("v", "w"), [(1, "a"), (Null([2, 3]), "b")])
        created = client.register_codd_table("shipped", table)
        assert created["type"] == "codd"
        assert created["fingerprint"] == table.fingerprint()
        response = client.sql("SELECT w FROM shipped WHERE v == 2", mode="possible")
        assert response["results"]["possible"].rows == {("b",)}

    def test_forced_backend_is_honoured(self, service):
        server, client = service
        for backend in ("vectorized", "rowwise", "naive"):
            response = client.sql(
                "SELECT name FROM person WHERE age < 30", backend=backend
            )
            assert response["backends"]["certain"] == backend
            assert response["results"]["certain"].rows == {("Anna",), ("Pi",)}


class TestSqlErrorPaths:
    def test_bad_sql_is_400_sql_error(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELEKT * FROM person")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "sql_error"

    def test_unknown_table_is_404(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM missing")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_dataset"
        assert "missing" in excinfo.value.message

    def test_bad_mode_is_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM person", mode="definitely")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "malformed_payload"

    def test_unknown_backend_is_plan_error(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT * FROM person", backend="gpu")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "plan_error"

    def test_unknown_column_is_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.sql("SELECT salary FROM person")
        assert excinfo.value.status == 400

    def test_duplicate_codd_registration_is_409(self, service):
        server, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.register_codd_table("person", person_table())
        assert excinfo.value.status == 409
        assert excinfo.value.code == "registry_conflict"

    def test_replace_overwrites(self, service):
        server, client = service
        client.register_codd_table("person", person_table(), replace=True)

    def test_malformed_inline_table_is_400(self, service):
        server, client = service
        import json
        from urllib import error, request

        req = request.Request(
            server.url + "/sql",
            data=json.dumps(
                {"query": "SELECT * FROM t", "codd_table": {"schema": ["a"]}}
            ).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(error.HTTPError) as excinfo:
            request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
