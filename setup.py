"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP-517 editable installs fail;
this shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use
the classic ``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
