"""A small stdlib client for the CP query service.

:class:`ServiceClient` wraps the JSON API of :mod:`repro.service.http`
behind the same vocabulary as the in-process planner: register a
dataset, ask for ``counts`` / ``certain_label`` / ``check`` values,
drive a cleaning session step by step. Exact types survive the wire —
counts come back as Python big ints and weighted probabilities as
:class:`~fractions.Fraction` (see :mod:`repro.service.wire`), so a
client-side consumer can compare served values to local
:func:`~repro.core.planner.execute_query` results with ``==`` and
expect bit-identical agreement (the differential harness does exactly
that).

Server-side failures raise :class:`ServiceError` carrying the HTTP
status and the structured ``code``/``message`` payload the server sent.
"""

from __future__ import annotations

import json
import time
from typing import Any
from urllib import error, request

import numpy as np

from repro.service.wire import (
    decode_relation,
    decode_values,
    encode_codd_table,
    encode_dataset,
    encode_delta,
    encode_fraction,
)

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """A structured error response from the service."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8970"`` (no trailing slash needed).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        req = request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with request.urlopen(req, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))["error"]
                raise ServiceError(
                    exc.code, detail.get("code", "error"), detail.get("message", "")
                ) from None
            except (json.JSONDecodeError, KeyError, UnicodeDecodeError):
                raise ServiceError(exc.code, "error", exc.reason) from None

    def _request_text(self, method: str, path: str) -> str:
        """Like :meth:`_request` but for non-JSON (text) responses."""
        req = request.Request(self.base_url + path, method=method)
        try:
            with request.urlopen(req, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except error.HTTPError as exc:
            raise ServiceError(exc.code, "error", exc.reason) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (or raise TimeoutError)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ServiceError, error.URLError, ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not ready after {timeout}s"
                    ) from None
                time.sleep(interval)

    def metrics(self, format: str | None = None) -> dict | str:
        """Fetch ``/metrics``. ``format="prometheus"`` returns the text
        exposition as a string; the default returns the JSON dict."""
        if format == "prometheus":
            return self._request_text("GET", "/metrics?format=prometheus")
        return self._request("GET", "/metrics")

    def traces(self, trace_id: str | None = None, limit: int | None = None):
        """Fetch buffered traces (``/debug/traces``) or one by id."""
        if trace_id is not None:
            return self._request("GET", f"/debug/traces/{trace_id}")
        path = "/debug/traces" if limit is None else f"/debug/traces?limit={int(limit)}"
        return self._request("GET", path)["traces"]

    def datasets(self) -> list[dict]:
        return self._request("GET", "/datasets")["datasets"]

    def dataset(self, name: str) -> dict:
        return self._request("GET", f"/datasets/{name}")

    def register_dataset(
        self,
        name: str,
        dataset,
        k: int = 3,
        kernel: str | None = None,
        val_X: np.ndarray | None = None,
        replace: bool = False,
    ) -> dict:
        """Ship a local dataset to the service under ``name``."""
        payload: dict[str, Any] = {
            "name": name,
            "dataset": encode_dataset(dataset),
            "k": k,
            "replace": replace,
        }
        if kernel is not None:
            payload["kernel"] = kernel
        if val_X is not None:
            payload["val_X"] = np.asarray(val_X, dtype=np.float64).tolist()
        return self._request("POST", "/datasets", payload)

    def register_codd_table(self, name: str, table, replace: bool = False) -> dict:
        """Ship a local :class:`~repro.codd.codd_table.CoddTable` to the
        service under ``name`` (so ``/sql`` queries can ``FROM name``)."""
        return self._request(
            "POST",
            "/datasets",
            {
                "name": name,
                "codd_table": encode_codd_table(table),
                "replace": replace,
            },
        )

    def sql(
        self,
        query: str,
        mode: str = "certain",
        backend: str = "auto",
        codd_table=None,
        explain: bool | str = False,
    ) -> dict:
        """Run a SQL query with certain-answer semantics over a registered
        Codd table (or an inline one) and decode the results.

        The response's ``results`` maps each served mode (``certain`` /
        ``possible``) to a :class:`~repro.codd.relation.Relation` that
        compares ``==`` to the in-process
        :func:`~repro.codd.certain.certain_answers` answer — the wire
        format is exact.
        """
        payload: dict[str, Any] = {"query": query, "mode": mode, "backend": backend}
        if explain:
            payload["explain"] = explain if explain == "trace" else True
        if codd_table is not None:
            payload["codd_table"] = encode_codd_table(codd_table)
        response = self._request("POST", "/sql", payload)
        response["results"] = {
            served_mode: decode_relation(encoded)
            for served_mode, encoded in response["results"].items()
        }
        return response

    def register_recipe(self, name: str, recipe: str = "supreme", **spec) -> dict:
        """Have the server build one of the paper's recipes (with oracle)."""
        return self._request(
            "POST", "/datasets", {"name": name, "recipe": {"recipe": recipe, **spec}}
        )

    def query(
        self,
        dataset: str,
        point=None,
        points=None,
        kind: str = "counts",
        flavor: str = "auto",
        k: int | None = None,
        pins=None,
        label: int | None = None,
        weights=None,
        algorithm: str = "auto",
        backend: str | None = None,
        with_cleaned: bool = False,
        prune: str = "auto",
        explain: bool | str = False,
    ) -> dict:
        """Run a CP query; the response's ``values`` are exact local types.

        Give ``point`` (one test point — rides the server's micro-batch)
        or ``points`` (a matrix, or the string ``"validation"`` for the
        dataset's registered validation set). ``weights`` may hold
        Fractions; they are shipped exactly. ``prune`` selects
        exactness-preserving candidate pruning server-side (``auto`` /
        ``on`` / ``off``; values are bit-identical either way), and
        ``explain=True`` asks for the response's ``explain`` block —
        chosen backend, plan reason, and pruning / early-termination
        counters for this execution. ``explain="trace"`` additionally
        embeds the request's span tree under ``"trace"``.
        """
        if (point is None) == (points is None):
            raise ValueError("provide exactly one of point= or points=")
        payload: dict[str, Any] = {
            "dataset": dataset,
            "kind": kind,
            "flavor": flavor,
            "algorithm": algorithm,
            "with_cleaned": with_cleaned,
            "prune": prune,
        }
        if explain:
            payload["explain"] = explain if explain == "trace" else True
        if point is not None:
            payload["point"] = np.asarray(point, dtype=np.float64).tolist()
        elif isinstance(points, str):
            payload["points"] = points
        else:
            payload["points"] = np.asarray(points, dtype=np.float64).tolist()
        if k is not None:
            payload["k"] = int(k)
        if pins:
            payload["pins"] = [[int(r), int(c)] for r, c in dict(pins).items()]
        if label is not None:
            payload["label"] = int(label)
        if weights is not None:
            payload["weights"] = [
                [encode_fraction(w) for w in row] for row in weights
            ]
        if backend is not None:
            payload["backend"] = backend
        response = self._request("POST", "/query", payload)
        response["values"] = decode_values(
            response["values"], response["kind"], response["flavor"]
        )
        return response

    def patch(self, name: str, deltas=None, fixes=None) -> dict:
        """Apply base-data writes to a registered dataset or Codd table.

        ``deltas`` is a list of :class:`~repro.core.deltas.CellRepair` /
        :class:`~repro.core.deltas.RowAppend` /
        :class:`~repro.core.deltas.RowDelete` objects (or already-encoded
        wire dicts) for a CP dataset; ``fixes`` is a list of ``(row,
        column, value)`` triples (or wire dicts) for a Codd table. The
        response carries the entry's new ``version`` and ``fingerprint``
        plus one report per applied write — and every subsequent query
        response echoes the version it was served at.
        """
        if (deltas is None) == (fixes is None):
            raise ValueError("provide exactly one of deltas= or fixes=")
        payload: dict[str, Any]
        if deltas is not None:
            payload = {
                "deltas": [
                    delta if isinstance(delta, dict) else encode_delta(delta)
                    for delta in deltas
                ]
            }
        else:
            payload = {
                "fixes": [
                    fix
                    if isinstance(fix, dict)
                    else {
                        "op": "fix_cell",
                        "row": int(fix[0]),
                        "column": int(fix[1]),
                        "value": fix[2],
                    }
                    for fix in fixes
                ]
            }
        return self._request("PATCH", f"/datasets/{name}", payload)

    def repair_cell(self, name: str, row: int, candidate: int) -> dict:
        """PATCH one :class:`~repro.core.deltas.CellRepair` onto a dataset."""
        return self.patch(
            name,
            deltas=[{"op": "cell_repair", "row": int(row), "candidate": int(candidate)}],
        )

    def append_row(self, name: str, candidates, label: int) -> dict:
        """PATCH one :class:`~repro.core.deltas.RowAppend` onto a dataset."""
        return self.patch(
            name,
            deltas=[
                {
                    "op": "row_append",
                    "candidates": np.asarray(candidates, dtype=np.float64).tolist(),
                    "label": int(label),
                }
            ],
        )

    def delete_row(self, name: str, row: int) -> dict:
        """PATCH one :class:`~repro.core.deltas.RowDelete` onto a dataset."""
        return self.patch(name, deltas=[{"op": "row_delete", "row": int(row)}])

    def fix_cell(self, name: str, row: int, column: int, value) -> dict:
        """PATCH one NULL-cell fix onto a registered Codd table."""
        return self.patch(name, fixes=[(row, column, value)])

    def clean_step(self, dataset: str, row: int, candidate: int | None = None) -> dict:
        """Apply one cleaning answer (``candidate=None`` asks the server's
        ground-truth oracle) and return the session checkpoint."""
        payload: dict[str, Any] = {"dataset": dataset, "row": int(row)}
        if candidate is not None:
            payload["candidate"] = int(candidate)
        checkpoint = self._request("POST", "/clean/step", payload)
        # JSON object keys are strings; restore the row -> candidate ints.
        checkpoint["fixed"] = {
            int(row): int(cand) for row, cand in checkpoint["fixed"].items()
        }
        return checkpoint
