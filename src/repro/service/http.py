"""The stdlib HTTP front end: a threaded JSON API over the broker.

``ThreadingHTTPServer`` (one thread per connection, stdlib-only — the
container bakes in no web framework and the service does not need one)
exposes the registry + broker behind these JSON endpoints:

==========================  ======  ==============================================
path                        method  what it does
==========================  ======  ==============================================
``/healthz``                GET     readiness: status + uptime + datasets, plus
                                    per-executor liveness in gateway mode — 503
                                    with ``status: "degraded"`` while any
                                    executor is down awaiting respawn
``/metrics``                GET     registry counters + broker/micro-batching/
                                    cache stats + the typed ``obs`` snapshot;
                                    ``?format=prometheus`` renders the text
                                    exposition instead
``/debug/traces``           GET     the tracer's ring buffer of recent span
                                    trees (``?limit=N``)
``/debug/traces/<id>``      GET     one span tree by trace id
``/datasets``               GET     list registered datasets and Codd tables
                                    (``POST`` registers one: a recipe build, a
                                    wire-encoded dataset or ``codd_table``)
``/datasets/<name>``        GET     one dataset's (or Codd table's) description
``/datasets/<name>``        PATCH   base-data deltas: cell repairs / row appends
                                    / row deletes on a CP dataset (``deltas``)
                                    or single-cell fixes on a Codd table
                                    (``fixes``); bumps the entry version,
                                    maintained in O(Δ)
``/query``                  POST    a CP query — single point (micro-batched) or
                                    matrix; ``prune`` selects certificate
                                    pruning, ``explain`` adds plan + pruning
                                    telemetry, ``explain="trace"`` embeds the
                                    request's span tree
``/sql``                    POST    a SQL query over a registered (or inline)
                                    Codd table with certain/possible-answer
                                    semantics (``explain="trace"`` as above)
``/clean/step``             POST    one cleaning answer; returns the checkpoint
==========================  ======  ==============================================

Every error is a structured JSON payload ``{"error": {"code", "message"}}``
with the right status class: malformed JSON and invalid queries are 400,
an unknown dataset is 404, a duplicate registration is 409, admission
rejection is 429 with a ``Retry-After`` header, and anything unexpected
is a 500 that never leaks a traceback to the client.

Every request runs inside an ``http.request`` root span (the head of the
trace tree the lower layers grow), is timed into per-route latency
histograms, echoes its ``X-Trace-Id`` header, and — with
``access_log=True`` (``repro serve --access-log``) — emits one JSON
access-log line to stderr. Root spans slower than ``slow_ms`` land in
the slow-query log (see :class:`repro.obs.Tracer`).

Start a server with :func:`make_service` (ephemeral port, background
thread — what the tests and the CI smoke job use) or :func:`serve`
(blocking — what ``repro serve`` calls).
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.codd.engine import CoddPlanError
from repro.codd.sql import SqlError
from repro.core.planner import PlanError
from repro.obs import Observability
from repro.obs.tracing import trace_span
from repro.service.broker import AdmissionError, QueryBroker
from repro.service.registry import (
    DatasetRegistry,
    DuplicateDatasetError,
    RegistryError,
    UnknownDatasetError,
)
from repro.service.wire import (
    WireError,
    decode_codd_fixes,
    decode_codd_table,
    decode_dataset,
    decode_deltas,
    decode_matrix,
    decode_pins,
    decode_weights,
    encode_values,
)

__all__ = ["ServiceServer", "make_service", "serve"]


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server plus the service state its handlers operate on."""

    daemon_threads = True  # connection threads must not block shutdown
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients (the whole point of micro-batching) would see kernel-level
    # connection resets before admission control ever got a say. Admission
    # decisions belong to the broker (429 + Retry-After), not the backlog.
    request_queue_size = 128

    def __init__(
        self,
        address,
        registry: DatasetRegistry,
        broker: QueryBroker,
        obs: Observability | None = None,
        access_log: bool = False,
        access_sink=None,
    ):
        super().__init__(address, _Handler)
        self.registry = registry
        self.broker = broker
        self.obs = obs if obs is not None else broker.obs
        self.access_log = bool(access_log)
        self.access_sink = access_sink  # None → sys.stderr at emit time
        self.started = time.monotonic()
        self._accepting = False  # True once serve_forever is (about to be) live

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving, flush pending micro-batches, release the socket.

        Safe whether or not the accept loop ever ran: ``shutdown()`` waits
        on an event only ``serve_forever()`` sets, so it is skipped when
        the loop was never started (``make_service(..., start=False)``).
        """
        if self._accepting:
            self._accepting = False
            self.shutdown()
        self.broker.close()
        self.server_close()


def make_service(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    start: bool = True,
    executors: int = 0,
    partitions_per_executor: int = 2,
    executor_timeout_s: float = 30.0,
    trace: bool = True,
    trace_buffer: int = 256,
    slow_ms: float | None = None,
    access_log: bool = False,
    obs: Observability | None = None,
    **broker_kwargs,
) -> ServiceServer:
    """Build a :class:`ServiceServer` (port ``0`` = ephemeral).

    With ``start=True`` (default) the accept loop runs in a daemon
    thread and the call returns immediately — the pattern the tests, the
    examples and the CI smoke job share. ``broker_kwargs`` go to
    :class:`~repro.service.broker.QueryBroker` (``window_s``,
    ``max_batch``, ``max_pending``, ``backend``, ``n_jobs``, ``ttl_s``...).

    ``executors > 0`` selects the partitioned multi-process topology: a
    :class:`~repro.service.gateway.Gateway` with that many executor worker
    processes is spawned and handed to the broker, which scatter-gathers
    CP queries across them (bit-identical answers, automatic respawn of
    dead executors, transparent local fallback). ``0`` (default) is the
    classic single-process service.

    One :class:`~repro.obs.Observability` bundle is created here (unless
    ``obs`` hands one in) and shared by every layer — registry, broker,
    gateway, and HTTP server all report into the same metrics registry
    and tracer. ``trace=False`` disables span collection (metrics stay
    on), ``slow_ms`` arms the slow-query log, ``access_log`` emits one
    JSON line per request to stderr.
    """
    registry = registry if registry is not None else DatasetRegistry()
    if obs is None:
        obs = Observability(
            enabled=trace,
            trace_buffer_size=trace_buffer,
            slow_s=None if slow_ms is None else slow_ms / 1000.0,
        )
    registry.attach_observability(obs)
    gateway = None
    if executors > 0:
        from repro.service.gateway import Gateway

        gateway = Gateway(
            executors,
            partitions_per_executor=partitions_per_executor,
            timeout_s=executor_timeout_s,
            obs=obs,
        )
        broker_kwargs["gateway"] = gateway
    # Until the broker owns the gateway (and the server owns the broker),
    # a constructor failure must not leak executor processes or the broker's
    # timers — close whatever was already built before re-raising.
    try:
        broker = QueryBroker(registry, obs=obs, **broker_kwargs)
    except BaseException:
        if gateway is not None:
            gateway.close()
        raise
    try:
        server = ServiceServer(
            (host, port), registry, broker, obs=obs, access_log=access_log
        )
    except BaseException:
        broker.close()  # also shuts down the gateway it owns
        raise
    if start:
        server._accepting = True
        thread = threading.Thread(
            target=server.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
    return server


def serve(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8970,
    **kwargs,
) -> None:
    """Run the service in the foreground until interrupted (``repro serve``).

    SIGINT *and* SIGTERM drain before exiting: both are routed into the
    ``KeyboardInterrupt`` path, whose ``finally`` runs
    :meth:`ServiceServer.close` — flushing every pending micro-batch (each
    in-flight future resolves or fails cleanly, no connection resets) and
    shutting down gateway executors, in single- and multi-process modes
    alike. The handlers raise instead of calling ``shutdown()`` directly
    because ``shutdown()`` deadlocks when invoked from the thread running
    ``serve_forever()`` — which is exactly where a signal handler runs.
    """
    server = make_service(registry, host=host, port=port, start=False, **kwargs)
    # flush=True: with stdout piped (CI smoke, subprocess tests) the listen
    # line must escape the block buffer before serve_forever() parks.
    print(f"repro service listening on {server.url}", flush=True)
    print(f"datasets registered: {server.registry.names() or '(none)'}", flush=True)

    def _graceful(signum, frame):
        raise KeyboardInterrupt

    installed: list[tuple[int, object]] = []
    try:
        # Only the main thread may install handlers; embedded callers
        # (tests driving serve() from a worker thread) simply keep the
        # KeyboardInterrupt-only path.
        for signum in (signal.SIGINT, signal.SIGTERM):
            installed.append((signum, signal.signal(signum, _graceful)))
    except ValueError:
        pass
    server._accepting = True
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError):
                pass
        server._accepting = False  # the loop already exited; skip shutdown()
        server.close()
        print("repro service drained and stopped", flush=True)


# ---------------------------------------------------------------------------
# Request handling
# ---------------------------------------------------------------------------

class _NotFound(Exception):
    """Internal: an unrouted path (mapped to a structured 404)."""


#: Exception → (HTTP status, error code). Order matters: subclasses first.
_ERROR_MAP: tuple[tuple[type[BaseException], int, str], ...] = (
    (AdmissionError, 429, "overloaded"),
    (_NotFound, 404, "not_found"),
    (UnknownDatasetError, 404, "unknown_dataset"),
    (DuplicateDatasetError, 409, "registry_conflict"),
    (RegistryError, 400, "invalid_request"),
    (WireError, 400, "malformed_payload"),
    (SqlError, 400, "sql_error"),
    ((PlanError, CoddPlanError), 400, "plan_error"),
    (TimeoutError, 504, "timeout"),
    ((ValueError, TypeError, IndexError, KeyError), 400, "invalid_query"),
)


#: Content type of the Prometheus text exposition format we emit.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _RawResponse:
    """A handler result that bypasses JSON encoding (Prometheus text)."""

    __slots__ = ("status", "body", "content_type")

    def __init__(self, status: int, body: str, content_type: str) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type


#: Known route templates, for bounded-cardinality metric labels.
_ROUTE_TEMPLATES = (
    "/healthz",
    "/metrics",
    "/debug/traces",
    "/datasets",
    "/query",
    "/sql",
    "/clean/step",
)


def _route_label(path: str) -> str:
    """Collapse a concrete path to its route template.

    Metric labels must stay bounded; raw paths embed dataset names and
    trace ids, which would mint one histogram per name.
    """
    if path in _ROUTE_TEMPLATES:
        return path
    if path.startswith("/debug/traces/"):
        return "/debug/traces/:id"
    if path.startswith("/datasets/"):
        return "/datasets/:name"
    return ":unrouted"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceServer  # narrowed for type checkers

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # default http.server chatter stays off; --access-log is structured

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_trace_id", None):
            self.send_header("X-Trace-Id", self._trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise WireError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        server = self.server
        path = urlparse(self.path).path.rstrip("/") or "/"
        route = _route_label(path)
        self._last_status = 0
        self._trace_id = None
        started = time.perf_counter()
        # The root span of the request's trace tree: broker, planner,
        # gateway and executor spans all hang off it via thread-local
        # propagation (+ record adoption across threads and processes).
        with trace_span(
            "http.request",
            tracer=server.obs.tracer,
            method=self.command,
            path=path,
        ) as span:
            self._trace_id = span.trace_id
            status, body, content_type, headers = self._evaluate(handler)
            span.set(status=status)
        # The span closes (publishing the finished trace to the ring
        # buffer) before the response bytes leave: a client that reads
        # its answer and immediately asks /debug/traces finds its trace.
        self._send_bytes(status, body, content_type, headers)
        duration_s = time.perf_counter() - started
        metrics = server.obs.metrics
        metrics.counter(
            "http_requests_total", route=route, status=str(status)
        ).inc()
        metrics.histogram(
            "http_request_seconds",
            help="request handling latency by route",
            route=route,
        ).observe(duration_s)
        if server.access_log:
            self._emit_access_line(path, duration_s)

    def _emit_access_line(self, path: str, duration_s: float) -> None:
        sink = self.server.access_sink
        line = json.dumps(
            {
                "method": self.command,
                "path": path,
                "status": self._last_status,
                "duration_ms": round(duration_s * 1000.0, 3),
                "trace_id": self._trace_id,
            },
            sort_keys=True,
        )
        try:
            print(line, file=sink if sink is not None else sys.stderr, flush=True)
        except (OSError, ValueError):
            pass  # a closed sink must never take down request handling

    def _evaluate(self, handler) -> tuple[int, bytes, str, dict | None]:
        """Run one route handler to a fully rendered response.

        Returns ``(status, body bytes, content type, extra headers)``
        without touching the socket — ``_dispatch`` sends after the
        request's root span has closed.
        """
        try:
            result = handler()
            if isinstance(result, _RawResponse):
                return (
                    result.status,
                    result.body.encode("utf-8"),
                    result.content_type,
                    None,
                )
            status, payload = result
            return status, json.dumps(payload).encode("utf-8"), "application/json", None
        except BaseException as exc:  # noqa: BLE001 — mapped to structured errors
            for exc_types, status, code in _ERROR_MAP:
                if isinstance(exc, exc_types):
                    headers = (
                        {"Retry-After": f"{exc.retry_after:.3f}"}
                        if isinstance(exc, AdmissionError)
                        else None
                    )
                    message = str(exc) if not isinstance(exc, KeyError) else (
                        str(exc) if isinstance(exc, UnknownDatasetError)
                        else f"missing field {exc.args[0]!r}"
                    )
                    return self._error_response(status, code, message, headers)
            return self._error_response(
                500, "internal_error", f"{type(exc).__name__} (see server logs)"
            )

    @staticmethod
    def _error_response(
        status: int, code: str, message: str, headers: dict | None = None
    ) -> tuple[int, bytes, str, dict | None]:
        body = json.dumps({"error": {"code": code, "message": message}})
        return status, body.encode("utf-8"), "application/json", headers

    # -- routes --------------------------------------------------------
    def _not_found(self, path: str):
        raise _NotFound(f"no route for {self.command} {path}")

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = urlparse(self.path).path.rstrip("/") or "/"
        if path == "/healthz":
            self._dispatch(self._get_healthz)
        elif path == "/metrics":
            self._dispatch(self._get_metrics)
        elif path == "/debug/traces":
            self._dispatch(self._get_traces)
        elif path.startswith("/debug/traces/"):
            trace_id = path[len("/debug/traces/") :]
            self._dispatch(lambda: self._get_trace(trace_id))
        elif path == "/datasets":
            self._dispatch(self._get_datasets)
        elif path.startswith("/datasets/"):
            name = path[len("/datasets/") :]
            self._dispatch(lambda: self._get_dataset(name))
        else:
            self._dispatch(lambda: self._not_found(path))

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = urlparse(self.path).path.rstrip("/")
        if path == "/datasets":
            self._dispatch(self._post_datasets)
        elif path == "/query":
            self._dispatch(self._post_query)
        elif path == "/sql":
            self._dispatch(self._post_sql)
        elif path == "/clean/step":
            self._dispatch(self._post_clean_step)
        else:
            self._dispatch(lambda: self._not_found(path))

    def do_PATCH(self) -> None:  # noqa: N802 — http.server API
        path = urlparse(self.path).path.rstrip("/")
        if path.startswith("/datasets/"):
            name = path[len("/datasets/") :]
            self._dispatch(lambda: self._patch_dataset(name))
        else:
            self._dispatch(lambda: self._not_found(path))

    # -- GET bodies ----------------------------------------------------
    def _get_healthz(self):
        body = {
            "status": "ok",
            "uptime_s": time.monotonic() - self.server.started,
            "datasets": self.server.registry.names(),
        }
        gateway = getattr(self.server.broker, "gateway", None)
        if gateway is not None:
            health = gateway.health()
            body["status"] = health["status"]
            body["executors"] = health["executors"]
            if health["status"] != "ok":
                return 503, body
        return 200, body

    def _get_metrics(self):
        query = parse_qs(urlparse(self.path).query)
        if query.get("format", [""])[-1] == "prometheus":
            text = self.server.obs.metrics.render_prometheus()
            return _RawResponse(200, text, _PROMETHEUS_CONTENT_TYPE)
        return 200, {
            "uptime_s": time.monotonic() - self.server.started,
            "registry": dict(self.server.registry.stats()),
            "broker": self.server.broker.metrics(),
            "obs": self.server.obs.snapshot(),
        }

    def _get_traces(self):
        query = parse_qs(urlparse(self.path).query)
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"][-1])
            except ValueError:
                raise WireError("'limit' must be an integer") from None
        return 200, {"traces": self.server.obs.tracer.buffer.list(limit=limit)}

    def _get_trace(self, trace_id: str):
        record = self.server.obs.tracer.buffer.get(trace_id)
        if record is None:
            raise _NotFound(f"no buffered trace {trace_id!r}")
        return 200, record

    def _get_datasets(self):
        return 200, {"datasets": self.server.registry.describe_all()}

    def _get_dataset(self, name: str):
        registry = self.server.registry
        try:
            return 200, registry.get(name).describe()
        except UnknownDatasetError:
            return 200, registry.get_codd(name).describe()

    # -- POST bodies ---------------------------------------------------
    def _post_datasets(self):
        payload = self._read_json()
        name = payload["name"]
        replace = bool(payload.get("replace", False))
        if "codd_table" in payload:
            entry = self.server.registry.register_codd_table(
                name,
                decode_codd_table(payload["codd_table"]),
                replace=replace,
            )
            return 201, entry.describe()
        if "recipe" in payload:
            spec = payload["recipe"]
            if isinstance(spec, str):
                spec = {"recipe": spec}
            if not isinstance(spec, dict):
                raise WireError("'recipe' must be a recipe name or an object")
            entry = self.server.registry.register_recipe(
                name,
                recipe=spec.get("recipe", "supreme"),
                n_train=int(spec.get("n_train", 100)),
                n_val=int(spec.get("n_val", 24)),
                missing_rate=spec.get("missing_rate"),
                k=int(spec.get("k", 3)),
                seed=int(spec.get("seed", 0)),
                # HTTP-registered entries run with the same execution
                # defaults the operator configured for the server.
                backend=self.server.broker.backend,
                n_jobs=self.server.broker.n_jobs,
                replace=replace,
            )
        else:
            dataset = decode_dataset(payload["dataset"])
            val_X = payload.get("val_X")
            entry = self.server.registry.register(
                name,
                dataset,
                k=int(payload.get("k", 3)),
                kernel=payload.get("kernel"),
                val_X=None if val_X is None else decode_matrix(val_X, "val_X"),
                backend=self.server.broker.backend,
                n_jobs=self.server.broker.n_jobs,
                replace=replace,
            )
        return 201, entry.describe()

    def _post_query(self):
        payload = self._read_json()
        name = payload["dataset"]
        if "point" in payload and "points" in payload:
            raise WireError("send either 'point' or 'points', not both")
        if "point" in payload:
            matrix = decode_matrix(payload["point"], "point")
            if matrix.shape[0] != 1:
                raise WireError(
                    f"'point' must be a single test point, got {matrix.shape[0]} "
                    "rows; send a matrix via 'points' instead"
                )
            points = matrix[0]
        elif "points" in payload:
            spec = payload["points"]
            if spec == "validation":
                entry = self.server.registry.get(name)
                if entry.val_X is None:
                    raise WireError(
                        f"dataset {name!r} has no registered validation set"
                    )
                entry.ensure_warm()  # pin the prepared state this query will reuse
                points = entry.val_X
            else:
                points = decode_matrix(spec, "points")
        else:
            raise WireError("query needs a 'point' or 'points' field")
        explain = payload.get("explain", False)
        if explain != "trace":
            explain = bool(explain)
        response = self.server.broker.query(
            name,
            points,
            kind=payload.get("kind", "counts"),
            flavor=payload.get("flavor", "auto"),
            k=payload.get("k"),
            pins=decode_pins(payload.get("pins")),
            label=payload.get("label"),
            weights=decode_weights(payload.get("weights")),
            algorithm=payload.get("algorithm", "auto"),
            backend=payload.get("backend"),
            with_cleaned=bool(payload.get("with_cleaned", False)),
            prune=payload.get("prune", "auto"),
            explain=explain,
        )
        response["values"] = encode_values(response["values"])
        return 200, response

    def _post_sql(self):
        payload = self._read_json()
        inline = payload.get("codd_table")
        explain = payload.get("explain", False)
        if explain != "trace":
            explain = bool(explain)
        response = self.server.broker.sql(
            payload["query"],
            mode=payload.get("mode", "certain"),
            backend=payload.get("backend", "auto"),
            codd_table=None if inline is None else decode_codd_table(inline),
            explain=explain,
        )
        return 200, response

    def _patch_dataset(self, name: str):
        payload = self._read_json()
        if "deltas" in payload and "fixes" in payload:
            raise WireError("send either 'deltas' or 'fixes', not both")
        if "deltas" in payload:
            result = self.server.broker.patch(
                name, deltas=decode_deltas(payload["deltas"])
            )
        elif "fixes" in payload:
            result = self.server.broker.patch(
                name, fixes=decode_codd_fixes(payload["fixes"])
            )
        else:
            raise WireError(
                "PATCH body needs 'deltas' (CP dataset) or 'fixes' (codd table)"
            )
        return 200, result

    def _post_clean_step(self):
        payload = self._read_json()
        entry = self.server.registry.get(payload["dataset"])
        candidate = payload.get("candidate")
        checkpoint = entry.clean_step(
            int(payload["row"]),
            None if candidate is None else int(candidate),
        )
        return 200, checkpoint
