"""The JSON wire format shared by the HTTP server and the Python client.

A certification system cannot tolerate lossy transport: Q2 counts are
arbitrary-precision integers (``M^N`` worlds) and the weighted flavor's
probabilities are exact :class:`~fractions.Fraction` values, neither of
which survives a trip through JSON numbers (doubles). This module defines
the one encoding both ends agree on:

* **Integers** ride as JSON integers — Python's ``json`` round-trips
  big ints exactly, so world counts keep every digit.
* **Fractions** ride as ``"p/q"`` strings (``Fraction`` reprs are
  canonical, so equality is preserved bit for bit); the client restores
  them with :func:`decode_fraction`.
* **Datasets** ride as their full candidate structure
  (:func:`encode_dataset` / :func:`decode_dataset`), covering both
  :class:`~repro.core.dataset.IncompleteDataset` and
  :class:`~repro.core.label_uncertainty.LabelUncertainDataset` — this is
  what lets the differential harness replay its random queries over the
  wire and demand bit-identical answers.
* **Codd tables** ride with NULL variables as ``{"null": [domain...]}``
  markers (:func:`encode_codd_table` / :func:`decode_codd_table`) and
  certain/possible **relations** as schema + repr-sorted rows
  (:func:`encode_relation` / :func:`decode_relation`) — ints, strings and
  booleans verbatim, floats exactly via Python's shortest-``repr`` JSON
  round trip, so a ``/sql`` response compares ``==`` to the in-process
  :func:`~repro.codd.certain.certain_answers` relation.

``tests/service/test_service_differential.py`` holds the round-trip to
exactly that standard.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any

import numpy as np

from repro.codd.codd_table import CoddTable, Null
from repro.codd.relation import Relation
from repro.core.dataset import IncompleteDataset
from repro.core.deltas import CellRepair, Delta, RowAppend, RowDelete
from repro.core.label_uncertainty import LabelUncertainDataset

__all__ = [
    "WireError",
    "encode_fraction",
    "decode_fraction",
    "encode_values",
    "decode_values",
    "encode_dataset",
    "decode_dataset",
    "encode_codd_table",
    "decode_codd_table",
    "encode_relation",
    "decode_relation",
    "decode_pins",
    "decode_weights",
    "decode_matrix",
    "encode_delta",
    "decode_delta",
    "decode_deltas",
    "decode_codd_fixes",
]


class WireError(ValueError):
    """A payload does not follow the wire format (surfaced as HTTP 400)."""


# ---------------------------------------------------------------------------
# Exact scalars
# ---------------------------------------------------------------------------


def encode_fraction(value: Fraction) -> str:
    """``Fraction(3, 7)`` → ``"3/7"`` (canonical, lowest terms)."""
    return f"{value.numerator}/{value.denominator}"


def decode_fraction(text: Any) -> Fraction:
    """Parse a ``"p/q"`` (or plain integer) string back into a Fraction."""
    if isinstance(text, int) and not isinstance(text, bool):
        return Fraction(text)
    if not isinstance(text, str):
        raise WireError(f"expected a 'p/q' fraction string, got {text!r}")
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as exc:
        raise WireError(f"malformed fraction {text!r}: {exc}") from None


def _encode_value(value: Any) -> Any:
    if isinstance(value, Fraction):
        return encode_fraction(value)
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (bool, int)) or value is None:
        return value
    raise WireError(f"cannot encode value of type {type(value).__name__}")


def encode_values(values: list) -> list:
    """Per-point query values → JSON-safe structures (exactly, see module doc)."""
    return [_encode_value(value) for value in values]


def decode_values(values: Any, kind: str, flavor: str) -> list:
    """Undo :func:`encode_values` for a known query ``kind`` × ``flavor``.

    Only the weighted flavor's ``counts`` carry Fractions; every other
    combination is integers, booleans or ``None`` and decodes as-is.
    """
    if not isinstance(values, list):
        raise WireError(f"values must be a list, got {type(values).__name__}")
    if kind == "counts" and flavor == "weighted":
        return [[decode_fraction(p) for p in probs] for probs in values]
    return values


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def encode_dataset(dataset: IncompleteDataset | LabelUncertainDataset) -> dict:
    """A dataset as pure JSON structure (floats stay IEEE-exact via repr)."""
    if isinstance(dataset, LabelUncertainDataset):
        return {
            "type": "label_uncertain",
            "candidate_sets": [
                dataset.candidates(row).tolist() for row in range(dataset.n_rows)
            ],
            "label_sets": [list(ls) for ls in dataset.label_sets],
        }
    if isinstance(dataset, IncompleteDataset):
        return {
            "type": "incomplete",
            "candidate_sets": [
                dataset.candidates(row).tolist() for row in range(dataset.n_rows)
            ],
            "labels": dataset.labels.tolist(),
        }
    raise WireError(f"cannot encode dataset of type {type(dataset).__name__}")


def decode_dataset(payload: Any) -> IncompleteDataset | LabelUncertainDataset:
    """Rebuild a dataset from :func:`encode_dataset` output.

    Also the validation gate for client-supplied datasets: every
    structural error comes back as :class:`WireError` (→ HTTP 400) with
    the constructor's message attached.
    """
    if not isinstance(payload, dict):
        raise WireError(f"dataset must be an object, got {type(payload).__name__}")
    dataset_type = payload.get("type", "incomplete")
    candidate_sets = payload.get("candidate_sets")
    if not isinstance(candidate_sets, list) or not candidate_sets:
        raise WireError("dataset needs a non-empty 'candidate_sets' list")
    try:
        sets = [np.asarray(cands, dtype=np.float64) for cands in candidate_sets]
        if dataset_type == "incomplete":
            labels = payload.get("labels")
            if labels is None:
                raise WireError("incomplete dataset needs 'labels'")
            return IncompleteDataset(sets, labels)
        if dataset_type == "label_uncertain":
            label_sets = payload.get("label_sets")
            if label_sets is None:
                raise WireError("label_uncertain dataset needs 'label_sets'")
            return LabelUncertainDataset(sets, label_sets)
    except WireError:
        raise
    except (ValueError, TypeError) as exc:
        raise WireError(f"malformed dataset: {exc}") from None
    raise WireError(
        f"unknown dataset type {dataset_type!r}; expected 'incomplete' or 'label_uncertain'"
    )


# ---------------------------------------------------------------------------
# Codd tables and relations (the /sql endpoint)
# ---------------------------------------------------------------------------

#: Cell types that ride JSON exactly: ints and strings verbatim, floats via
#: ``repr`` round-tripping (Python's shortest-repr guarantee), bools as-is.
_SCALAR_TYPES = (bool, int, float, str)


def _encode_cell_scalar(value: Any, where: str) -> Any:
    if value is None or isinstance(value, _SCALAR_TYPES):
        return value
    raise WireError(
        f"{where}: cannot encode cell of type {type(value).__name__}; "
        "Codd cells on the wire must be numbers, strings, booleans or null"
    )


def _decode_cell_scalar(value: Any, where: str) -> Any:
    """An inbound cell scalar, with non-finite floats rejected.

    ``json.loads`` parses ``NaN`` / ``Infinity`` tokens by default, but a
    non-finite constant breaks the exact equality/comparison semantics
    every Codd evaluation relies on (``NaN != NaN``), so it must bounce at
    the wire, not corrupt a served answer.
    """
    value = _encode_cell_scalar(value, where)
    if isinstance(value, float) and not math.isfinite(value):
        raise WireError(
            f"{where}: non-finite float cells cannot be served under the "
            "exactness guarantee"
        )
    return value


def encode_codd_table(table: CoddTable) -> dict:
    """A Codd table as pure JSON structure.

    Constants ride as JSON scalars; a NULL variable rides as
    ``{"null": [domain...]}`` (cells are never objects otherwise, so the
    marker is unambiguous).
    """
    rows = []
    for r, row in enumerate(table.rows):
        cells = []
        for cell in row:
            if isinstance(cell, Null):
                cells.append(
                    {"null": [_encode_cell_scalar(v, f"row {r}") for v in cell.domain]}
                )
            else:
                cells.append(_encode_cell_scalar(cell, f"row {r}"))
        rows.append(cells)
    return {"schema": list(table.schema), "rows": rows}


def decode_codd_table(payload: Any) -> CoddTable:
    """Rebuild a Codd table from :func:`encode_codd_table` output."""
    if not isinstance(payload, dict):
        raise WireError(
            f"codd_table must be an object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    rows = payload.get("rows")
    if not isinstance(schema, list) or not isinstance(rows, list):
        raise WireError("codd_table needs 'schema' and 'rows' lists")
    decoded_rows = []
    for r, row in enumerate(rows):
        if not isinstance(row, list):
            raise WireError(f"codd_table row {r} must be a list of cells")
        cells = []
        for cell in row:
            if isinstance(cell, dict):
                domain = cell.get("null")
                if set(cell) != {"null"} or not isinstance(domain, list):
                    raise WireError(
                        f"codd_table row {r}: object cells must be "
                        '{"null": [domain...]} NULL markers'
                    )
                try:
                    cells.append(
                        Null(
                            [
                                _decode_cell_scalar(v, f"codd_table row {r}")
                                for v in domain
                            ]
                        )
                    )
                except ValueError as exc:
                    raise WireError(f"codd_table row {r}: {exc}") from None
            else:
                cells.append(_decode_cell_scalar(cell, f"codd_table row {r}"))
        decoded_rows.append(cells)
    try:
        return CoddTable(schema, decoded_rows)
    except ValueError as exc:
        raise WireError(f"malformed codd_table: {exc}") from None


def encode_relation(relation: Relation) -> dict:
    """A relation as JSON: schema plus rows sorted by ``repr`` (the row set
    is unordered; sorting makes the wire form deterministic)."""
    rows = [
        [_encode_cell_scalar(value, "relation row") for value in row]
        for row in sorted(relation.rows, key=repr)
    ]
    return {"schema": list(relation.schema), "n_rows": len(relation), "rows": rows}


def decode_relation(payload: Any) -> Relation:
    """Rebuild a relation from :func:`encode_relation` output, exactly."""
    if not isinstance(payload, dict):
        raise WireError(f"relation must be an object, got {type(payload).__name__}")
    schema = payload.get("schema")
    rows = payload.get("rows")
    if not isinstance(schema, list) or not isinstance(rows, list):
        raise WireError("relation needs 'schema' and 'rows' lists")
    try:
        return Relation(schema, [tuple(row) for row in rows])
    except (ValueError, TypeError) as exc:
        raise WireError(f"malformed relation: {exc}") from None


# ---------------------------------------------------------------------------
# Query parameters
# ---------------------------------------------------------------------------


def decode_pins(payload: Any) -> dict[int, int]:
    """``[[row, candidate], ...]`` (or a mapping) → pins dict."""
    if payload is None:
        return {}
    try:
        if isinstance(payload, dict):
            return {int(row): int(cand) for row, cand in payload.items()}
        return {int(row): int(cand) for row, cand in payload}
    except (TypeError, ValueError) as exc:
        raise WireError(
            f"pins must be [[row, candidate], ...] pairs: {exc}"
        ) from None


def decode_weights(payload: Any) -> list[list[Fraction]] | None:
    """Per-row candidate priors as nested ``"p/q"`` strings, or ``None``."""
    if payload is None:
        return None
    if not isinstance(payload, list):
        raise WireError("weights must be a list of per-row fraction lists")
    return [[decode_fraction(w) for w in row] for row in payload]


def encode_delta(delta: Delta) -> dict:
    """A base-data delta as pure JSON (the ``PATCH /datasets/<name>`` body).

    * ``CellRepair`` → ``{"op": "cell_repair", "row", "candidate"}``
    * ``RowAppend`` → ``{"op": "row_append", "candidates": [[...]], "label"}``
      (floats IEEE-exact via repr, like datasets)
    * ``RowDelete`` → ``{"op": "row_delete", "row"}``
    """
    if isinstance(delta, CellRepair):
        return {"op": "cell_repair", "row": int(delta.row), "candidate": int(delta.candidate)}
    if isinstance(delta, RowAppend):
        return {
            "op": "row_append",
            "candidates": np.asarray(delta.candidates, dtype=np.float64).tolist(),
            "label": int(delta.label),
        }
    if isinstance(delta, RowDelete):
        return {"op": "row_delete", "row": int(delta.row)}
    raise WireError(f"cannot encode delta of type {type(delta).__name__}")


def decode_delta(payload: Any) -> Delta:
    """Rebuild one delta from :func:`encode_delta` output."""
    if not isinstance(payload, dict):
        raise WireError(f"a delta must be an object, got {type(payload).__name__}")
    op = payload.get("op")
    try:
        if op == "cell_repair":
            return CellRepair(int(payload["row"]), int(payload["candidate"]))
        if op == "row_append":
            return RowAppend(
                decode_matrix(payload["candidates"], "candidates"),
                int(payload["label"]),
            )
        if op == "row_delete":
            return RowDelete(int(payload["row"]))
    except KeyError as exc:
        raise WireError(f"delta {op!r} is missing field {exc.args[0]!r}") from None
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed {op!r} delta: {exc}") from None
    raise WireError(
        f"unknown delta op {op!r}; expected 'cell_repair', 'row_append' or 'row_delete'"
    )


def decode_deltas(payload: Any) -> list[Delta]:
    """A non-empty JSON list of deltas → :class:`Delta` objects, in order."""
    if not isinstance(payload, list) or not payload:
        raise WireError("'deltas' must be a non-empty list of delta objects")
    return [decode_delta(item) for item in payload]


def decode_codd_fixes(payload: Any) -> list[tuple[int, int, Any]]:
    """A non-empty list of ``{"op": "fix_cell", "row", "column", "value"}``
    objects → ``(row, column, value)`` triples (the Codd-table PATCH form)."""
    if not isinstance(payload, list) or not payload:
        raise WireError("'fixes' must be a non-empty list of fix_cell objects")
    fixes = []
    for i, item in enumerate(payload):
        if not isinstance(item, dict):
            raise WireError(f"fixes[{i}] must be an object")
        op = item.get("op", "fix_cell")
        if op != "fix_cell":
            raise WireError(f"fixes[{i}]: unknown op {op!r}; expected 'fix_cell'")
        if "value" not in item:
            raise WireError(f"fixes[{i}] is missing field 'value'")
        try:
            fixes.append(
                (
                    int(item["row"]),
                    int(item["column"]),
                    _decode_cell_scalar(item["value"], f"fixes[{i}]"),
                )
            )
        except KeyError as exc:
            raise WireError(f"fixes[{i}] is missing field {exc.args[0]!r}") from None
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed fixes[{i}]: {exc}") from None
    return fixes


def decode_matrix(payload: Any, name: str) -> np.ndarray:
    """A JSON nested list → float matrix (one row per point).

    Non-finite values are rejected: ``json.loads`` happily parses
    ``NaN`` / ``Infinity`` (and ``float64`` parses ``"1e999"`` to
    ``inf``), but a NaN similarity poisons every comparison downstream —
    the scan order and the min/max tallies would be garbage served under
    an exactness guarantee.
    """
    try:
        matrix = np.asarray(payload, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise WireError(f"{name} must be numeric: {exc}") from None
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2 or matrix.size == 0:
        raise WireError(f"{name} must be a non-empty point or list of points")
    if not np.isfinite(matrix).all():
        raise WireError(
            f"{name} must contain only finite values; NaN/Inf cannot be "
            "served under the exactness guarantee"
        )
    return matrix
