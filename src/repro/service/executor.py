"""The executor worker process of the partitioned serving topology.

One executor owns a set of candidate-row partitions
(:class:`~repro.service.partition.RowPartition` spans) per dataset, each
with **shard-local prepared state**: the partition's candidate sets are
stacked into one matrix at registration time, so a query pays only the
kernel call and the tally fold — never the per-request stacking the
single-process batch path re-does on every flush. The gateway
(:mod:`repro.service.gateway`) talks to the executor over a duplex
:func:`multiprocessing.Pipe` with a strict request/response discipline;
:func:`executor_main` is the child-process entry point.

Two query operations exist, matching the gateway's two merge modes:

* ``minmax`` — per-row min/max similarity tallies over the partition's
  rows, folded candidate-block by candidate-block with
  :func:`repro.core.shards.merge_minmax_block` (the exact associative
  algebra), pins applied locally as ``lo == hi == pinned similarity``.
  Only ``(n_points, n_rows_local)`` floats ride back.
* ``sims`` — the raw kernel similarity block over the partition's stacked
  candidates (optionally with pinned rows restricted to their single
  pinned candidate, mirroring ``restrict_row``). The gateway concatenates
  blocks into the exact full similarity matrix and runs the ordinary scan
  decisions on it.

Every reply echoes ``ok``; failures inside an operation are caught and
returned as ``{"ok": False, "error": ...}`` so one bad request cannot
kill the worker. A fingerprint mismatch returns ``{"ok": False,
"stale": True}`` — the gateway treats that as "my snapshot raced a
redistribute" and falls back to local execution for that query.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any

import numpy as np

from repro.core.kernels import Kernel, resolve_kernel
from repro.core.shards import DEFAULT_TILE_CANDIDATES, merge_minmax_block

__all__ = ["ExecutorPartition", "serve_executor", "executor_main"]


class ExecutorPartition:
    """One partition's shard-local prepared state inside an executor.

    Holds the partition's candidate sets (rows ``[row_start, row_start +
    n_rows)`` of the dataset) plus the stacked matrix / offsets /
    stacked-position→local-row map built once at registration — the
    prepared state every query against this partition reuses.
    """

    __slots__ = (
        "partition_id",
        "row_start",
        "candidate_sets",
        "counts",
        "offsets",
        "stacked",
        "rows",
    )

    def __init__(
        self, partition_id: int, row_start: int, candidate_sets: list[np.ndarray]
    ) -> None:
        if not candidate_sets:
            raise ValueError("a partition needs at least one row")
        self.partition_id = int(partition_id)
        self.row_start = int(row_start)
        self.candidate_sets = [
            np.ascontiguousarray(cands, dtype=np.float64) for cands in candidate_sets
        ]
        self.counts = np.array([c.shape[0] for c in self.candidate_sets], dtype=np.int64)
        self.offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.counts)]
        )
        self.stacked = np.concatenate(self.candidate_sets, axis=0)
        self.rows = np.repeat(
            np.arange(len(self.candidate_sets), dtype=np.int64), self.counts
        )

    @property
    def n_rows(self) -> int:
        return len(self.candidate_sets)

    def _local_pins(self, pins: dict[int, int]) -> list[tuple[int, int]]:
        """The pins that land in this partition, as (local row, candidate)."""
        local = []
        for row, cand in sorted(pins.items()):
            offset = int(row) - self.row_start
            if 0 <= offset < self.n_rows:
                if not 0 <= int(cand) < int(self.counts[offset]):
                    raise IndexError(
                        f"pinned candidate {cand} out of range for row {row} "
                        f"with {int(self.counts[offset])} candidates"
                    )
                local.append((offset, int(cand)))
        return local

    def minmax_tallies(
        self,
        test_X: np.ndarray,
        kernel: Kernel,
        pins: dict[int, int],
        tile_candidates: int = DEFAULT_TILE_CANDIDATES,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row min/max similarity tallies for this partition's rows.

        Exactly the fold :meth:`repro.core.shards.ShardedExecutor.minmax_labels`
        performs, restricted to this partition: bounded kernel blocks, the
        associative merge, pins applied as ``lo == hi``. The returned
        ``(n_points, n_rows)`` pair is ready for the gateway's
        concatenation merge.
        """
        n_points = test_X.shape[0]
        total = int(self.offsets[-1])
        mins = np.full((n_points, self.n_rows), np.inf)
        maxs = np.full((n_points, self.n_rows), -np.inf)
        pin_items = self._local_pins(pins)
        pin_positions = [
            int(self.offsets[offset]) + cand for offset, cand in pin_items
        ]
        pinned_sims = np.empty((n_points, len(pin_items)))
        step = max(int(tile_candidates), 1)
        for c0 in range(0, total, step):
            c1 = min(c0 + step, total)
            block = kernel.pairwise(self.stacked[c0:c1], test_X)
            merge_minmax_block(mins, maxs, block, self.rows, self.offsets, c0, c1)
            for slot, position in enumerate(pin_positions):
                if c0 <= position < c1:
                    pinned_sims[:, slot] = block[:, position - c0]
        for slot, (offset, _) in enumerate(pin_items):
            mins[:, offset] = pinned_sims[:, slot]
            maxs[:, offset] = pinned_sims[:, slot]
        return mins, maxs

    def sim_block(
        self,
        test_X: np.ndarray,
        kernel: Kernel,
        restrict: dict[int, int] | None = None,
    ) -> np.ndarray:
        """The raw similarity block over this partition's stacked candidates.

        With ``restrict``, rows pinned there contribute only their pinned
        candidate (the partition-local image of ``dataset.restrict_row``);
        the block's columns then follow the restricted dataset's stacked
        order. Slicing candidate rows never changes a similarity — each
        one is computed from that candidate's features alone — so the
        gateway's concatenation reproduces the single-process matrix
        bit for bit.
        """
        if restrict:
            local = dict(self._local_pins(restrict))
            if local:
                parts = [
                    cands[local[offset] : local[offset] + 1]
                    if offset in local
                    else cands
                    for offset, cands in enumerate(self.candidate_sets)
                ]
                return kernel.pairwise(np.concatenate(parts, axis=0), test_X)
        return kernel.pairwise(self.stacked, test_X)


def serve_executor(conn, executor_id: int) -> None:
    """The executor request loop: recv one message, send one reply, repeat.

    Messages are dicts with an ``"op"`` key. Unknown ops and in-operation
    failures answer ``{"ok": False, "error": ...}``; a broken pipe (the
    gateway died) or a ``shutdown`` op ends the loop.
    """
    datasets: dict[str, dict[str, Any]] = {}
    n_requests = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        n_requests += 1
        try:
            reply = _handle(datasets, executor_id, n_requests, message)
        except Exception as exc:  # noqa: BLE001 — must answer, never die
            reply = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        if message.get("op") == "shutdown":
            break


def _require_dataset(
    datasets: dict[str, dict[str, Any]], message: dict
) -> dict[str, Any] | dict:
    """The dataset state for a query op, or a structured failure reply."""
    name = message["name"]
    state = datasets.get(name)
    if state is None:
        return {"ok": False, "stale": True, "error": f"dataset {name!r} not prepared"}
    if state["fingerprint"] != message["fingerprint"]:
        return {
            "ok": False,
            "stale": True,
            "error": f"dataset {name!r} is at a different fingerprint",
        }
    return state


def _handle(
    datasets: dict[str, dict[str, Any]],
    executor_id: int,
    n_requests: int,
    message: dict,
) -> dict:
    op = message.get("op")
    if op == "ping" or op == "shutdown":
        return {
            "ok": True,
            "executor": executor_id,
            "pid": os.getpid(),
            "n_requests": n_requests,
            "datasets": {
                name: sorted(state["partitions"]) for name, state in datasets.items()
            },
        }
    if op == "register":
        partitions = {
            int(spec["partition_id"]): ExecutorPartition(
                int(spec["partition_id"]),
                int(spec["row_start"]),
                spec["candidate_sets"],
            )
            for spec in message["partitions"]
        }
        datasets[message["name"]] = {
            "fingerprint": message["fingerprint"],
            "partitions": partitions,
        }
        return {"ok": True, "n_partitions": len(partitions)}
    if op == "drop":
        datasets.pop(message["name"], None)
        return {"ok": True}
    if op in ("minmax", "sims"):
        state = _require_dataset(datasets, message)
        if not state.get("ok", True):
            return state
        kernel = resolve_kernel(message.get("kernel"))
        test_X = np.asarray(message["test_X"], dtype=np.float64)
        # When the gateway is tracing ("trace": True in the request), each
        # partition's work is timed and shipped back as a plain-dict span
        # record; the gateway grafts these under its gather span so the
        # distributed query renders as one tree. Records are self-contained
        # (no Span objects cross the pipe) and ids are restamped on
        # adoption, so nothing about the parent trace needs to ride along.
        trace = bool(message.get("trace"))
        spans: list[dict] = []
        out: dict[int, Any] = {}
        for partition_id in message["partition_ids"]:
            partition = state["partitions"].get(int(partition_id))
            if partition is None:
                return {
                    "ok": False,
                    "stale": True,
                    "error": f"partition {partition_id} not prepared here",
                }
            started = time.perf_counter() if trace else 0.0
            wall = time.time() if trace else 0.0
            if op == "minmax":
                out[int(partition_id)] = partition.minmax_tallies(
                    test_X, kernel, dict(message.get("pins") or {})
                )
            else:
                out[int(partition_id)] = partition.sim_block(
                    test_X, kernel, restrict=message.get("restrict")
                )
            if trace:
                spans.append(
                    {
                        "name": "executor.partition",
                        "start_time": wall,
                        "duration_ms": max(
                            time.perf_counter() - started, 0.0
                        )
                        * 1000.0,
                        "status": "ok",
                        "attributes": {
                            "executor": executor_id,
                            "pid": os.getpid(),
                            "partition": int(partition_id),
                            "op": op,
                            "n_rows": partition.n_rows,
                            "n_candidates": int(partition.offsets[-1]),
                            "n_points": int(test_X.shape[0]),
                        },
                        "children": [],
                    }
                )
        reply = {"ok": True, "partitions": out}
        if trace:
            reply["spans"] = spans
        return reply
    return {"ok": False, "error": f"unknown op {op!r}"}


def executor_main(conn, executor_id: int) -> None:
    """Child-process entry point (the ``Process`` target)."""
    try:
        serve_executor(conn, executor_id)
    finally:
        try:
            conn.close()
        except OSError:
            pass
