"""The query broker: admission control, micro-batching, TTL'd results.

The planner (:mod:`repro.core.planner`) is fastest when handed a whole
test matrix at once — one vectorised preparation amortised over many
points — but interactive callers ask one point at a time. The broker
closes that gap the way high-throughput serving systems do, with
**micro-batching**: a single-point query does not execute immediately;
it joins the pending batch of its *query family* (same dataset, kind,
flavor, ``k``, kernel, pins, label, weights, backend — everything except
the test point), and the batch is flushed as one planner call when it
reaches ``max_batch`` points or when the oldest request has waited
``window_s`` seconds. Under concurrent load the window fills and every
flush serves many callers for roughly the price of one; an idle service
degrades to per-request latency plus at most one window.

Correctness is free: every backend computes per-point values
independently, so a batched execution is bit-identical to the
per-request one (the differential harness replays random queries both
ways over the wire and asserts exactly that).

Two more serving-layer pieces live here:

* :class:`TTLResultCache` — the broker's result cache. Same
  thread-safe LRU discipline as
  :class:`~repro.core.batch_engine.QueryResultCache`, plus a
  time-to-live: a served value is keyed by dataset *content
  fingerprint* (so any dataset change invalidates by construction) and
  expires after ``ttl_s`` seconds so the cache cannot pin unbounded
  state warm forever.
* **Admission control** — the broker tracks in-flight requests and
  rejects new ones with :class:`AdmissionError` once ``max_pending`` is
  reached, which the HTTP layer surfaces as ``429 Too Many Requests``
  with a ``Retry-After`` hint. Shedding load early keeps the latency of
  admitted requests bounded instead of letting a queue grow without
  limit.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from fractions import Fraction
from typing import Any

import numpy as np

from repro.codd.codd_table import CoddTable
from repro.codd.engine import MODES, answer_query
from repro.codd.plan import plan_dict
from repro.codd.sql import parse_sql, referenced_tables
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.core.batch_engine import kernel_cache_key
from repro.core.planner import (
    ExecutionOptions,
    execute_query,
    make_query,
)
from repro.core.deltas import Delta
from repro.obs import Observability
from repro.obs.tracing import current_span, trace_span
from repro.service.registry import (
    DatasetEntry,
    DatasetRegistry,
    DatasetSnapshot,
)
from repro.service.wire import WireError, encode_relation
from repro.utils.validation import check_positive_int

__all__ = [
    "AdmissionError",
    "TTLResultCache",
    "QueryBroker",
]

_MISS = object()

#: Pruning counters the broker aggregates from ``QueryResult.stats`` into
#: ``/metrics`` (the integer-valued subset of the backends' stat snapshots).
_PRUNE_METRIC_KEYS = (
    "n_rows",
    "n_rows_pruned",
    "n_candidates",
    "n_pruned",
    "n_scanned",
    "n_points",
    "n_early_terminated",
)


class AdmissionError(RuntimeError):
    """The broker is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class TTLResultCache:
    """A thread-safe LRU result cache whose entries expire after ``ttl_s``.

    The serving twin of :class:`~repro.core.batch_engine.QueryResultCache`:
    same lock-around-everything discipline and LRU eviction, with a
    monotonic-clock TTL on top. An expired entry counts as a miss and is
    dropped on sight. The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        ttl_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.maxsize = check_positive_int(maxsize, "maxsize")
        if not ttl_s > 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._entries: OrderedDict[Any, tuple[float, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            item = self._entries.get(key, _MISS)
            if item is not _MISS:
                expires, value = item
                if self._clock() < expires:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return value
                del self._entries[key]
                self.expirations += 1
            self.misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl_s, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def purge(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            stale = [k for k, (expires, _) in self._entries.items() if expires <= now]
            for key in stale:
                del self._entries[key]
            self.expirations += len(stale)
            return len(stale)

    def purge_dataset(self, name: str) -> int:
        """Drop every entry cached for dataset/table ``name``; returns how many.

        Keys are content-addressed (they embed a fingerprint), so a stale
        entry can never be *served* for new content — but without this
        purge, re-registering or patching a name would leave the old
        content's results resident until TTL or LRU pressure claimed
        them. Query-family keys lead with the dataset name; SQL keys
        carry ``(name, fingerprint)`` pairs for every scanned table.
        """
        with self._lock:
            stale = []
            for key in self._entries:
                if not (isinstance(key, tuple) and key):
                    continue
                if key[0] == name:
                    stale.append(key)
                elif key[0] == "sql" and any(n == name for n, _ in key[1]):
                    stale.append(key)
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.expirations = 0

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            hits, misses = self.hits, self.misses
            size, expirations = len(self._entries), self.expirations
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "ttl_s": self.ttl_s,
            "hits": hits,
            "misses": misses,
            "expirations": expirations,
            "hit_rate": hits / total if total else 0.0,
        }


# ---------------------------------------------------------------------------
# Internal batching structures
# ---------------------------------------------------------------------------


def _point_digest(point: np.ndarray) -> str:
    return hashlib.sha1(np.ascontiguousarray(point).tobytes()).hexdigest()


def _weights_digest(weights: list[list[Fraction]] | None) -> str:
    if weights is None:
        return ""
    digest = hashlib.sha256()
    for row in weights:
        digest.update(repr(row).encode("ascii"))
        digest.update(b";")
    return digest.hexdigest()


class _PendingBatch:
    """One micro-batch being assembled for a query family.

    Carries the :class:`~repro.service.registry.DatasetSnapshot` of the
    request that opened the batch; the family key embeds the snapshot's
    fingerprint, so every coalesced request sees the same dataset version
    and the flush executes against exactly that version. Each item also
    remembers the waiting request's span id, so the batch's (detached)
    trace can name every request it served.
    """

    __slots__ = ("entry", "snap", "params", "items", "timer")

    def __init__(
        self, entry: DatasetEntry, snap: DatasetSnapshot, params: dict
    ) -> None:
        self.entry = entry
        self.snap = snap
        self.params = params
        self.items: list[tuple[np.ndarray, Future, str | None]] = []
        self.timer: threading.Timer | None = None


class QueryBroker:
    """Admission-controlled, micro-batching front door to the planner.

    Parameters
    ----------
    registry:
        The :class:`~repro.service.registry.DatasetRegistry` whose
        entries (and pinned prepared state) queries run against.
    window_s:
        Micro-batching window: how long the first request of a family
        waits for company before its batch is flushed. ``0`` disables
        coalescing (the per-request baseline ``bench_service.py``
        measures against).
    max_batch:
        Flush a pending batch as soon as it holds this many points.
        ``1`` also disables coalescing.
    max_pending:
        Admission-control bound on concurrently in-flight requests
        (micro-batched, per-request and matrix dispatch alike); beyond
        it :class:`AdmissionError` is raised.
    backend, n_jobs:
        Defaults handed to the planner (a request may override the
        backend per query).
    cache:
        ``True`` (default) builds a :class:`TTLResultCache` with
        ``ttl_s``/``cache_size``; an instance shares one; ``False`` /
        ``None`` disables result caching.
    tile_rows, tile_candidates:
        Tile bounds forwarded to the ``sharded`` backend when a query
        runs there (other backends ignore them).
    gateway:
        An optional :class:`~repro.service.gateway.Gateway`. When present,
        CP queries whose backend is ``"auto"`` or ``"gateway"`` execute
        partition-parallel across its executor processes; on
        :class:`~repro.service.gateway.GatewayUnavailable` (executors lost
        beyond the retry budget, or a snapshot racing a redistribute) the
        broker transparently falls back to local execution — the values
        are bit-identical either way, so the fallback is invisible except
        in ``/metrics``. The broker owns the gateway's lifecycle:
        :meth:`close` drains pending batches, then shuts the executors
        down.
    obs:
        The :class:`~repro.obs.Observability` bundle (metrics registry +
        tracer) this broker reports into. ``make_service`` shares one
        across every layer; a bare broker creates its own.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        window_s: float = 0.01,
        max_batch: int = 16,
        max_pending: int = 256,
        backend: str = "auto",
        n_jobs: int | None = 1,
        cache: TTLResultCache | bool | None = True,
        ttl_s: float = 30.0,
        cache_size: int = 4096,
        tile_rows: int | None = None,
        tile_candidates: int | None = None,
        gateway=None,
        obs: Observability | None = None,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.registry = registry
        self.window_s = float(window_s)
        self.max_batch = check_positive_int(max_batch, "max_batch")
        self.max_pending = check_positive_int(max_pending, "max_pending")
        self.backend = backend
        self.n_jobs = n_jobs
        self.tile_rows = tile_rows
        self.tile_candidates = tile_candidates
        self.gateway = gateway
        if cache is True:
            self.cache: TTLResultCache | None = TTLResultCache(
                maxsize=cache_size, ttl_s=ttl_s
            )
        elif isinstance(cache, TTLResultCache):
            self.cache = cache
        else:
            self.cache = None
        self._lock = threading.Lock()
        self._pending: dict[tuple, _PendingBatch] = {}
        self._inflight = 0
        self._closed = False
        # Typed instruments on the shared MetricsRegistry replace the old
        # per-broker integer dict; the legacy ``metrics()`` key set is
        # preserved by reading the counters back (golden-keys contract).
        self.obs = obs if obs is not None else Observability()
        m = self.obs.metrics
        self._c_requests = m.counter(
            "broker_requests_total", help="CP query requests admitted or rejected"
        )
        self._c_single = m.counter("broker_single_point_requests_total")
        self._c_multi = m.counter("broker_multi_point_requests_total")
        self._c_batches = m.counter(
            "broker_batches_total", help="planner executions (flushes + direct)"
        )
        self._c_batched_points = m.counter("broker_points_executed_total")
        self._c_coalesced = m.counter(
            "broker_coalesced_batches_total", help="flushes serving >1 request"
        )
        self._g_max_batch = m.gauge(
            "broker_max_batch_size", help="largest batch executed so far"
        )
        self._c_rejected = m.counter(
            "broker_rejected_total", help="requests shed by admission control"
        )
        self._c_cache_served = m.counter("broker_cache_served_total")
        self._c_sql = m.counter("broker_sql_requests_total")
        self._c_sql_cache_served = m.counter("broker_sql_cache_served_total")
        self._c_patches = m.counter("broker_patch_requests_total")
        self._c_explain = m.counter("broker_explain_requests_total")
        self._c_gateway_served = m.counter("broker_gateway_served_total")
        self._c_gateway_fallbacks = m.counter("broker_gateway_fallbacks_total")
        self._prune_counters = {
            key: m.counter(f"broker_prune_{key}_total")
            for key in ("executions", "pruned_executions", *_PRUNE_METRIC_KEYS)
        }
        self._h_batch_size = m.histogram(
            "broker_batch_points",
            help="points per planner execution",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self._h_op_seconds = {
            op: m.histogram(
                "broker_request_seconds",
                help="end-to-end broker handling time",
                op=op,
            )
            for op in ("query", "sql", "patch")
        }
        m.add_collector(self._collect_gauges)
        # Re-registration/removal under an existing name invalidates that
        # name's cached results (satellite of the delta-maintenance work:
        # fingerprint-keyed entries for the old content must not linger).
        registry.add_invalidation_hook(self._on_invalidated)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        dataset: str,
        points: Any,
        kind: str = "counts",
        flavor: str = "auto",
        k: int | None = None,
        pins: dict[int, int] | None = None,
        label: int | None = None,
        weights: list[list[Fraction]] | None = None,
        algorithm: str = "auto",
        backend: str | None = None,
        with_cleaned: bool = False,
        prune: str = "auto",
        explain: bool | str = False,
        timeout: float | None = 60.0,
    ) -> dict:
        """Answer a CP query against a registered dataset.

        ``points`` is one test point (1-D) or a matrix of them; a single
        point rides the micro-batching path, a matrix executes as one
        planner batch directly. Returns a dict with the resolved
        ``flavor``, per-point ``values``, the executing ``backend``, the
        size of the batch each point was served in, and cache/coalescing
        telemetry. Raises :class:`AdmissionError` at capacity; any
        query-construction error (bad pins, incapable backend, ...)
        propagates to the caller exactly as :func:`make_query` /
        :func:`plan_query` raise it.

        ``prune`` selects exactness-preserving candidate pruning
        (:class:`~repro.core.planner.ExecutionOptions`'s knob verbatim:
        ``auto`` / ``on`` / ``off``); answers are bit-identical either
        way, so prune modes share nothing but wall-clock. With
        ``explain=True`` the request bypasses micro-batching and the
        result cache read (the explain block needs this execution's
        telemetry, not a cached value's) and the response carries an
        ``explain`` dict: chosen backend, plan reason, and the backend's
        pruning / early-termination counters. ``explain="trace"``
        additionally embeds the request's span tree under ``"trace"``.
        """
        with self._h_op_seconds["query"].time(), trace_span(
            "broker.query", tracer=self.obs.tracer, dataset=dataset, kind=kind
        ) as span:
            response = self._query_traced(
                span, dataset, points, kind, flavor, k, pins, label, weights,
                algorithm, backend, with_cleaned, prune, explain, timeout,
            )
        if explain == "trace" and span:
            response["trace"] = span.root().record()
        return response

    def _query_traced(
        self, span, dataset, points, kind, flavor, k, pins, label, weights,
        algorithm, backend, with_cleaned, prune, explain, timeout,
    ) -> dict:
        entry = self.registry.get(dataset)
        # One atomic read of (dataset, fingerprint, version, prepared):
        # everything below — family key, execution, response — uses the
        # snapshot, so the answer is consistent with one serializable
        # version even while PATCH traffic rewrites the entry.
        snap = entry.snapshot()
        matrix = np.asarray(points, dtype=np.float64)
        single = matrix.ndim == 1
        if single:
            matrix = matrix.reshape(1, -1)
        pins = dict(pins or {})
        if with_cleaned:
            session_pins = entry.session_pins()
            session_pins.update(pins)
            pins = session_pins
        params = {
            "kind": kind,
            "flavor": self._resolve_flavor(snap.dataset, flavor, weights),
            "k": entry.k if k is None else int(k),
            "pins": tuple(sorted(pins.items())),
            "label": label,
            "weights": weights,
            "algorithm": algorithm,
            "backend": backend or self.backend,
            "prune": prune,
        }
        # Admission control covers every dispatch path — micro-batched
        # singles, per-request singles, and matrix queries alike: one
        # admitted request = one in-flight slot until its response exists.
        with self._lock:
            self._c_requests.inc()
            if single:
                self._c_single.inc()
            else:
                self._c_multi.inc()
            sweep = self.cache is not None and self._c_requests.value % 256 == 0
            if self._closed:
                raise AdmissionError("broker is shut down", retry_after=1.0)
            if self._inflight >= self.max_pending:
                self._c_rejected.inc()
                raise AdmissionError(
                    f"{self._inflight} requests in flight (max_pending="
                    f"{self.max_pending}); shedding load",
                    retry_after=max(self.window_s * 2, 0.01),
                )
            self._inflight += 1
        if sweep:
            # Periodic sweep: expired entries would otherwise stay resident
            # until their exact key is looked up again or LRU pressure hits.
            self.cache.purge()
        try:
            if explain:
                self._c_explain.inc()
                response = self._execute_direct(
                    entry, snap, matrix, params, explain=True
                )
            elif single and self.window_s > 0 and self.max_batch > 1:
                response = dict(
                    self._submit_single(entry, snap, matrix[0], params, timeout)
                )
            else:
                response = self._execute_direct(entry, snap, matrix, params)
        finally:
            with self._lock:
                self._inflight -= 1
        entry.record_served(matrix.shape[0])
        response.update(
            dataset=dataset,
            kind=kind,
            flavor=params["flavor"],
            n_points=matrix.shape[0],
            version=snap.version,
            fingerprint=snap.fingerprint,
        )
        span.set(
            flavor=params["flavor"],
            n_points=matrix.shape[0],
            backend=response.get("backend"),
            batch_size=response.get("batch_size"),
            cache_hit=bool(response.get("cached")),
        )
        return response

    def sql(
        self,
        query: str,
        mode: str = "certain",
        backend: str = "auto",
        codd_table: CoddTable | None = None,
        explain: bool | str = False,
    ) -> dict:
        """Answer a SQL query over registered Codd tables with certain-answer
        semantics (the ``/sql`` endpoint).

        ``query`` is the select-project SQL fragment of
        :func:`repro.codd.sql.parse_sql`; the ``FROM`` clause names a Codd
        table registered with
        :meth:`~repro.service.registry.DatasetRegistry.register_codd_table`
        — unless ``codd_table`` supplies one inline, in which case it is
        bound to whatever name the query scans. ``mode`` is ``"certain"``,
        ``"possible"`` or ``"both"``; ``backend`` forces a codd engine
        backend (``auto`` lets the cost model choose). Results are served
        from the broker's TTL cache when the same query hits the same
        table content within the TTL, and always ride the wire as exact
        :func:`~repro.service.wire.encode_relation` structures.
        ``explain="trace"`` embeds the request's span tree under
        ``"trace"``.
        """
        with self._h_op_seconds["sql"].time(), trace_span(
            "broker.sql", tracer=self.obs.tracer, mode=mode
        ) as span:
            response = self._sql_traced(span, query, mode, backend, codd_table)
        if explain == "trace" and span:
            response["trace"] = span.root().record()
        return response

    def _sql_traced(self, span, query, mode, backend, codd_table) -> dict:
        if mode not in (*MODES, "both"):
            raise WireError(
                f"mode must be one of {(*MODES, 'both')}, got {mode!r}"
            )
        if not isinstance(query, str) or not query.strip():
            raise WireError("'query' must be a non-empty SQL string")
        # Chicken-and-egg: a multi-table query parses against the scanned
        # tables' schemas, so a lexical pre-scan finds the names first.
        names = referenced_tables(query)
        if codd_table is not None:
            entries = {}
            snaps = {}
            database = {name: codd_table for name in names}
            fingerprints = {name: codd_table.fingerprint() for name in names}
            versions: dict[str, int] = {}
        else:
            entries = {name: self.registry.get_codd(name) for name in names}
            # One atomic snapshot per table: table, fingerprint, version and
            # pinned grid belong to the same serializable version even while
            # PATCH fixes rewrite the entry.
            snaps = {name: entry.snapshot() for name, entry in entries.items()}
            database = {name: snap.table for name, snap in snaps.items()}
            fingerprints = {name: snap.fingerprint for name, snap in snaps.items()}
            versions = {name: snap.version for name, snap in snaps.items()}
        parsed = parse_sql(
            query, schemas={name: t.schema for name, t in database.items()}
        )

        with self._lock:
            self._c_sql.inc()
            sweep = self.cache is not None and self._c_sql.value % 256 == 0
            if self._closed:
                raise AdmissionError("broker is shut down", retry_after=1.0)
            if self._inflight >= self.max_pending:
                self._c_rejected.inc()
                raise AdmissionError(
                    f"{self._inflight} requests in flight (max_pending="
                    f"{self.max_pending}); shedding load",
                    retry_after=max(self.window_s * 2, 0.01),
                )
            self._inflight += 1
        if sweep:
            self.cache.purge()
        try:
            cache_key = (
                "sql",
                tuple(sorted(fingerprints.items())),
                query,
                mode,
                backend,
            )
            if self.cache is not None:
                hit = self.cache.get(cache_key, _MISS)
                if hit is not _MISS:
                    self._c_sql_cache_served.inc()
                    span.set(cache_hit=True, n_tables=len(names))
                    for entry in entries.values():
                        entry.record_served()
                    return {**hit, "versions": versions, "cached": True}
            # Only a cache miss pays for the pinned completion grids —
            # admission rejections and cache hits must stay cheap. Grids
            # are resolved against the snapshots, never the live entries.
            prepared = {
                name: grid
                for name, entry in entries.items()
                if (grid := entry.grid_for(snaps[name])) is not None
            } or None
            modes = MODES if mode == "both" else (mode,)
            results: dict[str, dict] = {}
            backends: dict[str, str] = {}
            explain_info: dict | None = None
            for one_mode in modes:
                answer = answer_query(
                    parsed, database, mode=one_mode, backend=backend,
                    prepared=prepared,
                )
                results[one_mode] = encode_relation(answer.relation)
                backends[one_mode] = answer.plan.backend
                if explain_info is None:
                    explain_info = {
                        "plan": (
                            answer.logical.render()
                            if answer.logical is not None
                            else None
                        ),
                        "tree": (
                            plan_dict(answer.logical.root)
                            if answer.logical is not None
                            else None
                        ),
                        "rewrites": list(answer.rewrites),
                    }
            n_worlds = 1
            for table in database.values():
                n_worlds *= table.n_worlds()
            response = {
                "query": query,
                "mode": mode,
                "tables": fingerprints,
                "results": results,
                "backends": backends,
                "n_worlds": str(n_worlds),
                "explain": explain_info,
            }
            if self.cache is not None:
                # Versions are not part of the cached payload: content can
                # recur at a later version and the echo must stay current.
                self.cache.put(cache_key, dict(response))
            for entry in entries.values():
                entry.record_served()
            span.set(
                cache_hit=False,
                n_tables=len(names),
                backends=",".join(sorted(set(backends.values()))),
            )
            return {**response, "versions": versions, "cached": False}
        finally:
            with self._lock:
                self._inflight -= 1

    def patch(
        self,
        name: str,
        deltas: list[Delta] | None = None,
        fixes: list[tuple[int, int, Any]] | None = None,
    ) -> dict:
        """Apply base-data writes to a registered dataset or Codd table
        (the ``PATCH /datasets/<name>`` endpoint).

        ``deltas`` (a list of :class:`~repro.core.deltas.CellRepair` /
        :class:`~repro.core.deltas.RowAppend` /
        :class:`~repro.core.deltas.RowDelete`) targets a CP dataset;
        ``fixes`` (``(row, column, value)`` triples) targets a Codd
        table. Exactly one of the two must be given. Each write bumps the
        entry's version; warm prepared state follows in O(Δ) through the
        delta-maintenance layer instead of being rebuilt, and the
        broker's cached results for the name are purged. Returns the
        entry's new ``version``/``fingerprint`` plus one report per
        applied write.
        """
        if (deltas is None) == (fixes is None):
            raise WireError(
                "send either 'deltas' (for a CP dataset) or 'fixes' "
                "(for a codd table), not both"
            )
        with self._lock:
            if self._closed:
                raise AdmissionError("broker is shut down", retry_after=1.0)
            if self._inflight >= self.max_pending:
                self._c_rejected.inc()
                raise AdmissionError(
                    f"{self._inflight} requests in flight (max_pending="
                    f"{self.max_pending}); shedding load",
                    retry_after=max(self.window_s * 2, 0.01),
                )
            self._inflight += 1
            self._c_patches.inc()
        try:
            with self._h_op_seconds["patch"].time(), trace_span(
                "broker.patch", tracer=self.obs.tracer, dataset=name
            ):
                result = self._patch_traced(name, deltas, fixes)
        finally:
            with self._lock:
                self._inflight -= 1
            # Purge even on partial application: any applied prefix already
            # changed the content the cached results were computed for.
            if self.cache is not None:
                self.cache.purge_dataset(name)
        return result

    def _patch_traced(self, name, deltas, fixes) -> dict:
        if deltas is not None:
            return self.registry.get(name).apply_deltas(deltas)
        if not fixes:
            raise WireError("'fixes' must contain at least one operation")
        entry = self.registry.get_codd(name)
        reports = [
            entry.apply_fix(row, column, value)
            for row, column, value in fixes
        ]
        return {
            "table": name,
            "version": reports[-1]["version"],
            "fingerprint": reports[-1]["fingerprint"],
            "n_worlds": reports[-1]["n_worlds"],
            "reports": reports,
        }

    def _collect_gauges(self, metrics) -> None:
        """Metrics collector: point-in-time levels read at snapshot time."""
        with self._lock:
            inflight = self._inflight
        metrics.gauge("broker_inflight").set(inflight)
        if self.cache is not None:
            stats = self.cache.stats()
            metrics.gauge("broker_cache_size").set(stats["size"])
            metrics.gauge("broker_cache_hit_rate").set(stats["hit_rate"])

    def metrics(self) -> dict:
        """A snapshot of the broker's serving counters (for ``/metrics``).

        The key set is the documented legacy schema (guarded by the
        golden-keys test); values are read back from the typed
        instruments that now own the counts.
        """
        with self._lock:
            inflight = self._inflight
        out = {
            "requests": self._c_requests.value,
            "single_point_requests": self._c_single.value,
            "multi_point_requests": self._c_multi.value,
            "batches_executed": self._c_batches.value,
            "points_executed": self._c_batched_points.value,
            "coalesced_batches": self._c_coalesced.value,
            "max_batch_size": int(self._g_max_batch.value),
            "rejected": self._c_rejected.value,
            "served_from_cache": self._c_cache_served.value,
            "sql_requests": self._c_sql.value,
            "sql_served_from_cache": self._c_sql_cache_served.value,
            "patch_requests": self._c_patches.value,
            "explain_requests": self._c_explain.value,
            "prune": {
                key: counter.value
                for key, counter in self._prune_counters.items()
            },
            "inflight": inflight,
            "window_s": self.window_s,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
            "gateway_served": self._c_gateway_served.value,
            "gateway_fallbacks": self._c_gateway_fallbacks.value,
        }
        out["cache"] = self.cache.stats() if self.cache is not None else None
        out["gateway"] = (
            self.gateway.metrics() if self.gateway is not None else None
        )
        return out

    def _on_invalidated(self, name: str) -> None:
        """Registry hook: drop cached results for a replaced/removed name."""
        if self.cache is not None:
            self.cache.purge_dataset(name)
        if self.gateway is not None:
            self.gateway.drop(name)

    def close(self) -> None:
        """Flush every pending micro-batch, stop accepting new work, and
        shut down the gateway's executors (if one is attached)."""
        with self._lock:
            self._closed = True
            pending = list(self._pending.items())
            self._pending.clear()
        for _, batch in pending:
            if batch.timer is not None:
                batch.timer.cancel()
            self._run_batch(batch)
        if self.gateway is not None:
            self.gateway.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_flavor(dataset, flavor: str, weights) -> str:
        """Mirror :func:`make_query`'s flavor inference for the family key.

        (The query itself is still built by ``make_query`` at flush
        time, so validation stays in one place; this only needs to be
        consistent, and a wrong guess would surface there.)
        """
        if flavor != "auto":
            return flavor
        if isinstance(dataset, LabelUncertainDataset):
            return "label_uncertainty"
        if weights is not None:
            return "weighted"
        return "binary" if dataset.n_labels == 2 else "multiclass"

    def _family_key(
        self, entry: DatasetEntry, snap: DatasetSnapshot, params: dict
    ) -> tuple:
        return (
            entry.name,
            snap.fingerprint,
            params["kind"],
            params["flavor"],
            params["k"],
            kernel_cache_key(entry.kernel),
            params["pins"],
            params["label"],
            _weights_digest(params["weights"]),
            params["algorithm"],
            params["backend"],
            # Pruning never changes values, but a micro-batch flushes with
            # one ExecutionOptions — requests asking for different prune
            # modes must not coalesce into the same planner call.
            params["prune"],
        )

    def _point_cache_key(self, family: tuple, point: np.ndarray) -> tuple:
        return (*family, _point_digest(point))

    def _options(self, snap: DatasetSnapshot, prune: str) -> ExecutionOptions:
        return ExecutionOptions(
            n_jobs=self.n_jobs,
            # The broker's TTL cache is the service's caching layer; the
            # planner-level LRU is bypassed so expiry is in one place.
            cache=False,
            prepared=snap.prepared,
            tile_rows=self.tile_rows,
            tile_candidates=self.tile_candidates,
            prune=prune,
        )

    def _record_stats(self, stats: dict) -> None:
        """Fold one execution's backend stats into the /metrics counters."""
        if not stats:
            return
        self._prune_counters["executions"].inc()
        if stats.get("prune"):
            self._prune_counters["pruned_executions"].inc()
        for key in _PRUNE_METRIC_KEYS:
            value = stats.get(key)
            if isinstance(value, int):
                self._prune_counters[key].inc(value)

    def _execute(
        self,
        entry: DatasetEntry,
        snap: DatasetSnapshot,
        test_X: np.ndarray,
        params: dict,
    ):
        query = make_query(
            snap.dataset,
            test_X,
            kind=params["kind"],
            flavor=params["flavor"],
            k=params["k"],
            kernel=entry.kernel,
            pins=dict(params["pins"]),
            label=params["label"],
            algorithm=params["algorithm"],
            weights=params["weights"],
        )
        backend = params["backend"]
        with trace_span(
            "planner.route", requested_backend=backend, dataset=entry.name
        ) as span:
            if self.gateway is not None and backend in ("auto", "gateway"):
                result = self._execute_gateway(entry, snap, query)
                if result is not None:
                    span.set(served_by="gateway")
                    return result
            if backend == "gateway":
                # No gateway attached (single-process mode) or it declined:
                # the local planner serves the same bit-identical answer.
                backend = "auto"
            span.set(served_by="local")
            return execute_query(
                query,
                backend=backend,
                options=self._options(snap, params["prune"]),
            )

    def _execute_gateway(self, entry, snap, query):
        """Partition-parallel execution, or ``None`` to fall back locally.

        The gateway raises
        :class:`~repro.service.gateway.GatewayUnavailable` when it cannot
        serve exactly right now (executor loss beyond the retry budget, a
        snapshot racing a redistribute); the broker answers from the local
        planner instead — same bit-identical values, one process — and
        counts the fallback. Any other error propagates: it is a bug, not
        a degradation.
        """
        from repro.service.gateway import GatewayUnavailable

        try:
            result = self.gateway.execute_query(
                entry.name, query, fingerprint=snap.fingerprint
            )
        except GatewayUnavailable as exc:
            self._c_gateway_fallbacks.inc()
            current_span().set(fallback_reason=str(exc) or "gateway unavailable")
            return None
        self._c_gateway_served.inc()
        entry.set_partitioning(self.gateway.describe_dataset(entry.name))
        return result

    def _execute_direct(
        self,
        entry: DatasetEntry,
        snap: DatasetSnapshot,
        matrix: np.ndarray,
        params: dict,
        explain: bool = False,
    ) -> dict:
        family = self._family_key(entry, snap, params)
        cache_key = (*family, "matrix", _point_digest(matrix))
        # Explain requests skip the cache *read*: the explain block reports
        # this execution's pruning telemetry, which a cached value lacks.
        # The computed values still populate the cache below.
        if self.cache is not None and not explain:
            hit = self.cache.get(cache_key, _MISS)
            if hit is not _MISS:
                self._c_cache_served.inc()
                return {"values": list(hit[0]), "backend": hit[1], "batch_size": matrix.shape[0], "cached": True}
        result = self._execute(entry, snap, matrix, params)
        self._record_stats(result.stats)
        self._c_batches.inc()
        self._c_batched_points.inc(matrix.shape[0])
        self._g_max_batch.set_max(matrix.shape[0])
        self._h_batch_size.observe(matrix.shape[0])
        if self.cache is not None:
            self.cache.put(cache_key, (list(result.values), result.plan.backend))
            for index in range(matrix.shape[0]):
                self.cache.put(
                    self._point_cache_key(family, matrix[index]),
                    (result.values[index], result.plan.backend),
                )
        response = {
            "values": list(result.values),
            "backend": result.plan.backend,
            "batch_size": matrix.shape[0],
            "cached": False,
        }
        if explain:
            response["explain"] = {
                "backend": result.plan.backend,
                "reason": result.plan.reason,
                "stats": dict(result.stats),
            }
        return response

    def _submit_single(
        self,
        entry: DatasetEntry,
        snap: DatasetSnapshot,
        point: np.ndarray,
        params: dict,
        timeout: float | None,
    ) -> dict:
        family = self._family_key(entry, snap, params)
        if self.cache is not None:
            hit = self.cache.get(self._point_cache_key(family, point), _MISS)
            if hit is not _MISS:
                self._c_cache_served.inc()
                return {"values": [hit[0]], "backend": hit[1], "batch_size": 1, "cached": True}

        future: Future = Future()
        flush_now: _PendingBatch | None = None
        with self._lock:
            # Re-check under the lock: a request that passed the admission
            # check can reach this insertion after close() drained
            # self._pending — inserting here would leave a fresh batch (and
            # its daemon timer) firing into a closed broker, and the
            # request's future would never resolve. Fail it instead.
            if self._closed:
                future.set_exception(
                    AdmissionError(
                        "broker closed while the request was being enqueued",
                        retry_after=1.0,
                    )
                )
            else:
                batch = self._pending.get(family)
                if batch is None:
                    batch = _PendingBatch(entry, snap, params)
                    self._pending[family] = batch
                    batch.timer = threading.Timer(
                        self.window_s, self._flush_family, (family, batch)
                    )
                    batch.timer.daemon = True
                    batch.timer.start()
                batch.items.append((point, future, current_span().span_id))
                if len(batch.items) >= self.max_batch:
                    self._pending.pop(family, None)
                    flush_now = batch
        if flush_now is not None:
            if flush_now.timer is not None:
                flush_now.timer.cancel()
            self._run_batch(flush_now)
        value, backend_name, batch_size, batch_record = future.result(
            timeout=timeout
        )
        # The flush ran detached (it served many requests, possibly on a
        # timer thread); grafting its span record here renders this
        # request's share of the batch inside this request's trace.
        current_span().adopt(batch_record)
        return {"values": [value], "backend": backend_name, "batch_size": batch_size, "cached": False}

    def _flush_family(self, family: tuple, batch: _PendingBatch) -> None:
        """Timer callback: flush ``batch`` unless someone else already did."""
        with self._lock:
            if self._pending.get(family) is not batch:
                return  # flushed by max_batch (or close) already
            self._pending.pop(family, None)
        self._run_batch(batch)

    def _run_batch(self, batch: _PendingBatch) -> None:
        if not batch.items:
            return
        points = [point for point, _, _ in batch.items]
        futures = [future for _, future, _ in batch.items]
        waiters = [span_id for _, _, span_id in batch.items if span_id]
        n = len(futures)
        try:
            # Detached: the flush may run on a timer thread, and even on a
            # caller's thread the batch serves *every* coalesced request —
            # nesting it under one request's span would mis-attribute it.
            # Waiters adopt the record from their future results instead.
            with trace_span(
                "broker.batch", tracer=self.obs.tracer, detached=True
            ) as bspan:
                bspan.set(
                    dataset=batch.entry.name,
                    n_points=n,
                    coalesced=n > 1,
                    request_span_ids=waiters,
                )
                test_X = np.vstack([point.reshape(1, -1) for point in points])
                result = self._execute(
                    batch.entry, batch.snap, test_X, batch.params
                )
                bspan.set(backend=result.plan.backend)
            batch_record = bspan.record()
            self._record_stats(result.stats)
            family = self._family_key(batch.entry, batch.snap, batch.params)
            self._c_batches.inc()
            self._c_batched_points.inc(n)
            self._g_max_batch.set_max(n)
            self._h_batch_size.observe(n)
            if n > 1:
                self._c_coalesced.inc()
            for index, future in enumerate(futures):
                value = result.values[index]
                if self.cache is not None:
                    self.cache.put(
                        self._point_cache_key(family, points[index]),
                        (value, result.plan.backend),
                    )
                future.set_result(
                    (value, result.plan.backend, n, batch_record)
                )
        except BaseException as exc:  # noqa: BLE001 — futures carry it to callers
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
