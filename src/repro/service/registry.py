"""The dataset registry: named datasets with warm prepared state.

Every entry point in the repo so far is one-shot and in-process: each
caller builds its own :class:`~repro.core.batch_engine.PreparedBatch`
(the vectorised candidate-distance state), uses it, and throws it away.
A long-lived service must not — preparing distances is the expensive,
perfectly reusable part of a CP query, which is why the ROADMAP's
"heavy traffic" north star needs a place that keeps it warm.

:class:`DatasetRegistry` is that place. It maps names to
:class:`DatasetEntry` objects, each owning:

* the dataset itself plus its content ``fingerprint()`` (the cache key
  every layer below already agrees on);
* an optional registered **validation set**, whose prepared state is
  pinned via a lazily-built
  :class:`~repro.cleaning.sequential.CleaningSession` — that session
  holds the ``PreparedBatch`` and, through the ``incremental`` backend,
  keeps :class:`~repro.core.incremental.IncrementalCPState` maintained
  across ``/clean/step`` calls instead of re-preparing per request;
* per-entry counters the ``/metrics`` endpoint reports.

Since PR 5 the registry also pins the *database* half of Figure 1: a
:class:`CoddTableEntry` holds a registered
:class:`~repro.codd.codd_table.CoddTable` together with its lazily-built
:class:`~repro.codd.vectorized.StackedTable` completion grid, the warm
columnar state the ``/sql`` endpoint's vectorized certain-answer engine
evaluates on.

Everything is thread-safe: the registry serialises membership changes on
one lock, and each entry serialises its own lazy construction and
cleaning steps, so two HTTP threads can hit different datasets without
ever contending on a global lock.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cleaning.sequential import CleaningSession
from repro.codd.codd_table import CoddTable
from repro.codd.vectorized import (
    MAX_STACKED_CELLS,
    StackedTable,
    estimate_stacked_cells,
)
from repro.core.batch_engine import PreparedBatch
from repro.core.dataset import IncompleteDataset
from repro.core.deltas import (
    CellRepair,
    Delta,
    RowAppend,
    RowDelete,
    apply_delta_to_dataset,
)
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.utils.validation import check_positive_int

__all__ = [
    "UnknownDatasetError",
    "RegistryError",
    "DuplicateDatasetError",
    "DatasetEntry",
    "DatasetSnapshot",
    "CoddTableEntry",
    "CoddTableSnapshot",
    "DatasetRegistry",
]


@dataclass(frozen=True)
class DatasetSnapshot:
    """An atomic read of a :class:`DatasetEntry`'s versioned state.

    Captured under the entry lock, so ``dataset``, ``fingerprint`` and
    ``version`` always belong to one serializable version even while
    ``PATCH`` traffic mutates the entry. ``prepared`` is advisory warm
    state: every backend verifies it against the query's dataset before
    use, so a snapshot raced by a concurrent delta executes correctly
    (on its own version), just without the shortcut.
    """

    dataset: IncompleteDataset | LabelUncertainDataset
    fingerprint: str
    version: int
    prepared: PreparedBatch | None


@dataclass(frozen=True)
class CoddTableSnapshot:
    """An atomic read of a :class:`CoddTableEntry`'s versioned state."""

    table: CoddTable
    fingerprint: str
    version: int
    stacked: StackedTable | None
    stackable: bool


class RegistryError(ValueError):
    """Invalid registry operation (no validation set, no oracle, bad name)."""


class DuplicateDatasetError(RegistryError):
    """The name is already registered (surfaced as HTTP 409; pass
    ``replace=True`` to overwrite)."""


class UnknownDatasetError(KeyError):
    """No dataset registered under that name (surfaced as HTTP 404)."""

    def __init__(self, name: str, known: list[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown dataset {self.name!r}; registered: {self.known}"


class DatasetEntry:
    """One registered dataset and the warm state pinned to it.

    Built by :class:`DatasetRegistry`; not constructed directly. The
    entry's :attr:`session` (and through it the pinned
    :class:`~repro.core.batch_engine.PreparedBatch` over the registered
    validation set) is created on first use and then reused by every
    request, which is exactly the state sharing the one-shot entry
    points could never offer.
    """

    def __init__(
        self,
        name: str,
        dataset: IncompleteDataset | LabelUncertainDataset,
        k: int = 3,
        kernel: Kernel | str | None = None,
        val_X: np.ndarray | None = None,
        gt_choice: np.ndarray | None = None,
        backend: str = "auto",
        n_jobs: int | None = 1,
    ) -> None:
        self.name = name
        self.dataset = dataset
        self.k = check_positive_int(k, "k")
        self.kernel = resolve_kernel(kernel)
        self.val_X = None if val_X is None else np.asarray(val_X, dtype=np.float64)
        self.gt_choice = gt_choice
        self.backend = backend
        self.n_jobs = n_jobs
        self.fingerprint = dataset.fingerprint()
        self.version = 1
        self.n_queries = 0
        self.n_points_served = 0
        self.n_clean_steps = 0
        self._session: CleaningSession | None = None
        #: Partition layout of the last gateway execution (``None`` until
        #: the partitioned topology serves this entry). Written by the
        #: broker, echoed by ``/datasets/<name>`` — registry entries carry
        #: their placement so operators can see which executor owns what.
        self.partitioning: dict | None = None
        self._lock = threading.RLock()
        # Serialises whole cleaning steps (mutation + checkpoint query).
        # Separate from _lock so long checkpoint queries never block the
        # quick prepared/session_pins snapshots the query path takes.
        self._session_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def supports_cleaning(self) -> bool:
        """True iff the entry can run ``/clean/step`` (needs a validation set
        and a feature-incomplete dataset — cleaning pins feature repairs)."""
        return self.val_X is not None and isinstance(self.dataset, IncompleteDataset)

    @property
    def session(self) -> CleaningSession:
        """The entry's cleaning session (lazily built, then pinned warm).

        Owns the validation set's ``PreparedBatch`` and the shared result
        cache; ``backend="auto"`` routes binary certainty checks through
        the vectorised MinMax batch path and larger label spaces through
        the ``incremental`` backend's maintained counts.
        """
        if not self.supports_cleaning:
            raise RegistryError(
                f"dataset {self.name!r} has no validation set registered; "
                "cleaning and validation queries need one"
            )
        with self._lock:
            if self._session is None:
                self._session = CleaningSession(
                    self.dataset,
                    self.val_X,
                    k=self.k,
                    kernel=self.kernel,
                    n_jobs=self.n_jobs,
                    backend=self.backend,
                )
            return self._session

    @property
    def prepared(self) -> PreparedBatch | None:
        """The pinned prepared-distance state over the registered validation
        set, or ``None`` if it has not been built yet (see :meth:`ensure_warm`).

        Handing this to :class:`~repro.core.planner.ExecutionOptions`
        is always safe: the batch backend verifies fingerprint, test
        matrix, ``k`` and kernel before using a handed batch, so a
        mismatching prepared state is simply ignored.
        """
        with self._lock:
            if self._session is not None:
                return self._session.batch
        return None

    def ensure_warm(self) -> PreparedBatch | None:
        """Build (once) and return the pinned prepared state, if the entry
        has a validation set; ``None`` otherwise."""
        if self.supports_cleaning:
            return self.session.batch
        return None

    def snapshot(self) -> DatasetSnapshot:
        """Atomically capture ``(dataset, fingerprint, version, prepared)``.

        The broker's query path runs against a snapshot, never against
        the live entry fields, so every response is consistent with one
        serializable version even under concurrent ``PATCH`` writes.
        """
        with self._lock:
            return DatasetSnapshot(
                dataset=self.dataset,
                fingerprint=self.fingerprint,
                version=self.version,
                prepared=None if self._session is None else self._session.batch,
            )

    def apply_deltas(self, deltas: Sequence[Delta]) -> dict:
        """Apply base-data deltas in order, bumping the entry version per delta.

        Routed through the pinned session's delta-maintained state when
        the entry has one (so warm prepared state follows each delta in
        O(Δ)); otherwise the deltas transform the dataset directly. Each
        delta commits atomically — dataset, fingerprint and version swap
        under the entry lock together — so a failing delta leaves every
        previously applied one visible and consistent.
        """
        if not isinstance(self.dataset, IncompleteDataset):
            raise RegistryError(
                f"dataset {self.name!r} is not an incomplete dataset; "
                "deltas apply to feature candidate sets"
            )
        deltas = list(deltas)
        if not deltas:
            raise RegistryError("'deltas' must contain at least one operation")
        reports: list[dict] = []
        with self._session_lock:
            session = self.session if self.supports_cleaning else None
            for delta in deltas:
                if session is not None:
                    report = session.apply_delta(delta)
                    report.pop("version", None)  # the entry's version is authoritative
                    new_dataset = session.dataset
                else:
                    new_dataset = apply_delta_to_dataset(self.dataset, delta)
                    if isinstance(delta, CellRepair):
                        report = {"op": "cell_repair", "row": delta.row}
                    elif isinstance(delta, RowAppend):
                        report = {"op": "row_append", "row": new_dataset.n_rows - 1}
                    else:
                        report = {"op": "row_delete", "row": delta.row}
                with self._lock:
                    self.dataset = new_dataset
                    self.fingerprint = new_dataset.fingerprint()
                    self.version += 1
                    report["version"] = self.version
                reports.append(report)
        return {
            "dataset": self.name,
            "version": reports[-1]["version"],
            "fingerprint": self.fingerprint,
            "n_rows": new_dataset.n_rows,
            "n_worlds": str(new_dataset.n_worlds()),
            "reports": reports,
        }

    def clean_step(self, row: int, candidate: int | None) -> dict:
        """Apply one human answer and return the session checkpoint.

        ``candidate=None`` consults the registered ground-truth choice
        (recipe datasets carry one) — the simulated oracle, driven over
        the wire.
        """
        with self._session_lock:
            with self._lock:
                session = self.session
                if candidate is None:
                    if self.gt_choice is None:
                        raise RegistryError(
                            f"dataset {self.name!r} has no ground-truth oracle; "
                            "send an explicit candidate"
                        )
                    candidate = int(self.gt_choice[int(row)])
                session.clean_row(int(row), int(candidate))
                self.n_clean_steps += 1
            # The checkpoint runs a full validation certainty query, so it
            # must not hold the entry lock (queries take it for quick
            # prepared/session_pins snapshots) — but it does hold the
            # session lock, so concurrent cleaning steps serialise and
            # session.fixed is never mutated mid-checkpoint.
            checkpoint = session.checkpoint()
        checkpoint["dataset"] = self.name
        checkpoint["row"] = int(row)
        checkpoint["candidate"] = int(candidate)
        with self._lock:
            checkpoint["version"] = self.version
        return checkpoint

    def session_pins(self) -> dict[int, int]:
        """Pins applied by ``/clean/step`` so far (empty before any step)."""
        with self._lock:
            if self._session is None:
                return {}
            return dict(self._session.fixed)

    def record_served(self, n_points: int) -> None:
        """Bump the per-entry request counters (one query, ``n_points`` points)."""
        with self._lock:
            self.n_queries += 1
            self.n_points_served += int(n_points)

    def describe(self) -> dict:
        """The ``/datasets`` JSON row for this entry."""
        with self._lock:
            dataset = self.dataset
            fingerprint = self.fingerprint
            version = self.version
            partitioning = self.partitioning
            n_cleaned = 0 if self._session is None else len(self._session.fixed)
            stats = {
                "n_queries": self.n_queries,
                "n_points_served": self.n_points_served,
                "n_clean_steps": self.n_clean_steps,
            }
        return {
            "name": self.name,
            "type": (
                "label_uncertain"
                if isinstance(dataset, LabelUncertainDataset)
                else "incomplete"
            ),
            "fingerprint": fingerprint,
            "version": version,
            "n_rows": dataset.n_rows,
            "n_features": dataset.n_features,
            "n_labels": dataset.n_labels,
            "n_worlds": str(dataset.n_worlds()),
            "k": self.k,
            "kernel": repr(self.kernel),
            "n_val": 0 if self.val_X is None else int(self.val_X.shape[0]),
            "supports_cleaning": self.supports_cleaning,
            "has_oracle": self.gt_choice is not None,
            "n_cleaned": n_cleaned,
            "partitioning": partitioning,
            **stats,
        }

    def set_partitioning(self, partitioning: dict | None) -> None:
        """Record the gateway's partition layout for this entry."""
        with self._lock:
            self.partitioning = partitioning


class CoddTableEntry:
    """One registered Codd table and the warm columnar state pinned to it.

    The certain-answer twin of :class:`DatasetEntry`: where a dataset
    entry pins a :class:`~repro.core.batch_engine.PreparedBatch`, a Codd
    entry pins the :class:`~repro.codd.vectorized.StackedTable` completion
    grid the vectorized engine evaluates on — built on first use, then
    reused by every ``/sql`` request against this table. Tables whose
    grid would blow the stacking cap simply pin nothing (the engine's
    row-wise fallback needs no prepared state).
    """

    def __init__(self, name: str, table: CoddTable) -> None:
        self.name = name
        self.table = table
        self.fingerprint = table.fingerprint()
        self.version = 1
        self.n_queries = 0
        # The O(rows) size estimate runs once here, not per access under
        # the lock (an over-cap table would otherwise pay it per query).
        self._stackable = estimate_stacked_cells(table) <= MAX_STACKED_CELLS
        self._stacked: StackedTable | None = None
        self._lock = threading.RLock()

    @property
    def stacked(self) -> StackedTable | None:
        """The pinned completion grid (lazily built), or ``None`` when the
        table is too large to stack."""
        if not self._stackable:
            return None
        with self._lock:
            if self._stacked is None:
                self._stacked = StackedTable(self.table)
            return self._stacked

    def snapshot(self) -> CoddTableSnapshot:
        """Atomically capture ``(table, fingerprint, version, grid)``.

        ``stacked`` is whatever grid is pinned *right now* (possibly
        ``None`` if never built); :meth:`grid_for` materialises one for a
        snapshot without racing later versions.
        """
        with self._lock:
            return CoddTableSnapshot(
                table=self.table,
                fingerprint=self.fingerprint,
                version=self.version,
                stacked=self._stacked,
                stackable=self._stackable,
            )

    def grid_for(self, snap: CoddTableSnapshot) -> StackedTable | None:
        """The completion grid for a snapshot's table version (or ``None``).

        Builds the grid from the snapshot's own table when none is pinned
        yet, and pins it on the entry only if the entry still is at that
        version — a grid for a superseded version is used once and
        dropped, never installed over newer state.
        """
        if snap.stacked is not None:
            return snap.stacked
        if not snap.stackable:
            return None
        grid = StackedTable(snap.table)
        with self._lock:
            if self._stacked is None and self.fingerprint == snap.fingerprint:
                self._stacked = grid
        return grid

    def apply_fix(self, row: int, column: int, value) -> dict:
        """Fix one NULL cell to ``value``; O(kept worlds) on the pinned grid.

        The registered table is replaced by
        :meth:`~repro.codd.codd_table.CoddTable.with_cell_fixed` and — when
        a completion grid is pinned — the grid is updated *in place* via
        :meth:`~repro.codd.vectorized.StackedTable.with_cell_fixed`
        (a structural keep-mask over the affected row's world block, not a
        rebuild). Table, grid, fingerprint and version all swap under one
        lock, so every ``/sql`` snapshot sees a single serializable
        version.
        """
        with self._lock:
            if self._stacked is not None:
                self._stacked = self._stacked.with_cell_fixed(row, column, value)
                new_table = self._stacked.table
            else:
                new_table = self.table.with_cell_fixed(row, column, value)
            self.table = new_table
            self.fingerprint = new_table.fingerprint()
            # A fix only shrinks the grid, but re-estimate anyway: a table
            # registered over the stacking cap can drop under it.
            self._stackable = (
                self._stacked is not None
                or estimate_stacked_cells(new_table) <= MAX_STACKED_CELLS
            )
            self.version += 1
            return {
                "table": self.name,
                "op": "fix_cell",
                "row": int(row),
                "column": int(column),
                "version": self.version,
                "fingerprint": self.fingerprint,
                "n_worlds": str(new_table.n_worlds()),
                "grid_pinned": self._stacked is not None,
            }

    def record_served(self) -> None:
        """Bump the per-entry SQL query counter."""
        with self._lock:
            self.n_queries += 1

    def describe(self) -> dict:
        """The ``/datasets`` JSON row for this entry."""
        with self._lock:
            table = self.table
            fingerprint = self.fingerprint
            version = self.version
            n_queries = self.n_queries
            pinned = self._stacked is not None
        return {
            "name": self.name,
            "type": "codd",
            "fingerprint": fingerprint,
            "version": version,
            "schema": list(table.schema),
            "n_rows": len(table),
            "n_null_cells": table.n_variables,
            "n_worlds": str(table.n_worlds()),
            "grid_pinned": pinned,
            "n_queries": n_queries,
        }


class DatasetRegistry:
    """Thread-safe name → entry mapping for the service.

    Two independent namespaces live here: CP datasets
    (:class:`DatasetEntry`) and Codd tables (:class:`CoddTableEntry`) —
    the two halves of the paper's Figure 1, served by one registry."""

    def __init__(self) -> None:
        self._entries: dict[str, DatasetEntry] = {}
        self._codd: dict[str, CoddTableEntry] = {}
        self._lock = threading.RLock()
        self._invalidation_hooks: list[Callable[[str], None]] = []
        self._obs = None
        self._c_registrations = None
        self._c_invalidations = None
        self._c_removals = None

    def attach_observability(self, obs) -> None:
        """Report into ``obs`` (an :class:`~repro.obs.Observability`).

        Registration/invalidation/removal events become counters; the
        current dataset/table population and their served totals surface
        as gauges via a snapshot-time collector (levels, not counters —
        removals make them go down). ``stats()`` keeps the legacy JSON
        shape either way.
        """
        self._obs = obs
        self._c_registrations = obs.metrics.counter(
            "registry_registrations_total",
            help="datasets + codd tables registered",
        )
        self._c_invalidations = obs.metrics.counter(
            "registry_invalidations_total",
            help="names whose content was replaced or removed",
        )
        self._c_removals = obs.metrics.counter("registry_removals_total")
        obs.metrics.add_collector(self._collect_gauges)

    def _collect_gauges(self, metrics) -> None:
        stats = self.stats()
        gauge = metrics.gauge
        gauge("registry_datasets", help="registered CP datasets").set(
            stats["n_datasets"]
        )
        gauge("registry_codd_tables").set(stats["n_codd_tables"])
        gauge("registry_queries").set(stats["n_queries"])
        gauge("registry_points_served").set(stats["n_points_served"])
        gauge("registry_clean_steps").set(stats["n_clean_steps"])
        gauge("registry_sql_queries").set(stats["n_sql_queries"])

    # ------------------------------------------------------------------
    def add_invalidation_hook(self, hook: Callable[[str], None]) -> None:
        """Register a callback fired with a name whenever that name's
        registered content is replaced or removed.

        The broker subscribes its TTL result cache here, so re-registering
        a dataset under an existing name *purges* that dataset's cached
        results instead of leaving fingerprint-keyed entries resident
        until TTL/LRU pressure claims them.
        """
        self._invalidation_hooks.append(hook)

    def _notify_invalidation(self, name: str) -> None:
        if self._c_invalidations is not None:
            self._c_invalidations.inc()
        for hook in list(self._invalidation_hooks):
            hook(name)

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        dataset: IncompleteDataset | LabelUncertainDataset,
        k: int = 3,
        kernel: Kernel | str | None = None,
        val_X: np.ndarray | None = None,
        gt_choice: np.ndarray | None = None,
        backend: str = "auto",
        n_jobs: int | None = 1,
        replace: bool = False,
    ) -> DatasetEntry:
        """Register ``dataset`` under ``name`` (``replace`` to overwrite)."""
        if not isinstance(name, str) or not name:
            raise RegistryError("dataset name must be a non-empty string")
        entry = DatasetEntry(
            name,
            dataset,
            k=k,
            kernel=kernel,
            val_X=val_X,
            gt_choice=gt_choice,
            backend=backend,
            n_jobs=n_jobs,
        )
        with self._lock:
            if not replace and name in self._entries:
                raise DuplicateDatasetError(f"dataset {name!r} is already registered")
            replaced = name in self._entries
            self._entries[name] = entry
        if self._c_registrations is not None:
            self._c_registrations.inc()
        if replaced:
            # The name now maps to different content: anything cached for
            # the old registration must go (fired outside the lock).
            self._notify_invalidation(name)
        return entry

    def register_recipe(
        self,
        name: str,
        recipe: str = "supreme",
        n_train: int = 100,
        n_val: int = 24,
        missing_rate: float | None = None,
        k: int = 3,
        seed: int = 0,
        backend: str = "auto",
        n_jobs: int | None = 1,
        replace: bool = False,
    ) -> DatasetEntry:
        """Build one of the paper's dirty-dataset recipes and register it.

        The recipe's validation split becomes the registered validation
        set (so its prepared state is pinned) and the ground-truth repair
        choice becomes the entry's simulated cleaning oracle.
        """
        from repro.data.task import build_cleaning_task

        task = build_cleaning_task(
            recipe,
            n_train=n_train,
            n_val=n_val,
            n_test=2,
            missing_rate=missing_rate,
            k=k,
            seed=seed,
        )
        return self.register(
            name,
            task.incomplete,
            k=k,
            val_X=task.val_X,
            gt_choice=task.gt_choice,
            backend=backend,
            n_jobs=n_jobs,
            replace=replace,
        )

    def register_codd_table(
        self, name: str, table: CoddTable, replace: bool = False
    ) -> CoddTableEntry:
        """Register a Codd table under ``name`` (``replace`` to overwrite).

        Codd tables live in their own namespace: the same name may also
        refer to a CP dataset (the paper's Figure 1 runs both halves over
        one table, so the service allows the pairing)."""
        if not isinstance(name, str) or not name:
            raise RegistryError("codd table name must be a non-empty string")
        if not isinstance(table, CoddTable):
            raise RegistryError(
                f"expected a CoddTable, got {type(table).__name__}"
            )
        entry = CoddTableEntry(name, table)
        with self._lock:
            if not replace and name in self._codd:
                raise DuplicateDatasetError(
                    f"codd table {name!r} is already registered"
                )
            replaced = name in self._codd
            self._codd[name] = entry
        if self._c_registrations is not None:
            self._c_registrations.inc()
        if replaced:
            self._notify_invalidation(name)
        return entry

    # ------------------------------------------------------------------
    def get(self, name: str) -> DatasetEntry:
        """The entry for ``name`` (:class:`UnknownDatasetError` if absent)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownDatasetError(name, sorted(self._entries))
            return entry

    def get_codd(self, name: str) -> CoddTableEntry:
        """The Codd-table entry for ``name`` (:class:`UnknownDatasetError`
        listing the registered Codd tables if absent)."""
        with self._lock:
            entry = self._codd.get(name)
            if entry is None:
                raise UnknownDatasetError(name, sorted(self._codd))
            return entry

    def codd_names(self) -> list[str]:
        """Registered Codd-table names, sorted."""
        with self._lock:
            return sorted(self._codd)

    def remove(self, name: str) -> None:
        """Drop a CP dataset registration (and its warm state)."""
        with self._lock:
            if self._entries.pop(name, None) is None:
                raise UnknownDatasetError(name, sorted(self._entries))
        if self._c_removals is not None:
            self._c_removals.inc()
        self._notify_invalidation(name)

    def remove_codd(self, name: str) -> None:
        """Drop a Codd-table registration (and its pinned completion grid)."""
        with self._lock:
            if self._codd.pop(name, None) is None:
                raise UnknownDatasetError(name, sorted(self._codd))
        if self._c_removals is not None:
            self._c_removals.inc()
        self._notify_invalidation(name)

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def describe_all(self) -> list[dict]:
        """The ``/datasets`` listing (CP datasets first, then Codd tables;
        every row carries a ``type`` discriminator)."""
        with self._lock:
            entries = list(self._entries.values())
            codd = list(self._codd.values())
        return [entry.describe() for entry in entries] + [
            entry.describe() for entry in codd
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def stats(self) -> Mapping[str, Any]:
        """Aggregate counters for ``/metrics``."""
        with self._lock:
            entries = list(self._entries.values())
            codd = list(self._codd.values())
        return {
            "n_datasets": len(entries),
            "n_queries": sum(e.n_queries for e in entries),
            "n_points_served": sum(e.n_points_served for e in entries),
            "n_clean_steps": sum(e.n_clean_steps for e in entries),
            "n_codd_tables": len(codd),
            "n_sql_queries": sum(e.n_queries for e in codd),
        }
