"""The dataset registry: named datasets with warm prepared state.

Every entry point in the repo so far is one-shot and in-process: each
caller builds its own :class:`~repro.core.batch_engine.PreparedBatch`
(the vectorised candidate-distance state), uses it, and throws it away.
A long-lived service must not — preparing distances is the expensive,
perfectly reusable part of a CP query, which is why the ROADMAP's
"heavy traffic" north star needs a place that keeps it warm.

:class:`DatasetRegistry` is that place. It maps names to
:class:`DatasetEntry` objects, each owning:

* the dataset itself plus its content ``fingerprint()`` (the cache key
  every layer below already agrees on);
* an optional registered **validation set**, whose prepared state is
  pinned via a lazily-built
  :class:`~repro.cleaning.sequential.CleaningSession` — that session
  holds the ``PreparedBatch`` and, through the ``incremental`` backend,
  keeps :class:`~repro.core.incremental.IncrementalCPState` maintained
  across ``/clean/step`` calls instead of re-preparing per request;
* per-entry counters the ``/metrics`` endpoint reports.

Everything is thread-safe: the registry serialises membership changes on
one lock, and each entry serialises its own lazy construction and
cleaning steps, so two HTTP threads can hit different datasets without
ever contending on a global lock.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.cleaning.sequential import CleaningSession
from repro.core.batch_engine import PreparedBatch
from repro.core.dataset import IncompleteDataset
from repro.core.kernels import Kernel, resolve_kernel
from repro.core.label_uncertainty import LabelUncertainDataset
from repro.utils.validation import check_positive_int

__all__ = [
    "UnknownDatasetError",
    "RegistryError",
    "DuplicateDatasetError",
    "DatasetEntry",
    "DatasetRegistry",
]


class RegistryError(ValueError):
    """Invalid registry operation (no validation set, no oracle, bad name)."""


class DuplicateDatasetError(RegistryError):
    """The name is already registered (surfaced as HTTP 409; pass
    ``replace=True`` to overwrite)."""


class UnknownDatasetError(KeyError):
    """No dataset registered under that name (surfaced as HTTP 404)."""

    def __init__(self, name: str, known: list[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown dataset {self.name!r}; registered: {self.known}"


class DatasetEntry:
    """One registered dataset and the warm state pinned to it.

    Built by :class:`DatasetRegistry`; not constructed directly. The
    entry's :attr:`session` (and through it the pinned
    :class:`~repro.core.batch_engine.PreparedBatch` over the registered
    validation set) is created on first use and then reused by every
    request, which is exactly the state sharing the one-shot entry
    points could never offer.
    """

    def __init__(
        self,
        name: str,
        dataset: IncompleteDataset | LabelUncertainDataset,
        k: int = 3,
        kernel: Kernel | str | None = None,
        val_X: np.ndarray | None = None,
        gt_choice: np.ndarray | None = None,
        backend: str = "auto",
        n_jobs: int | None = 1,
    ) -> None:
        self.name = name
        self.dataset = dataset
        self.k = check_positive_int(k, "k")
        self.kernel = resolve_kernel(kernel)
        self.val_X = None if val_X is None else np.asarray(val_X, dtype=np.float64)
        self.gt_choice = gt_choice
        self.backend = backend
        self.n_jobs = n_jobs
        self.fingerprint = dataset.fingerprint()
        self.n_queries = 0
        self.n_points_served = 0
        self.n_clean_steps = 0
        self._session: CleaningSession | None = None
        self._lock = threading.RLock()
        # Serialises whole cleaning steps (mutation + checkpoint query).
        # Separate from _lock so long checkpoint queries never block the
        # quick prepared/session_pins snapshots the query path takes.
        self._session_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def supports_cleaning(self) -> bool:
        """True iff the entry can run ``/clean/step`` (needs a validation set
        and a feature-incomplete dataset — cleaning pins feature repairs)."""
        return self.val_X is not None and isinstance(self.dataset, IncompleteDataset)

    @property
    def session(self) -> CleaningSession:
        """The entry's cleaning session (lazily built, then pinned warm).

        Owns the validation set's ``PreparedBatch`` and the shared result
        cache; ``backend="auto"`` routes binary certainty checks through
        the vectorised MinMax batch path and larger label spaces through
        the ``incremental`` backend's maintained counts.
        """
        if not self.supports_cleaning:
            raise RegistryError(
                f"dataset {self.name!r} has no validation set registered; "
                "cleaning and validation queries need one"
            )
        with self._lock:
            if self._session is None:
                self._session = CleaningSession(
                    self.dataset,
                    self.val_X,
                    k=self.k,
                    kernel=self.kernel,
                    n_jobs=self.n_jobs,
                    backend=self.backend,
                )
            return self._session

    @property
    def prepared(self) -> PreparedBatch | None:
        """The pinned prepared-distance state over the registered validation
        set, or ``None`` if it has not been built yet (see :meth:`ensure_warm`).

        Handing this to :class:`~repro.core.planner.ExecutionOptions`
        is always safe: the batch backend verifies fingerprint, test
        matrix, ``k`` and kernel before using a handed batch, so a
        mismatching prepared state is simply ignored.
        """
        with self._lock:
            if self._session is not None:
                return self._session.batch
        return None

    def ensure_warm(self) -> PreparedBatch | None:
        """Build (once) and return the pinned prepared state, if the entry
        has a validation set; ``None`` otherwise."""
        if self.supports_cleaning:
            return self.session.batch
        return None

    def clean_step(self, row: int, candidate: int | None) -> dict:
        """Apply one human answer and return the session checkpoint.

        ``candidate=None`` consults the registered ground-truth choice
        (recipe datasets carry one) — the simulated oracle, driven over
        the wire.
        """
        with self._session_lock:
            with self._lock:
                session = self.session
                if candidate is None:
                    if self.gt_choice is None:
                        raise RegistryError(
                            f"dataset {self.name!r} has no ground-truth oracle; "
                            "send an explicit candidate"
                        )
                    candidate = int(self.gt_choice[int(row)])
                session.clean_row(int(row), int(candidate))
                self.n_clean_steps += 1
            # The checkpoint runs a full validation certainty query, so it
            # must not hold the entry lock (queries take it for quick
            # prepared/session_pins snapshots) — but it does hold the
            # session lock, so concurrent cleaning steps serialise and
            # session.fixed is never mutated mid-checkpoint.
            checkpoint = session.checkpoint()
        checkpoint["dataset"] = self.name
        checkpoint["row"] = int(row)
        checkpoint["candidate"] = int(candidate)
        return checkpoint

    def session_pins(self) -> dict[int, int]:
        """Pins applied by ``/clean/step`` so far (empty before any step)."""
        with self._lock:
            if self._session is None:
                return {}
            return dict(self._session.fixed)

    def record_served(self, n_points: int) -> None:
        """Bump the per-entry request counters (one query, ``n_points`` points)."""
        with self._lock:
            self.n_queries += 1
            self.n_points_served += int(n_points)

    def describe(self) -> dict:
        """The ``/datasets`` JSON row for this entry."""
        dataset = self.dataset
        with self._lock:
            n_cleaned = 0 if self._session is None else len(self._session.fixed)
            stats = {
                "n_queries": self.n_queries,
                "n_points_served": self.n_points_served,
                "n_clean_steps": self.n_clean_steps,
            }
        return {
            "name": self.name,
            "type": (
                "label_uncertain"
                if isinstance(dataset, LabelUncertainDataset)
                else "incomplete"
            ),
            "fingerprint": self.fingerprint,
            "n_rows": dataset.n_rows,
            "n_features": dataset.n_features,
            "n_labels": dataset.n_labels,
            "n_worlds": str(dataset.n_worlds()),
            "k": self.k,
            "kernel": repr(self.kernel),
            "n_val": 0 if self.val_X is None else int(self.val_X.shape[0]),
            "supports_cleaning": self.supports_cleaning,
            "has_oracle": self.gt_choice is not None,
            "n_cleaned": n_cleaned,
            **stats,
        }


class DatasetRegistry:
    """Thread-safe name → :class:`DatasetEntry` mapping for the service."""

    def __init__(self) -> None:
        self._entries: dict[str, DatasetEntry] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        dataset: IncompleteDataset | LabelUncertainDataset,
        k: int = 3,
        kernel: Kernel | str | None = None,
        val_X: np.ndarray | None = None,
        gt_choice: np.ndarray | None = None,
        backend: str = "auto",
        n_jobs: int | None = 1,
        replace: bool = False,
    ) -> DatasetEntry:
        """Register ``dataset`` under ``name`` (``replace`` to overwrite)."""
        if not isinstance(name, str) or not name:
            raise RegistryError("dataset name must be a non-empty string")
        entry = DatasetEntry(
            name,
            dataset,
            k=k,
            kernel=kernel,
            val_X=val_X,
            gt_choice=gt_choice,
            backend=backend,
            n_jobs=n_jobs,
        )
        with self._lock:
            if not replace and name in self._entries:
                raise DuplicateDatasetError(f"dataset {name!r} is already registered")
            self._entries[name] = entry
        return entry

    def register_recipe(
        self,
        name: str,
        recipe: str = "supreme",
        n_train: int = 100,
        n_val: int = 24,
        missing_rate: float | None = None,
        k: int = 3,
        seed: int = 0,
        backend: str = "auto",
        n_jobs: int | None = 1,
        replace: bool = False,
    ) -> DatasetEntry:
        """Build one of the paper's dirty-dataset recipes and register it.

        The recipe's validation split becomes the registered validation
        set (so its prepared state is pinned) and the ground-truth repair
        choice becomes the entry's simulated cleaning oracle.
        """
        from repro.data.task import build_cleaning_task

        task = build_cleaning_task(
            recipe,
            n_train=n_train,
            n_val=n_val,
            n_test=2,
            missing_rate=missing_rate,
            k=k,
            seed=seed,
        )
        return self.register(
            name,
            task.incomplete,
            k=k,
            val_X=task.val_X,
            gt_choice=task.gt_choice,
            backend=backend,
            n_jobs=n_jobs,
            replace=replace,
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> DatasetEntry:
        """The entry for ``name`` (:class:`UnknownDatasetError` if absent)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownDatasetError(name, sorted(self._entries))
            return entry

    def remove(self, name: str) -> None:
        """Drop a registration (and its warm state)."""
        with self._lock:
            if self._entries.pop(name, None) is None:
                raise UnknownDatasetError(name, sorted(self._entries))

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def describe_all(self) -> list[dict]:
        """The ``/datasets`` listing."""
        with self._lock:
            entries = list(self._entries.values())
        return [entry.describe() for entry in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def stats(self) -> Mapping[str, Any]:
        """Aggregate counters for ``/metrics``."""
        with self._lock:
            entries = list(self._entries.values())
        return {
            "n_datasets": len(entries),
            "n_queries": sum(e.n_queries for e in entries),
            "n_points_served": sum(e.n_points_served for e in entries),
            "n_clean_steps": sum(e.n_clean_steps for e in entries),
        }
